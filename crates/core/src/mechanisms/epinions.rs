//! Epinions — reference \[8\].
//!
//! A *centralized, resource, global* review site whose distinguishing
//! feature is the **web of trust**: members explicitly trust or block
//! reviewers, and a reviewer's influence on displayed ratings grows with
//! how widely trusted they are. We aggregate item reviews weighted by each
//! reviewer's incoming trust degree in the member trust graph.

use crate::feedback::Feedback;
use crate::id::{AgentId, SubjectId};
use crate::mechanism::{ReputationMechanism, SubjectAccumulator};
use crate::trust::{evidence_confidence, TrustEstimate, TrustValue};
use crate::typology::{Centralization, MechanismInfo, Scope, Subject};
use std::collections::{BTreeMap, BTreeSet};

/// Epinions-style review aggregation over a web of trust.
#[derive(Debug, Clone, Default)]
pub struct EpinionsMechanism {
    reviews: BTreeMap<SubjectId, Vec<(AgentId, f64)>>,
    /// trusters per reviewer (the web of trust, incoming edges).
    trusted_by: BTreeMap<AgentId, BTreeSet<AgentId>>,
    /// blockers per reviewer (Epinions' "block list").
    blocked_by: BTreeMap<AgentId, BTreeSet<AgentId>>,
    submitted: usize,
}

impl EpinionsMechanism {
    /// Empty mechanism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Member `who` adds `reviewer` to their web of trust.
    pub fn trust(&mut self, who: AgentId, reviewer: AgentId) {
        self.trusted_by.entry(reviewer).or_default().insert(who);
        if let Some(blockers) = self.blocked_by.get_mut(&reviewer) {
            blockers.remove(&who);
        }
    }

    /// Member `who` blocks `reviewer`.
    pub fn block(&mut self, who: AgentId, reviewer: AgentId) {
        self.blocked_by.entry(reviewer).or_default().insert(who);
        if let Some(trusters) = self.trusted_by.get_mut(&reviewer) {
            trusters.remove(&who);
        }
    }

    /// A reviewer's influence: saturating function of net incoming trust.
    pub fn influence(&self, reviewer: AgentId) -> f64 {
        let t = self
            .trusted_by
            .get(&reviewer)
            .map(BTreeSet::len)
            .unwrap_or(0) as f64;
        let b = self
            .blocked_by
            .get(&reviewer)
            .map(BTreeSet::len)
            .unwrap_or(0) as f64;
        let net = (t - b).max(0.0);
        // 0 trusters → 0.2 baseline; influence saturates toward 1.
        0.2 + 0.8 * net / (net + 3.0)
    }
}

impl ReputationMechanism for EpinionsMechanism {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            key: "epinions",
            display: "Epinions",
            centralization: Centralization::Centralized,
            subject: Subject::Resource,
            scope: Scope::Global,
            citation: "8",
            proposed_for_web_services: false,
        }
    }

    fn submit(&mut self, feedback: &Feedback) {
        self.reviews
            .entry(feedback.subject)
            .or_default()
            .push((feedback.rater, feedback.score));
        self.submitted += 1;
    }

    fn global(&self, subject: SubjectId) -> Option<TrustEstimate> {
        let reviews = self.reviews.get(&subject)?;
        if reviews.is_empty() {
            return None;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for &(reviewer, score) in reviews {
            let w = self.influence(reviewer);
            num += w * score;
            den += w;
        }
        Some(TrustEstimate::new(
            TrustValue::new(num / den),
            evidence_confidence(reviews.len(), 4.0),
        ))
    }

    fn feedback_count(&self) -> usize {
        self.submitted
    }

    fn accumulator(&self) -> Option<Box<dyn SubjectAccumulator>> {
        Some(Box::new(EpinionsAccumulator {
            // `influence` of a reviewer with no incoming trust edges.
            baseline: 0.2,
            num: 0.0,
            den: 0.0,
            n: 0,
        }))
    }
}

/// The Epinions fold. Web-of-trust edges arrive out of band
/// ([`EpinionsMechanism::trust`] / [`EpinionsMechanism::block`]), never
/// through the feedback log, so a replay through a fresh mechanism gives
/// every reviewer the no-trusters baseline influence; the fold runs the
/// same weighted sums incrementally.
#[derive(Debug, Clone, Copy)]
pub struct EpinionsAccumulator {
    baseline: f64,
    num: f64,
    den: f64,
    n: usize,
}

impl SubjectAccumulator for EpinionsAccumulator {
    fn absorb(&mut self, feedback: &Feedback) {
        self.num += self.baseline * feedback.score;
        self.den += self.baseline;
        self.n += 1;
    }

    fn estimate(&self) -> Option<TrustEstimate> {
        if self.n == 0 {
            return None;
        }
        Some(TrustEstimate::new(
            TrustValue::new(self.num / self.den),
            evidence_confidence(self.n, 4.0),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ServiceId;
    use crate::time::Time;

    fn fb(rater: u64, score: f64) -> Feedback {
        Feedback::scored(AgentId::new(rater), ServiceId::new(1), score, Time::ZERO)
    }

    #[test]
    fn widely_trusted_reviewer_dominates() {
        let mut m = EpinionsMechanism::new();
        for i in 10..25 {
            m.trust(AgentId::new(i), AgentId::new(0));
        }
        m.submit(&fb(0, 0.95)); // trusted reviewer: great
        m.submit(&fb(1, 0.05)); // unknown reviewer: awful
        let est = m.global(ServiceId::new(1).into()).unwrap();
        assert!(est.value.get() > 0.7, "got {}", est.value);
    }

    #[test]
    fn blocking_cancels_trust() {
        let mut m = EpinionsMechanism::new();
        m.trust(AgentId::new(5), AgentId::new(0));
        let before = m.influence(AgentId::new(0));
        m.block(AgentId::new(5), AgentId::new(0));
        let after = m.influence(AgentId::new(0));
        assert!(after < before);
        assert_eq!(after, 0.2); // back to baseline
    }

    #[test]
    fn influence_is_bounded() {
        let mut m = EpinionsMechanism::new();
        for i in 0..1000 {
            m.trust(AgentId::new(i), AgentId::new(0));
        }
        assert!(m.influence(AgentId::new(0)) <= 1.0);
        for i in 0..1000 {
            m.block(AgentId::new(i + 2000), AgentId::new(1));
        }
        assert!(m.influence(AgentId::new(1)) >= 0.2);
    }

    #[test]
    fn trust_then_block_is_idempotent_per_member() {
        let mut m = EpinionsMechanism::new();
        m.trust(AgentId::new(5), AgentId::new(0));
        m.trust(AgentId::new(5), AgentId::new(0));
        m.block(AgentId::new(5), AgentId::new(0));
        // One member's opinion counted once.
        assert_eq!(m.influence(AgentId::new(0)), 0.2);
    }

    #[test]
    fn plain_average_without_web_of_trust() {
        let mut m = EpinionsMechanism::new();
        m.submit(&fb(0, 1.0));
        m.submit(&fb(1, 0.0));
        let est = m.global(ServiceId::new(1).into()).unwrap();
        assert!((est.value.get() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unreviewed_subject_is_none() {
        assert_eq!(
            EpinionsMechanism::new().global(ServiceId::new(2).into()),
            None
        );
    }
}
