//! Wang & Vassileva — "Trust and Reputation Model in Peer-to-Peer
//! Networks" (P2P 2003) and "Trust-Based Community Formation" (WI 2004),
//! references \[30, 31\] — the survey authors' own mechanism.
//!
//! *Decentralized, person/agent, personalized.* Every peer keeps a
//! **naïve Bayesian network** per partner: a root "the partner is
//! trustworthy (T)" with leaves for different aspects of interaction
//! quality (in the original, file type and download speed; here, QoS
//! facets). Trust in a partner for a given need is the posterior
//! `P(T = 1 | aspects the observer cares about were satisfying)`, learned
//! from the observer's own interactions; recommendations from other peers
//! fill in when personal evidence is thin.

use crate::feedback::Feedback;
use crate::id::{AgentId, SubjectId};
use crate::mechanism::ReputationMechanism;
use crate::trust::{evidence_confidence, TrustEstimate, TrustValue};
use crate::typology::{Centralization, MechanismInfo, Scope, Subject};
use std::collections::BTreeMap;
use wsrep_qos::metric::Metric;

/// Per (observer, subject) naive-Bayes counts.
#[derive(Debug, Clone, Default)]
struct PairStats {
    /// Overall satisfying / unsatisfying interaction counts.
    good: f64,
    bad: f64,
    /// Per facet: (satisfying ∧ good, satisfying ∧ bad) counts.
    facet: BTreeMap<Metric, (f64, f64)>,
}

impl PairStats {
    fn n(&self) -> usize {
        (self.good + self.bad) as usize
    }

    /// Posterior P(T | facets in `cares` were satisfying), with Laplace
    /// smoothing. With no facet conditioning this is the smoothed prior.
    fn posterior(&self, cares: &[Metric]) -> f64 {
        let total = self.good + self.bad;
        let p_t = (self.good + 1.0) / (total + 2.0);
        let p_not = (self.bad + 1.0) / (total + 2.0);
        let mut log_t = p_t.ln();
        let mut log_not = p_not.ln();
        for m in cares {
            let (sat_good, sat_bad) = self.facet.get(m).copied().unwrap_or((0.0, 0.0));
            log_t += ((sat_good + 1.0) / (self.good + 2.0)).ln();
            log_not += ((sat_bad + 1.0) / (self.bad + 2.0)).ln();
        }
        let t = log_t.exp();
        let not = log_not.exp();
        t / (t + not)
    }
}

/// The Wang–Vassileva Bayesian-network trust model.
#[derive(Debug, Clone, Default)]
pub struct BayesianMechanism {
    pairs: BTreeMap<(AgentId, SubjectId), PairStats>,
    /// Per-observer trust in other peers *as recommenders*, learned from
    /// whether their recommendations matched later experience.
    recommender: BTreeMap<(AgentId, AgentId), (f64, f64)>,
    /// Facets each observer conditions on when asking for trust.
    cares: BTreeMap<AgentId, Vec<Metric>>,
    /// Personal evidence below which recommendations are consulted.
    min_own_evidence: usize,
    submitted: usize,
}

impl BayesianMechanism {
    /// Defaults: recommendations kick in below 3 own interactions.
    pub fn new() -> Self {
        BayesianMechanism {
            min_own_evidence: 3,
            ..Default::default()
        }
    }

    /// Set the QoS facets `observer` conditions its trust question on.
    pub fn set_cares(&mut self, observer: AgentId, metrics: Vec<Metric>) {
        self.cares.insert(observer, metrics);
    }

    /// Record the outcome of following `recommender`'s advice: did the
    /// recommended partner turn out good?
    pub fn judge_recommendation(&mut self, observer: AgentId, recommender: AgentId, good: bool) {
        let e = self
            .recommender
            .entry((observer, recommender))
            .or_insert((0.0, 0.0));
        if good {
            e.0 += 1.0;
        } else {
            e.1 += 1.0;
        }
    }

    /// Trust in `peer` as a recommender for `observer` (smoothed).
    pub fn recommender_trust(&self, observer: AgentId, peer: AgentId) -> f64 {
        match self.recommender.get(&(observer, peer)) {
            None => 0.5,
            Some(&(g, b)) => (g + 1.0) / (g + b + 2.0),
        }
    }

    fn own_posterior(&self, observer: AgentId, subject: SubjectId) -> Option<(f64, usize)> {
        let stats = self.pairs.get(&(observer, subject))?;
        let cares = self.cares.get(&observer).cloned().unwrap_or_default();
        Some((stats.posterior(&cares), stats.n()))
    }
}

impl ReputationMechanism for BayesianMechanism {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            key: "wang_vassileva",
            display: "Y. Wang & J. Vassileva",
            centralization: Centralization::Decentralized,
            subject: Subject::PersonAgent,
            scope: Scope::Personalized,
            citation: "30, 31",
            proposed_for_web_services: false,
        }
    }

    fn submit(&mut self, feedback: &Feedback) {
        let stats = self
            .pairs
            .entry((feedback.rater, feedback.subject))
            .or_default();
        let good = feedback.is_positive(0.5);
        if good {
            stats.good += 1.0;
        } else {
            stats.bad += 1.0;
        }
        for (&metric, &rating) in &feedback.facet_ratings {
            let satisfying = rating >= 0.5;
            let e = stats.facet.entry(metric).or_insert((0.0, 0.0));
            if satisfying {
                if good {
                    e.0 += 1.0;
                } else {
                    e.1 += 1.0;
                }
            }
        }
        self.submitted += 1;
    }

    fn global(&self, subject: SubjectId) -> Option<TrustEstimate> {
        // Population view: evidence-weighted mean of every observer's own
        // posterior about the subject.
        let mut num = 0.0;
        let mut den = 0.0;
        let mut total_n = 0usize;
        for ((_, s), stats) in &self.pairs {
            if *s != subject {
                continue;
            }
            let n = stats.n();
            if n == 0 {
                continue;
            }
            num += n as f64 * stats.posterior(&[]);
            den += n as f64;
            total_n += n;
        }
        if den == 0.0 {
            return None;
        }
        Some(TrustEstimate::new(
            TrustValue::new(num / den),
            evidence_confidence(total_n, 4.0),
        ))
    }

    fn personalized(&self, observer: AgentId, subject: SubjectId) -> Option<TrustEstimate> {
        let own = self.own_posterior(observer, subject);
        if let Some((p, n)) = own {
            if n >= self.min_own_evidence {
                return Some(TrustEstimate::new(
                    TrustValue::new(p),
                    evidence_confidence(n, 3.0),
                ));
            }
        }
        // Thin personal evidence: pool own evidence with recommendations,
        // each recommendation weighted by recommender trust *and* its
        // evidence volume, so distrusted recommenders genuinely lose
        // influence rather than cancelling out in a ratio.
        let mut num = 0.0;
        let mut den = 0.0;
        for ((rec, s), stats) in &self.pairs {
            if *s != subject || *rec == observer || stats.n() == 0 {
                continue;
            }
            let w = self.recommender_trust(observer, *rec) * stats.n() as f64;
            num += w * stats.posterior(&[]);
            den += w;
        }
        match (own, den > 0.0) {
            (Some((p, n)), true) => {
                let w_own = n as f64;
                Some(TrustEstimate::new(
                    TrustValue::new((w_own * p + num) / (w_own + den)),
                    0.5,
                ))
            }
            (Some((p, n)), false) => Some(TrustEstimate::new(
                TrustValue::new(p),
                evidence_confidence(n, 3.0),
            )),
            (None, true) => Some(TrustEstimate::new(TrustValue::new(num / den), 0.3)),
            (None, false) => None,
        }
    }

    fn feedback_count(&self) -> usize {
        self.submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ServiceId;
    use crate::time::Time;

    fn fb(rater: u64, subject: u64, score: f64) -> Feedback {
        Feedback::scored(
            AgentId::new(rater),
            ServiceId::new(subject),
            score,
            Time::ZERO,
        )
    }

    fn s(i: u64) -> SubjectId {
        ServiceId::new(i).into()
    }

    #[test]
    fn own_evidence_drives_the_posterior() {
        let mut m = BayesianMechanism::new();
        for _ in 0..8 {
            m.submit(&fb(0, 1, 0.9));
        }
        m.submit(&fb(0, 1, 0.1));
        let est = m.personalized(AgentId::new(0), s(1)).unwrap();
        assert!(est.value.get() > 0.7);
    }

    #[test]
    fn facet_conditioning_personalizes_the_answer() {
        let mut m = BayesianMechanism::new();
        // Interactions that were good always had satisfying accuracy;
        // bad ones never did.
        for _ in 0..6 {
            m.submit(&fb(0, 1, 0.9).with_facet(Metric::Accuracy, 0.9));
            m.submit(&fb(0, 1, 0.1).with_facet(Metric::Accuracy, 0.1));
        }
        let plain = m.personalized(AgentId::new(0), s(1)).unwrap();
        m.set_cares(AgentId::new(0), vec![Metric::Accuracy]);
        let conditioned = m.personalized(AgentId::new(0), s(1)).unwrap();
        // Conditioning on "accuracy was satisfying" shifts toward good.
        assert!(conditioned.value.get() > plain.value.get());
    }

    #[test]
    fn thin_evidence_consults_recommenders() {
        let mut m = BayesianMechanism::new();
        // Observer 0 has a single (good) interaction; peers 1, 2 have many
        // bad ones.
        m.submit(&fb(0, 5, 0.9));
        for _ in 0..10 {
            m.submit(&fb(1, 5, 0.1));
            m.submit(&fb(2, 5, 0.1));
        }
        let est = m.personalized(AgentId::new(0), s(5)).unwrap();
        assert!(
            est.value.get() < 0.7,
            "recommendations temper the single good experience: {}",
            est.value
        );
    }

    #[test]
    fn bad_recommenders_lose_influence() {
        let mut m = BayesianMechanism::new();
        m.submit(&fb(0, 5, 0.9));
        for _ in 0..10 {
            m.submit(&fb(1, 5, 0.1)); // peer 1 badmouths
        }
        for _ in 0..10 {
            m.judge_recommendation(AgentId::new(0), AgentId::new(1), false);
        }
        let with_distrust = m.personalized(AgentId::new(0), s(5)).unwrap();
        // A fresh mechanism where peer 1 is still trusted.
        let mut fresh = BayesianMechanism::new();
        fresh.submit(&fb(0, 5, 0.9));
        for _ in 0..10 {
            fresh.submit(&fb(1, 5, 0.1));
        }
        let with_trust = fresh.personalized(AgentId::new(0), s(5)).unwrap();
        assert!(with_distrust.value.get() > with_trust.value.get());
    }

    #[test]
    fn sufficient_own_evidence_ignores_the_crowd() {
        let mut m = BayesianMechanism::new();
        for _ in 0..5 {
            m.submit(&fb(0, 5, 0.9));
        }
        for _ in 0..50 {
            m.submit(&fb(1, 5, 0.1));
        }
        let est = m.personalized(AgentId::new(0), s(5)).unwrap();
        assert!(est.value.get() > 0.7, "got {}", est.value);
    }

    #[test]
    fn global_view_aggregates_all_observers() {
        let mut m = BayesianMechanism::new();
        for _ in 0..5 {
            m.submit(&fb(0, 5, 0.9));
            m.submit(&fb(1, 5, 0.1));
        }
        let est = m.global(s(5)).unwrap();
        assert!((est.value.get() - 0.5).abs() < 0.1);
    }

    #[test]
    fn unknown_subject_is_none() {
        let m = BayesianMechanism::new();
        assert_eq!(m.personalized(AgentId::new(0), s(9)), None);
        assert_eq!(m.global(s(9)), None);
    }
}
