//! PeerTrust — Xiong & Liu (IEEE TKDE 2004), reference \[33\].
//!
//! *Decentralized, person/agent, global.* A peer `u`'s trust is
//!
//! ```text
//! T(u) = α · Σ_i S(u,i) · Cr(p(u,i)) · TF(u,i)  +  β · CF(u)
//! ```
//!
//! over its recent transactions `i`: satisfaction `S`, the **credibility**
//! `Cr` of the reporting peer, an adaptive **transaction-context factor**
//! `TF`, and an optional community-context bonus `CF` for peers that file
//! feedback themselves (incentivizing participation). Credibility comes in
//! the paper's two flavours: TVM (use the reporter's own trust value) and
//! PSM (personalized similarity of rating behaviour), selectable here.

use crate::feedback::Feedback;
use crate::id::{AgentId, SubjectId};
use crate::mechanism::ReputationMechanism;
use crate::time::Time;
use crate::trust::{evidence_confidence, TrustEstimate, TrustValue};
use crate::typology::{Centralization, MechanismInfo, Scope, Subject};
use std::collections::BTreeMap;

/// Credibility measure for feedback sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Credibility {
    /// Trust-Value-based Measure: a reporter's credibility is its own
    /// (recursively computed) trust value.
    Tvm,
    /// Personalized Similarity Measure: credibility is rating-behaviour
    /// similarity with the querying peer over commonly rated subjects.
    Psm,
}

#[derive(Debug, Clone)]
struct Record {
    rater: AgentId,
    score: f64,
    at: Time,
}

/// The PeerTrust metric.
#[derive(Debug, Clone)]
pub struct PeerTrustMechanism {
    credibility: Credibility,
    /// Weight α of the satisfaction term.
    alpha: f64,
    /// Weight β of the community-context term.
    beta: f64,
    /// Sliding window length (recent transactions considered).
    window: u64,
    records: BTreeMap<SubjectId, Vec<Record>>,
    /// Ratings filed per agent (for the community factor + PSM).
    filed: BTreeMap<AgentId, BTreeMap<SubjectId, f64>>,
    now: Time,
    submitted: usize,
}

impl Default for PeerTrustMechanism {
    fn default() -> Self {
        Self::new()
    }
}

impl PeerTrustMechanism {
    /// PeerTrust with PSM credibility, `α = 0.9`, `β = 0.1`, window 200.
    pub fn new() -> Self {
        Self::with_params(Credibility::Psm, 0.9, 0.1, 200)
    }

    /// PeerTrust with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `alpha + beta == 1` (within 1e-9) and `window > 0`.
    pub fn with_params(credibility: Credibility, alpha: f64, beta: f64, window: u64) -> Self {
        assert!((alpha + beta - 1.0).abs() < 1e-9, "alpha + beta must be 1");
        assert!(window > 0, "window must be positive");
        PeerTrustMechanism {
            credibility,
            alpha,
            beta,
            window,
            records: BTreeMap::new(),
            filed: BTreeMap::new(),
            now: Time::ZERO,
            submitted: 0,
        }
    }

    /// Rating-behaviour similarity between two raters (PSM): 1 − RMS
    /// difference over commonly rated subjects; neutral 0.5 without overlap.
    pub fn rating_similarity(&self, a: AgentId, b: AgentId) -> f64 {
        if a == b {
            return 1.0;
        }
        let (Some(ra), Some(rb)) = (self.filed.get(&a), self.filed.get(&b)) else {
            return 0.5;
        };
        let mut sq = 0.0;
        let mut n = 0usize;
        for (subject, &va) in ra {
            if let Some(&vb) = rb.get(subject) {
                sq += (va - vb) * (va - vb);
                n += 1;
            }
        }
        if n == 0 {
            0.5
        } else {
            1.0 - (sq / n as f64).sqrt()
        }
    }

    /// The community-context factor: participation ratio of an agent
    /// (how much feedback it files relative to the most active filer).
    fn community_factor(&self, subject: SubjectId) -> f64 {
        let SubjectId::Agent(agent) = subject else {
            return 0.0;
        };
        let mine = self.filed.get(&agent).map(BTreeMap::len).unwrap_or(0) as f64;
        let max = self.filed.values().map(BTreeMap::len).max().unwrap_or(0) as f64;
        if max == 0.0 {
            0.0
        } else {
            mine / max
        }
    }

    /// Simple trust value used for TVM credibility: windowed mean score of
    /// the reporter as a *subject* (one-level recursion, as the paper
    /// suggests for tractability).
    fn simple_trust(&self, agent: AgentId) -> f64 {
        let Some(records) = self.records.get(&SubjectId::Agent(agent)) else {
            return 0.5;
        };
        let recent: Vec<&Record> = records
            .iter()
            .filter(|r| self.now.since(r.at) < self.window)
            .collect();
        if recent.is_empty() {
            return 0.5;
        }
        recent.iter().map(|r| r.score).sum::<f64>() / recent.len() as f64
    }

    fn trust_for(&self, observer: Option<AgentId>, subject: SubjectId) -> Option<TrustEstimate> {
        let records = self.records.get(&subject)?;
        let recent: Vec<&Record> = records
            .iter()
            .filter(|r| self.now.since(r.at) < self.window)
            .collect();
        if recent.is_empty() {
            return None;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for r in &recent {
            let cr = match (self.credibility, observer) {
                (Credibility::Psm, Some(o)) => self.rating_similarity(o, r.rater),
                (Credibility::Psm, None) | (Credibility::Tvm, _) => self.simple_trust(r.rater),
            };
            num += cr * r.score;
            den += cr;
        }
        let satisfaction = if den > 0.0 { num / den } else { 0.5 };
        let value = self.alpha * satisfaction + self.beta * self.community_factor(subject);
        Some(TrustEstimate::new(
            TrustValue::new(value),
            evidence_confidence(recent.len(), 4.0),
        ))
    }
}

impl ReputationMechanism for PeerTrustMechanism {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            key: "peertrust",
            display: "L. Xiong & L. Liu (PeerTrust)",
            centralization: Centralization::Decentralized,
            subject: Subject::PersonAgent,
            scope: Scope::Global,
            citation: "33",
            proposed_for_web_services: false,
        }
    }

    fn submit(&mut self, feedback: &Feedback) {
        self.now = self.now.max(feedback.at);
        self.records
            .entry(feedback.subject)
            .or_default()
            .push(Record {
                rater: feedback.rater,
                score: feedback.score,
                at: feedback.at,
            });
        self.filed
            .entry(feedback.rater)
            .or_default()
            .insert(feedback.subject, feedback.score);
        self.submitted += 1;
    }

    fn global(&self, subject: SubjectId) -> Option<TrustEstimate> {
        self.trust_for(None, subject)
    }

    fn personalized(&self, observer: AgentId, subject: SubjectId) -> Option<TrustEstimate> {
        self.trust_for(Some(observer), subject)
    }

    fn refresh(&mut self, now: Time) {
        self.now = self.now.max(now);
    }

    fn feedback_count(&self) -> usize {
        self.submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fb(rater: u64, subject: u64, score: f64, t: u64) -> Feedback {
        Feedback::scored(
            AgentId::new(rater),
            AgentId::new(subject),
            score,
            Time::new(t),
        )
    }

    fn s(i: u64) -> SubjectId {
        AgentId::new(i).into()
    }

    #[test]
    fn satisfaction_mean_drives_trust() {
        let mut m = PeerTrustMechanism::new();
        for t in 0..10 {
            m.submit(&fb(t, 100, 0.9, t));
        }
        let est = m.global(s(100)).unwrap();
        assert!(est.value.get() > 0.7);
    }

    #[test]
    fn window_expires_old_transactions() {
        let mut m = PeerTrustMechanism::with_params(Credibility::Tvm, 0.9, 0.1, 10);
        m.submit(&fb(0, 100, 0.1, 0));
        m.submit(&fb(1, 100, 0.1, 1));
        // Much later, fresh good behaviour.
        for t in 100..110 {
            m.submit(&fb(t, 100, 0.95, t));
        }
        let est = m.global(s(100)).unwrap();
        assert!(
            est.value.get() > 0.8,
            "stale negatives expired: {}",
            est.value
        );
    }

    #[test]
    fn psm_discounts_dissimilar_raters() {
        let mut m = PeerTrustMechanism::new();
        // Observer 0 and rater 1 agree on subjects 10, 11; rater 2 disagrees.
        for (subj, score) in [(10u64, 0.9), (11, 0.8)] {
            m.submit(&fb(0, subj, score, 0));
            m.submit(&fb(1, subj, score, 0));
            m.submit(&fb(2, subj, 1.0 - score, 0));
        }
        assert!(
            m.rating_similarity(AgentId::new(0), AgentId::new(1))
                > m.rating_similarity(AgentId::new(0), AgentId::new(2))
        );
        // Rater 1 praises subject 50, rater 2 trashes it: observer 0 should
        // side with the similar rater.
        m.submit(&fb(1, 50, 0.95, 1));
        m.submit(&fb(2, 50, 0.05, 1));
        let est = m.personalized(AgentId::new(0), s(50)).unwrap();
        assert!(est.value.get() > 0.6, "got {}", est.value);
    }

    #[test]
    fn community_factor_rewards_participation() {
        let mut m = PeerTrustMechanism::with_params(Credibility::Tvm, 0.5, 0.5, 100);
        // Subjects 1 and 2 get identical satisfaction; 1 also files a lot
        // of feedback, 2 files none.
        for t in 0..5 {
            m.submit(&fb(10, 1, 0.6, t));
            m.submit(&fb(10, 2, 0.6, t));
        }
        for i in 0..10 {
            m.submit(&fb(1, 20 + i, 0.5, 5));
        }
        let active = m.global(s(1)).unwrap();
        let silent = m.global(s(2)).unwrap();
        assert!(active.value.get() > silent.value.get());
    }

    #[test]
    fn tvm_weights_by_reporter_trust() {
        let mut m = PeerTrustMechanism::with_params(Credibility::Tvm, 1.0, 0.0, 1000);
        // Reporter 1 is trusted (rated well), reporter 2 distrusted.
        for t in 0..5 {
            m.submit(&fb(50, 1, 0.95, t));
            m.submit(&fb(50, 2, 0.05, t));
        }
        // They disagree about subject 100.
        m.submit(&fb(1, 100, 0.9, 6));
        m.submit(&fb(2, 100, 0.1, 6));
        let est = m.global(s(100)).unwrap();
        assert!(
            est.value.get() > 0.6,
            "trusted reporter wins: {}",
            est.value
        );
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let mut m = PeerTrustMechanism::new();
        m.submit(&fb(0, 10, 0.9, 0));
        m.submit(&fb(1, 10, 0.2, 0));
        let ab = m.rating_similarity(AgentId::new(0), AgentId::new(1));
        let ba = m.rating_similarity(AgentId::new(1), AgentId::new(0));
        assert!((ab - ba).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&ab));
        assert_eq!(m.rating_similarity(AgentId::new(0), AgentId::new(0)), 1.0);
    }

    #[test]
    fn unknown_subject_is_none() {
        let m = PeerTrustMechanism::new();
        assert_eq!(m.global(s(9)), None);
    }

    #[test]
    #[should_panic(expected = "alpha + beta must be 1")]
    fn mismatched_weights_panic() {
        PeerTrustMechanism::with_params(Credibility::Psm, 0.5, 0.2, 10);
    }
}
