//! Aberer & Despotovic — "Managing trust in a peer-2-peer information
//! system" (CIKM 2001), reference \[1\].
//!
//! *Decentralized, person/agent, global.* The earliest P-Grid-based trust
//! system works purely with **complaints**: after a bad interaction, a peer
//! files a complaint about the other. A peer's complaint index combines the
//! complaints it *received* with the complaints it *filed* (filing many
//! complaints is itself suspicious — a cheap way to badmouth):
//!
//! ```text
//! T(q) = cr(q) = |complaints about q| × |complaints filed by q|
//! ```
//!
//! Low index = trustworthy. A peer is distrusted when its index exceeds a
//! multiple of the population median. The storage/routing embodiment over
//! a P-Grid lives in `wsrep-net`.

use crate::feedback::Feedback;
use crate::id::SubjectId;
use crate::mechanism::{ReputationMechanism, SubjectAccumulator};
use crate::trust::{evidence_confidence, TrustEstimate, TrustValue};
use crate::typology::{Centralization, MechanismInfo, Scope, Subject};
use std::collections::BTreeMap;

/// Complaint-based trust.
#[derive(Debug, Clone)]
pub struct ComplaintsMechanism {
    /// Score below which an interaction produces a complaint.
    complaint_threshold: f64,
    received: BTreeMap<SubjectId, u64>,
    filed: BTreeMap<SubjectId, u64>,
    /// Interactions seen per subject (complaints + satisfactory ones).
    interactions: BTreeMap<SubjectId, u64>,
    submitted: usize,
}

impl Default for ComplaintsMechanism {
    fn default() -> Self {
        Self::new()
    }
}

impl ComplaintsMechanism {
    /// Complaints fire below a satisfaction of 0.5.
    pub fn new() -> Self {
        Self::with_threshold(0.5)
    }

    /// Explicit complaint threshold in `\[0, 1\]`.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is outside `\[0, 1\]`.
    pub fn with_threshold(complaint_threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&complaint_threshold),
            "threshold must be in [0,1]"
        );
        ComplaintsMechanism {
            complaint_threshold,
            received: BTreeMap::new(),
            filed: BTreeMap::new(),
            interactions: BTreeMap::new(),
            submitted: 0,
        }
    }

    /// The complaint index `cr(q)`; uses `(filed + 1)` so pure receivers
    /// are still distinguishable.
    pub fn complaint_index(&self, subject: SubjectId) -> f64 {
        let r = self.received.get(&subject).copied().unwrap_or(0) as f64;
        let f = self.filed.get(&subject).copied().unwrap_or(0) as f64;
        r * (f + 1.0)
    }

    /// Median complaint index over all known subjects (the decision
    /// baseline of the original algorithm).
    pub fn median_index(&self) -> f64 {
        let mut idx: Vec<f64> = self
            .interactions
            .keys()
            .map(|&s| self.complaint_index(s))
            .collect();
        if idx.is_empty() {
            return 0.0;
        }
        idx.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        idx[idx.len() / 2]
    }

    /// The binary decision of the original paper: distrust a subject whose
    /// index exceeds `factor ×` the median (they suggest small factors).
    pub fn is_distrusted(&self, subject: SubjectId, factor: f64) -> bool {
        self.complaint_index(subject) > factor * self.median_index().max(1.0)
    }
}

impl ReputationMechanism for ComplaintsMechanism {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            key: "complaints",
            display: "K. Aberer & Z. Despotovic",
            centralization: Centralization::Decentralized,
            subject: Subject::PersonAgent,
            scope: Scope::Global,
            citation: "1",
            proposed_for_web_services: false,
        }
    }

    fn submit(&mut self, feedback: &Feedback) {
        let rater: SubjectId = feedback.rater.into();
        *self.interactions.entry(feedback.subject).or_insert(0) += 1;
        self.interactions.entry(rater).or_insert(0);
        if feedback.is_complaint(self.complaint_threshold) {
            *self.received.entry(feedback.subject).or_insert(0) += 1;
            *self.filed.entry(rater).or_insert(0) += 1;
        }
        self.submitted += 1;
    }

    fn global(&self, subject: SubjectId) -> Option<TrustEstimate> {
        let n = self.interactions.get(&subject).copied()?;
        let received = self.received.get(&subject).copied().unwrap_or(0) as f64;
        // Trust falls with the complaint *rate*, additionally discounted by
        // the filed-complaint suspicion factor.
        let rate = if n > 0 { received / n as f64 } else { 0.0 };
        let filed = self.filed.get(&subject).copied().unwrap_or(0) as f64;
        let suspicion = 1.0 / (1.0 + filed / 10.0);
        let base = 1.0 - rate;
        Some(TrustEstimate::new(
            TrustValue::new(0.5 + (base - 0.5) * suspicion),
            evidence_confidence(n as usize, 4.0),
        ))
    }

    fn feedback_count(&self) -> usize {
        self.submitted
    }

    fn accumulator(&self) -> Option<Box<dyn SubjectAccumulator>> {
        Some(Box::new(ComplaintsAccumulator {
            complaint_threshold: self.complaint_threshold,
            interactions: 0,
            received: 0,
            filed: 0,
        }))
    }
}

/// The complaints fold. A subject's estimate depends on complaints it
/// *received* (reports about it) and complaints it *filed* — and in a
/// per-subject log the subject only appears as a filer when it complains
/// about itself, which the fold tracks via the self-rating check. The
/// population-median decision baseline ([`ComplaintsMechanism::median_index`])
/// is inherently cross-subject and stays on the full mechanism.
#[derive(Debug, Clone, Copy)]
pub struct ComplaintsAccumulator {
    complaint_threshold: f64,
    interactions: u64,
    received: u64,
    filed: u64,
}

impl SubjectAccumulator for ComplaintsAccumulator {
    fn absorb(&mut self, feedback: &Feedback) {
        self.interactions += 1;
        if feedback.is_complaint(self.complaint_threshold) {
            self.received += 1;
            if SubjectId::from(feedback.rater) == feedback.subject {
                self.filed += 1;
            }
        }
    }

    fn estimate(&self) -> Option<TrustEstimate> {
        if self.interactions == 0 {
            return None;
        }
        let rate = self.received as f64 / self.interactions as f64;
        let suspicion = 1.0 / (1.0 + self.filed as f64 / 10.0);
        let base = 1.0 - rate;
        Some(TrustEstimate::new(
            TrustValue::new(0.5 + (base - 0.5) * suspicion),
            evidence_confidence(self.interactions as usize, 4.0),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::AgentId;
    use crate::time::Time;

    fn fb(rater: u64, subject: u64, score: f64) -> Feedback {
        Feedback::scored(
            AgentId::new(rater),
            AgentId::new(subject),
            score,
            Time::ZERO,
        )
    }

    fn s(i: u64) -> SubjectId {
        AgentId::new(i).into()
    }

    #[test]
    fn cheaters_accumulate_complaints() {
        let mut m = ComplaintsMechanism::new();
        for r in 0..10 {
            m.submit(&fb(r, 100, 0.1)); // cheater
            m.submit(&fb(r, 101, 0.9)); // honest peer
        }
        assert!(m.complaint_index(s(100)) > m.complaint_index(s(101)));
        let cheater = m.global(s(100)).unwrap();
        let honest = m.global(s(101)).unwrap();
        assert!(cheater.value.get() < 0.3);
        assert!(honest.value.get() > 0.7);
    }

    #[test]
    fn filing_many_complaints_is_suspicious() {
        let mut m = ComplaintsMechanism::new();
        // Peers 1 and 2 both receive 3 complaints; peer 1 additionally
        // files complaints against everyone.
        for r in 10..13 {
            m.submit(&fb(r, 1, 0.1));
            m.submit(&fb(r, 2, 0.1));
        }
        for v in 20..60 {
            m.submit(&fb(1, v, 0.1));
        }
        assert!(m.complaint_index(s(1)) > m.complaint_index(s(2)));
    }

    #[test]
    fn median_decision_flags_outliers() {
        let mut m = ComplaintsMechanism::new();
        for peer in 0..8u64 {
            m.submit(&fb(100, peer, 0.9)); // population mostly clean
        }
        for r in 0..12 {
            m.submit(&fb(r, 7, 0.1)); // peer 7 misbehaves a lot
        }
        assert!(m.is_distrusted(s(7), 4.0));
        assert!(!m.is_distrusted(s(0), 4.0));
    }

    #[test]
    fn satisfactory_interactions_do_not_complain() {
        let mut m = ComplaintsMechanism::new();
        m.submit(&fb(0, 1, 0.9));
        assert_eq!(m.complaint_index(s(1)), 0.0);
        let est = m.global(s(1)).unwrap();
        assert!(est.value.get() > 0.5);
    }

    #[test]
    fn unknown_subject_is_none() {
        let m = ComplaintsMechanism::new();
        assert_eq!(m.global(s(5)), None);
        assert_eq!(m.median_index(), 0.0);
    }

    #[test]
    #[should_panic(expected = "threshold must be in [0,1]")]
    fn invalid_threshold_panics() {
        ComplaintsMechanism::with_threshold(2.0);
    }
}
