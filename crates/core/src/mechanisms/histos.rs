//! Histos — Zacharia, Moukas & Maes (HICSS-32), reference \[37\].
//!
//! The *personalized* sibling of Sporas: reputation is computed from the
//! rating graph rooted at the querying user. The most recent rating each
//! rater gave a ratee forms a directed edge; the personalized reputation of
//! `z` for observer `o` is a recursive weighted mean over the raters of
//! `z`, weighting each rater's rating by that rater's own personalized
//! reputation in `o`'s eyes, up to a recursion horizon.

use crate::feedback::Feedback;
use crate::id::{AgentId, SubjectId};
use crate::mechanism::ReputationMechanism;
use crate::time::Time;
use crate::trust::{evidence_confidence, TrustEstimate, TrustValue};
use crate::typology::{Centralization, MechanismInfo, Scope, Subject};
use std::collections::{BTreeMap, BTreeSet};

/// Histos with a configurable recursion depth.
#[derive(Debug, Clone)]
pub struct HistosMechanism {
    /// Most recent rating per (rater, ratee) edge with its timestamp.
    edges: BTreeMap<AgentId, BTreeMap<SubjectId, (f64, Time)>>,
    /// Recursion horizon (the original uses breadth-first level expansion).
    max_depth: usize,
    submitted: usize,
}

impl Default for HistosMechanism {
    fn default() -> Self {
        Self::new()
    }
}

impl HistosMechanism {
    /// Histos with recursion depth 4.
    pub fn new() -> Self {
        Self::with_depth(4)
    }

    /// Histos with an explicit recursion depth (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `max_depth == 0`.
    pub fn with_depth(max_depth: usize) -> Self {
        assert!(max_depth > 0, "depth must be at least 1");
        HistosMechanism {
            edges: BTreeMap::new(),
            max_depth,
            submitted: 0,
        }
    }

    /// The raters that have rated `subject`, with their latest ratings.
    fn raters_of(&self, subject: SubjectId) -> impl Iterator<Item = (AgentId, f64)> + '_ {
        self.edges.iter().filter_map(move |(rater, rated)| {
            rated.get(&subject).map(|&(score, _)| (*rater, score))
        })
    }

    /// Personalized reputation of `subject` for `observer`, recursive.
    fn rep(
        &self,
        observer: AgentId,
        subject: SubjectId,
        depth: usize,
        on_path: &mut BTreeSet<SubjectId>,
    ) -> Option<f64> {
        // A direct, personal rating overrides everything — personal
        // experience is the root of the Histos graph.
        if let Some(&(score, _)) = self.edges.get(&observer).and_then(|r| r.get(&subject)) {
            return Some(score);
        }
        if depth == 0 {
            return None;
        }
        // Weighted mean over raters of `subject`, weighted by the rater's
        // own personalized reputation for the observer.
        let mut num = 0.0;
        let mut den = 0.0;
        for (rater, score) in self.raters_of(subject) {
            let rater_subject = SubjectId::Agent(rater);
            if rater_subject == subject || on_path.contains(&rater_subject) {
                continue;
            }
            on_path.insert(rater_subject);
            let weight = self
                .rep(observer, rater_subject, depth - 1, on_path)
                .unwrap_or(0.5); // unknown raters weigh neutrally
            on_path.remove(&rater_subject);
            num += weight * score;
            den += weight;
        }
        if den > 0.0 {
            Some(num / den)
        } else {
            None
        }
    }
}

impl ReputationMechanism for HistosMechanism {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            key: "histos",
            display: "Histos",
            centralization: Centralization::Centralized,
            subject: Subject::PersonAgent,
            scope: Scope::Personalized,
            citation: "37",
            proposed_for_web_services: false,
        }
    }

    fn submit(&mut self, feedback: &Feedback) {
        let edge = self
            .edges
            .entry(feedback.rater)
            .or_default()
            .entry(feedback.subject)
            .or_insert((feedback.score, feedback.at));
        // Keep only the most recent rating per pair, as Histos prescribes.
        if feedback.at >= edge.1 {
            *edge = (feedback.score, feedback.at);
        }
        self.submitted += 1;
    }

    fn global(&self, subject: SubjectId) -> Option<TrustEstimate> {
        // The population view: plain mean of the latest rating per rater.
        let ratings: Vec<f64> = self.raters_of(subject).map(|(_, s)| s).collect();
        if ratings.is_empty() {
            return None;
        }
        let mean = ratings.iter().sum::<f64>() / ratings.len() as f64;
        Some(TrustEstimate::new(
            TrustValue::new(mean),
            evidence_confidence(ratings.len(), 3.0),
        ))
    }

    fn personalized(&self, observer: AgentId, subject: SubjectId) -> Option<TrustEstimate> {
        let mut on_path = BTreeSet::new();
        on_path.insert(SubjectId::Agent(observer));
        let value = self.rep(observer, subject, self.max_depth, &mut on_path)?;
        let n = self.raters_of(subject).count();
        Some(TrustEstimate::new(
            TrustValue::new(value),
            evidence_confidence(n.max(1), 3.0),
        ))
    }

    fn feedback_count(&self) -> usize {
        self.submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ServiceId;

    fn fb(rater: u64, subject: SubjectId, score: f64, t: u64) -> Feedback {
        Feedback::scored(AgentId::new(rater), subject, score, Time::new(t))
    }

    #[test]
    fn direct_experience_dominates() {
        let mut m = HistosMechanism::new();
        let s: SubjectId = ServiceId::new(1).into();
        // Everyone else loves the service, but the observer had a bad time.
        for r in 1..6 {
            m.submit(&fb(r, s, 0.95, 0));
        }
        m.submit(&fb(0, s, 0.1, 1));
        let personal = m.personalized(AgentId::new(0), s).unwrap();
        assert!(personal.value.get() < 0.2);
        let global = m.global(s).unwrap();
        assert!(global.value.get() > 0.7);
    }

    #[test]
    fn newer_rating_replaces_older_per_pair() {
        let mut m = HistosMechanism::new();
        let s: SubjectId = ServiceId::new(1).into();
        m.submit(&fb(0, s, 0.2, 0));
        m.submit(&fb(0, s, 0.9, 5));
        let est = m.personalized(AgentId::new(0), s).unwrap();
        assert!((est.value.get() - 0.9).abs() < 1e-12);
        // Out-of-order old rating does not clobber the newer one.
        m.submit(&fb(0, s, 0.1, 2));
        let est = m.personalized(AgentId::new(0), s).unwrap();
        assert!((est.value.get() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn indirect_reputation_weights_by_rater_trust() {
        let mut m = HistosMechanism::new();
        let s: SubjectId = ServiceId::new(1).into();
        let trusted = AgentId::new(1);
        let distrusted = AgentId::new(2);
        // Observer 0 trusts rater 1, distrusts rater 2 (near-zero weight).
        m.submit(&fb(0, trusted.into(), 1.0, 0));
        m.submit(&fb(0, distrusted.into(), 0.0, 0));
        // Rater 1 says the service is bad; rater 2 says it is great.
        m.submit(&fb(1, s, 0.1, 1));
        m.submit(&fb(2, s, 0.9, 1));
        let est = m.personalized(AgentId::new(0), s).unwrap();
        // Weighted mean: (1.0*0.1 + 0.0*0.9) / 1.0 = 0.1.
        assert!(est.value.get() < 0.2, "got {}", est.value);
    }

    #[test]
    fn unknown_subject_yields_none() {
        let m = HistosMechanism::new();
        assert!(m
            .personalized(AgentId::new(0), ServiceId::new(9).into())
            .is_none());
        assert!(m.global(ServiceId::new(9).into()).is_none());
    }

    #[test]
    fn two_hop_chain_resolves() {
        let mut m = HistosMechanism::new();
        let s: SubjectId = ServiceId::new(1).into();
        // 0 rated 1; 1 rated 2; 2 rated the service.
        m.submit(&fb(0, AgentId::new(1).into(), 1.0, 0));
        m.submit(&fb(1, AgentId::new(2).into(), 1.0, 0));
        m.submit(&fb(2, s, 0.8, 0));
        let est = m.personalized(AgentId::new(0), s).unwrap();
        assert!((est.value.get() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn depth_limit_stops_resolution() {
        let mut m = HistosMechanism::with_depth(1);
        let s: SubjectId = ServiceId::new(1).into();
        m.submit(&fb(0, AgentId::new(1).into(), 1.0, 0));
        m.submit(&fb(1, AgentId::new(2).into(), 1.0, 0));
        m.submit(&fb(2, s, 0.8, 0));
        // Depth 1: rater 2's weight cannot be resolved (needs 2 hops), so
        // it falls back to the neutral 0.5 weight but still resolves.
        let est = m.personalized(AgentId::new(0), s).unwrap();
        assert!((est.value.get() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn rating_cycles_terminate() {
        let mut m = HistosMechanism::new();
        let a: SubjectId = AgentId::new(1).into();
        let b: SubjectId = AgentId::new(2).into();
        m.submit(&fb(1, b, 0.9, 0));
        m.submit(&fb(2, a, 0.9, 0));
        let s: SubjectId = ServiceId::new(5).into();
        m.submit(&fb(1, s, 0.7, 0));
        // Observer 0 with no direct edges: resolution walks the 1<->2 cycle
        // but must terminate.
        let est = m.personalized(AgentId::new(0), s);
        assert!(est.is_some());
    }

    #[test]
    fn classification_is_centralized_person_personalized() {
        let info = HistosMechanism::new().info();
        assert_eq!(info.scope, Scope::Personalized);
        assert_eq!(info.subject, Subject::PersonAgent);
    }
}
