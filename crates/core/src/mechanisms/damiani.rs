//! Damiani et al. — "A Reputation-Based Approach for Choosing Reliable
//! Resources in Peer-to-Peer Networks" (CCS 2002, XRep), reference \[4\].
//!
//! *Decentralized, person/agent, personalized.* Before downloading, a peer
//! **polls** the network about a resource/servent; peers that have an
//! opinion vote; the poller tallies the (optionally credibility-weighted)
//! votes and decides. Every peer keeps only *local* experience tables, so
//! each poller gets its own personalized answer depending on whom it can
//! reach. The flooding embodiment lives in `wsrep-net`; this module is the
//! vote bookkeeping and tallying.

use crate::feedback::Feedback;
use crate::id::{AgentId, SubjectId};
use crate::mechanism::ReputationMechanism;
use crate::trust::{evidence_confidence, TrustEstimate, TrustValue};
use crate::typology::{Centralization, MechanismInfo, Scope, Subject};
use std::collections::BTreeMap;

/// A peer's local binary opinion of a subject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vote {
    /// Good experiences dominate.
    Plus,
    /// Bad experiences dominate.
    Minus,
}

/// XRep-style local experience tables with poll tallying.
#[derive(Debug, Clone, Default)]
pub struct DamianiMechanism {
    /// experience[peer][subject] = (good, bad) interaction counts.
    experience: BTreeMap<AgentId, BTreeMap<SubjectId, (u64, u64)>>,
    /// Poller-side credibility of other voters, learned from poll outcomes
    /// (vote agreed with the poller's eventual experience → credibility up).
    credibility: BTreeMap<AgentId, BTreeMap<AgentId, (u64, u64)>>,
    submitted: usize,
}

impl DamianiMechanism {
    /// Empty tables.
    pub fn new() -> Self {
        Self::default()
    }

    /// The local vote `peer` would cast about `subject`, if any.
    pub fn vote_of(&self, peer: AgentId, subject: SubjectId) -> Option<Vote> {
        let &(good, bad) = self.experience.get(&peer)?.get(&subject)?;
        if good == bad {
            None // abstain on ties
        } else if good > bad {
            Some(Vote::Plus)
        } else {
            Some(Vote::Minus)
        }
    }

    /// Poller-side credibility of a voter in `\[0, 1\]`; 0.5 when unknown.
    pub fn voter_credibility(&self, poller: AgentId, voter: AgentId) -> f64 {
        match self.credibility.get(&poller).and_then(|c| c.get(&voter)) {
            None => 0.5,
            Some(&(agreed, disagreed)) => {
                (agreed as f64 + 1.0) / ((agreed + disagreed) as f64 + 2.0)
            }
        }
    }

    /// After a poll and a real interaction, the poller updates each
    /// voter's credibility by whether its vote matched the outcome.
    pub fn judge_vote(&mut self, poller: AgentId, voter: AgentId, vote: Vote, outcome_good: bool) {
        let agreed = (vote == Vote::Plus) == outcome_good;
        let e = self
            .credibility
            .entry(poller)
            .or_default()
            .entry(voter)
            .or_insert((0, 0));
        if agreed {
            e.0 += 1;
        } else {
            e.1 += 1;
        }
    }

    /// Run a poll on behalf of `poller`: every peer with an opinion votes;
    /// votes are weighted by poller-side credibility. Returns
    /// `(weighted_plus, weighted_minus, voter_count)`.
    pub fn poll(&self, poller: AgentId, subject: SubjectId) -> (f64, f64, usize) {
        let mut plus = 0.0;
        let mut minus = 0.0;
        let mut voters = 0;
        for &peer in self.experience.keys() {
            if peer == poller {
                continue;
            }
            let Some(vote) = self.vote_of(peer, subject) else {
                continue;
            };
            let w = self.voter_credibility(poller, peer);
            match vote {
                Vote::Plus => plus += w,
                Vote::Minus => minus += w,
            }
            voters += 1;
        }
        (plus, minus, voters)
    }
}

impl ReputationMechanism for DamianiMechanism {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            key: "damiani",
            display: "E. Damiani",
            centralization: Centralization::Decentralized,
            subject: Subject::PersonAgent,
            scope: Scope::Personalized,
            citation: "4",
            proposed_for_web_services: false,
        }
    }

    fn submit(&mut self, feedback: &Feedback) {
        let e = self
            .experience
            .entry(feedback.rater)
            .or_default()
            .entry(feedback.subject)
            .or_insert((0, 0));
        if feedback.is_positive(0.5) {
            e.0 += 1;
        } else {
            e.1 += 1;
        }
        self.submitted += 1;
    }

    fn global(&self, subject: SubjectId) -> Option<TrustEstimate> {
        // Population view: unweighted vote tally.
        let mut plus = 0u64;
        let mut minus = 0u64;
        for &peer in self.experience.keys() {
            match self.vote_of(peer, subject) {
                Some(Vote::Plus) => plus += 1,
                Some(Vote::Minus) => minus += 1,
                None => {}
            }
        }
        let total = plus + minus;
        if total == 0 {
            return None;
        }
        Some(TrustEstimate::new(
            TrustValue::new(plus as f64 / total as f64),
            evidence_confidence(total as usize, 3.0),
        ))
    }

    fn personalized(&self, observer: AgentId, subject: SubjectId) -> Option<TrustEstimate> {
        // Own experience first (XRep consults local tables before polling).
        if let Some(vote) = self.vote_of(observer, subject) {
            let &(g, b) = self
                .experience
                .get(&observer)
                .and_then(|t| t.get(&subject))
                .expect("vote implies experience");
            let value = match vote {
                Vote::Plus => (g as f64 + 1.0) / ((g + b) as f64 + 2.0),
                Vote::Minus => (g as f64 + 1.0) / ((g + b) as f64 + 2.0),
            };
            return Some(TrustEstimate::new(
                TrustValue::new(value),
                evidence_confidence((g + b) as usize, 3.0),
            ));
        }
        let (plus, minus, voters) = self.poll(observer, subject);
        if voters == 0 {
            return None;
        }
        Some(TrustEstimate::new(
            TrustValue::new(plus / (plus + minus)),
            evidence_confidence(voters, 3.0),
        ))
    }

    fn feedback_count(&self) -> usize {
        self.submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ServiceId;
    use crate::time::Time;

    fn fb(rater: u64, subject: u64, score: f64) -> Feedback {
        Feedback::scored(
            AgentId::new(rater),
            ServiceId::new(subject),
            score,
            Time::ZERO,
        )
    }

    fn s(i: u64) -> SubjectId {
        ServiceId::new(i).into()
    }

    #[test]
    fn votes_follow_experience_majority() {
        let mut m = DamianiMechanism::new();
        m.submit(&fb(0, 1, 0.9));
        m.submit(&fb(0, 1, 0.9));
        m.submit(&fb(0, 1, 0.1));
        assert_eq!(m.vote_of(AgentId::new(0), s(1)), Some(Vote::Plus));
        m.submit(&fb(0, 1, 0.1));
        assert_eq!(m.vote_of(AgentId::new(0), s(1)), None); // tie abstains
    }

    #[test]
    fn poll_tallies_other_peers() {
        let mut m = DamianiMechanism::new();
        for r in 0..4 {
            m.submit(&fb(r, 1, 0.9));
        }
        m.submit(&fb(4, 1, 0.1));
        let (plus, minus, voters) = m.poll(AgentId::new(99), s(1));
        assert_eq!(voters, 5);
        assert!(plus > minus);
    }

    #[test]
    fn credibility_learning_downweights_liars() {
        let mut m = DamianiMechanism::new();
        let poller = AgentId::new(99);
        let liar = AgentId::new(1);
        // Liar votes Plus for things that turn out bad, repeatedly.
        for _ in 0..10 {
            m.judge_vote(poller, liar, Vote::Plus, false);
        }
        assert!(m.voter_credibility(poller, liar) < 0.2);
        // The liar's Plus vote now barely moves a poll.
        m.submit(&fb(1, 5, 0.9)); // liar claims subject 5 is good
        m.submit(&fb(2, 5, 0.1)); // honest peer says bad
        let est = m.personalized(poller, s(5)).unwrap();
        assert!(est.value.get() < 0.4, "got {}", est.value);
    }

    #[test]
    fn own_experience_short_circuits_polling() {
        let mut m = DamianiMechanism::new();
        // The crowd loves it; the observer had bad experiences.
        for r in 1..6 {
            m.submit(&fb(r, 1, 0.9));
        }
        m.submit(&fb(0, 1, 0.1));
        m.submit(&fb(0, 1, 0.1));
        let est = m.personalized(AgentId::new(0), s(1)).unwrap();
        assert!(est.value.get() < 0.5);
    }

    #[test]
    fn no_opinions_yields_none() {
        let m = DamianiMechanism::new();
        assert_eq!(m.global(s(1)), None);
        assert_eq!(m.personalized(AgentId::new(0), s(1)), None);
    }

    #[test]
    fn global_is_unweighted_majority() {
        let mut m = DamianiMechanism::new();
        m.submit(&fb(0, 1, 0.9));
        m.submit(&fb(1, 1, 0.9));
        m.submit(&fb(2, 1, 0.1));
        let est = m.global(s(1)).unwrap();
        assert!((est.value.get() - 2.0 / 3.0).abs() < 1e-9);
    }
}
