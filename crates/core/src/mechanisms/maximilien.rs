//! Maximilien & Singh's agent framework — references \[18–21\].
//!
//! *Centralized, resource, personalized*: service agents and consumer
//! agents share a QoS ontology; each service accumulates per-quality
//! reputation from agent reports, and a consumer agent matches that
//! multi-attribute reputation against its owner's preferences. The
//! framework's distinctive *explorer agents* (the multiagent paper \[19\])
//! re-probe services whose reputation went negative so that improved
//! services can recover — [`MaximilienMechanism::exploration_targets`]
//! exposes the candidates and the simulator drives the probes.

use crate::facets::FacetedTrust;
use crate::feedback::Feedback;
use crate::id::{AgentId, SubjectId};
use crate::mechanism::ReputationMechanism;
use crate::time::Time;
use crate::trust::{evidence_confidence, TrustEstimate, TrustValue};
use crate::typology::{Centralization, MechanismInfo, Scope, Subject};
use std::collections::BTreeMap;
use wsrep_qos::metric::Metric;
use wsrep_qos::preference::Preferences;

/// Per-service multi-attribute reputation with preference matching.
#[derive(Debug, Default)]
pub struct MaximilienMechanism {
    facets: BTreeMap<SubjectId, FacetedTrust>,
    overall: BTreeMap<SubjectId, Vec<(f64, Time)>>,
    profiles: BTreeMap<AgentId, Preferences>,
    now: Time,
    submitted: usize,
}

impl MaximilienMechanism {
    /// Empty mechanism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a consumer agent's preference profile (its slice of the
    /// QoS ontology).
    pub fn set_profile(&mut self, consumer: AgentId, prefs: Preferences) {
        self.profiles.insert(consumer, prefs);
    }

    /// Services whose current global reputation sits below `threshold` —
    /// the set the central node sends explorer agents to, "to give the
    /// services a chance to be selected when they improve their service
    /// quality" (Section 2 of the survey).
    pub fn exploration_targets(&self, threshold: f64) -> Vec<SubjectId> {
        self.overall
            .keys()
            .filter(|&&s| {
                self.global(s)
                    .map(|e| e.value.get() < threshold)
                    .unwrap_or(false)
            })
            .copied()
            .collect()
    }

    /// Trust in one quality attribute of a service.
    pub fn facet(&self, subject: SubjectId, metric: Metric) -> Option<TrustEstimate> {
        self.facets.get(&subject)?.facet(metric, self.now)
    }
}

impl ReputationMechanism for MaximilienMechanism {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            key: "maximilien",
            display: "E. M. Maximilien & M. P. Singh",
            centralization: Centralization::Centralized,
            subject: Subject::Resource,
            scope: Scope::Personalized,
            citation: "18-21",
            proposed_for_web_services: true,
        }
    }

    fn submit(&mut self, feedback: &Feedback) {
        self.now = self.now.max(feedback.at);
        let facets = self.facets.entry(feedback.subject).or_default();
        // Subjective per-aspect ratings feed the ontology attributes.
        for (&metric, &rating) in &feedback.facet_ratings {
            facets.record(metric, rating, feedback.at);
        }
        self.overall
            .entry(feedback.subject)
            .or_default()
            .push((feedback.score, feedback.at));
        self.submitted += 1;
    }

    fn global(&self, subject: SubjectId) -> Option<TrustEstimate> {
        let scores = self.overall.get(&subject)?;
        if scores.is_empty() {
            return None;
        }
        let mean = scores.iter().map(|&(s, _)| s).sum::<f64>() / scores.len() as f64;
        Some(TrustEstimate::new(
            TrustValue::new(mean),
            evidence_confidence(scores.len(), 3.0),
        ))
    }

    fn personalized(&self, observer: AgentId, subject: SubjectId) -> Option<TrustEstimate> {
        let prefs = match self.profiles.get(&observer) {
            Some(p) => p,
            None => return self.global(subject),
        };
        let facets = self.facets.get(&subject)?;
        if facets.is_empty() {
            return self.global(subject);
        }
        let faceted = facets.overall(prefs, self.now);
        // Blend the attribute-matched view with the overall satisfaction
        // mean, weighted by how much facet evidence exists.
        match self.global(subject) {
            Some(overall) => {
                let w = faceted.confidence;
                Some(TrustEstimate::new(
                    overall.value.blend(faceted.value, w),
                    overall.confidence.max(faceted.confidence),
                ))
            }
            None => Some(faceted),
        }
    }

    fn refresh(&mut self, now: Time) {
        self.now = now;
    }

    fn feedback_count(&self) -> usize {
        self.submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ServiceId;

    fn fb(rater: u64, item: u64, score: f64, acc: f64, speed: f64, t: u64) -> Feedback {
        Feedback::scored(
            AgentId::new(rater),
            ServiceId::new(item),
            score,
            Time::new(t),
        )
        .with_facet(Metric::Accuracy, acc)
        .with_facet(Metric::ResponseTime, speed)
    }

    #[test]
    fn facets_develop_independently() {
        let mut m = MaximilienMechanism::new();
        for t in 0..5 {
            m.submit(&fb(t, 1, 0.5, 0.9, 0.1, t));
        }
        let s: SubjectId = ServiceId::new(1).into();
        assert!(m.facet(s, Metric::Accuracy).unwrap().value.get() > 0.8);
        assert!(m.facet(s, Metric::ResponseTime).unwrap().value.get() < 0.2);
    }

    #[test]
    fn personalized_view_matches_agent_ontology_weights() {
        let mut m = MaximilienMechanism::new();
        for t in 0..10 {
            m.submit(&fb(t, 1, 0.5, 0.95, 0.05, t));
        }
        let s: SubjectId = ServiceId::new(1).into();
        m.set_profile(AgentId::new(100), Preferences::uniform([Metric::Accuracy]));
        m.set_profile(
            AgentId::new(101),
            Preferences::uniform([Metric::ResponseTime]),
        );
        let accuracy_first = m.personalized(AgentId::new(100), s).unwrap();
        let speed_first = m.personalized(AgentId::new(101), s).unwrap();
        assert!(accuracy_first.value.get() > speed_first.value.get());
    }

    #[test]
    fn exploration_targets_are_the_negative_reputation_services() {
        let mut m = MaximilienMechanism::new();
        for t in 0..6 {
            m.submit(&fb(t, 1, 0.1, 0.1, 0.1, t)); // bad service
            m.submit(&fb(t, 2, 0.9, 0.9, 0.9, t)); // good service
        }
        let targets = m.exploration_targets(0.4);
        assert_eq!(targets, vec![SubjectId::from(ServiceId::new(1))]);
    }

    #[test]
    fn explorer_feedback_rehabilitates_improved_service() {
        let mut m = MaximilienMechanism::new();
        for t in 0..4 {
            m.submit(&fb(t, 1, 0.1, 0.1, 0.1, t));
        }
        assert!(!m.exploration_targets(0.4).is_empty());
        // Explorer agents find the service improved and file positives.
        for t in 4..20 {
            m.submit(&fb(t, 1, 0.9, 0.9, 0.9, t));
        }
        assert!(m.exploration_targets(0.4).is_empty());
    }

    #[test]
    fn profile_less_observer_sees_global() {
        let mut m = MaximilienMechanism::new();
        m.submit(&fb(0, 1, 0.7, 0.7, 0.7, 0));
        let s: SubjectId = ServiceId::new(1).into();
        assert_eq!(m.personalized(AgentId::new(9), s), m.global(s));
    }

    #[test]
    fn unknown_service_is_none() {
        let m = MaximilienMechanism::new();
        assert_eq!(m.global(ServiceId::new(9).into()), None);
    }
}
