//! The eBay feedback profile — reference \[7\] of the survey.
//!
//! The archetypal *centralized, person/agent, global* system: buyers leave
//! `+1 / 0 / -1` feedback; a member's profile shows the running sum and the
//! positive-feedback percentage. The paper calls it "simple and effective"
//! for settings where personalization does not matter.

use crate::feedback::Feedback;
use crate::id::SubjectId;
use crate::mechanism::{ReputationMechanism, SubjectAccumulator};
use crate::trust::{evidence_confidence, TrustEstimate, TrustValue};
use crate::typology::{Centralization, MechanismInfo, Scope, Subject};
use std::collections::BTreeMap;

/// Running positive/neutral/negative tallies for one subject.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EbayProfile {
    /// Count of `+1` feedback.
    pub positive: u64,
    /// Count of `0` feedback.
    pub neutral: u64,
    /// Count of `-1` feedback.
    pub negative: u64,
}

impl EbayProfile {
    /// eBay's headline number: positives minus negatives.
    pub fn score(&self) -> i64 {
        self.positive as i64 - self.negative as i64
    }

    /// eBay's positive-feedback percentage over non-neutral feedback, or
    /// `None` with no such feedback.
    pub fn positive_fraction(&self) -> Option<f64> {
        let judged = self.positive + self.negative;
        if judged == 0 {
            None
        } else {
            Some(self.positive as f64 / judged as f64)
        }
    }

    /// Total feedback received.
    pub fn total(&self) -> u64 {
        self.positive + self.neutral + self.negative
    }
}

/// The eBay mechanism: ternary feedback, global tallies.
#[derive(Debug, Clone, Default)]
pub struct EbayMechanism {
    profiles: BTreeMap<SubjectId, EbayProfile>,
    submitted: usize,
}

impl EbayMechanism {
    /// Empty mechanism.
    pub fn new() -> Self {
        Self::default()
    }

    /// The raw profile of a subject, if it has any feedback.
    pub fn profile(&self, subject: SubjectId) -> Option<EbayProfile> {
        self.profiles.get(&subject).copied()
    }
}

impl ReputationMechanism for EbayMechanism {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            key: "ebay",
            display: "eBay",
            centralization: Centralization::Centralized,
            subject: Subject::PersonAgent,
            scope: Scope::Global,
            citation: "7",
            proposed_for_web_services: false,
        }
    }

    fn submit(&mut self, feedback: &Feedback) {
        let p = self.profiles.entry(feedback.subject).or_default();
        match feedback.ebay_sign() {
            1 => p.positive += 1,
            -1 => p.negative += 1,
            _ => p.neutral += 1,
        }
        self.submitted += 1;
    }

    fn global(&self, subject: SubjectId) -> Option<TrustEstimate> {
        let p = self.profiles.get(&subject)?;
        let value = p.positive_fraction().unwrap_or(0.5);
        Some(TrustEstimate::new(
            TrustValue::new(value),
            evidence_confidence((p.positive + p.negative) as usize, 5.0),
        ))
    }

    fn feedback_count(&self) -> usize {
        self.submitted
    }

    fn accumulator(&self) -> Option<Box<dyn SubjectAccumulator>> {
        Some(Box::new(EbayAccumulator {
            profile: EbayProfile::default(),
        }))
    }
}

/// The eBay fold: the profile tallies *are* the sufficient statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct EbayAccumulator {
    profile: EbayProfile,
}

impl SubjectAccumulator for EbayAccumulator {
    fn absorb(&mut self, feedback: &Feedback) {
        match feedback.ebay_sign() {
            1 => self.profile.positive += 1,
            -1 => self.profile.negative += 1,
            _ => self.profile.neutral += 1,
        }
    }

    fn estimate(&self) -> Option<TrustEstimate> {
        let p = &self.profile;
        if p.total() == 0 {
            return None;
        }
        Some(TrustEstimate::new(
            TrustValue::new(p.positive_fraction().unwrap_or(0.5)),
            evidence_confidence((p.positive + p.negative) as usize, 5.0),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{AgentId, ServiceId};
    use crate::time::Time;

    fn fb(rater: u64, score: f64) -> Feedback {
        Feedback::scored(AgentId::new(rater), ServiceId::new(1), score, Time::ZERO)
    }

    #[test]
    fn tallies_follow_ternary_buckets() {
        let mut m = EbayMechanism::new();
        m.submit(&fb(0, 0.9));
        m.submit(&fb(1, 0.9));
        m.submit(&fb(2, 0.5));
        m.submit(&fb(3, 0.1));
        let p = m.profile(ServiceId::new(1).into()).unwrap();
        assert_eq!((p.positive, p.neutral, p.negative), (2, 1, 1));
        assert_eq!(p.score(), 1);
        assert_eq!(p.total(), 4);
    }

    #[test]
    fn positive_fraction_ignores_neutrals() {
        let mut m = EbayMechanism::new();
        m.submit(&fb(0, 0.9));
        m.submit(&fb(1, 0.5));
        let p = m.profile(ServiceId::new(1).into()).unwrap();
        assert_eq!(p.positive_fraction(), Some(1.0));
    }

    #[test]
    fn all_neutral_profile_reports_neutral_trust() {
        let mut m = EbayMechanism::new();
        m.submit(&fb(0, 0.5));
        let est = m.global(ServiceId::new(1).into()).unwrap();
        assert_eq!(est.value, TrustValue::NEUTRAL);
        assert_eq!(est.confidence, 0.0);
    }

    #[test]
    fn confidence_grows_with_judged_feedback() {
        let mut m = EbayMechanism::new();
        for i in 0..20 {
            m.submit(&fb(i, 0.9));
        }
        let est = m.global(ServiceId::new(1).into()).unwrap();
        assert_eq!(est.value, TrustValue::MAX);
        assert!(est.confidence > 0.7);
    }

    #[test]
    fn unknown_subject_has_no_reputation() {
        let m = EbayMechanism::new();
        assert_eq!(m.global(ServiceId::new(9).into()), None);
    }

    #[test]
    fn classification_matches_figure4() {
        let info = EbayMechanism::new().info();
        assert_eq!(info.centralization, Centralization::Centralized);
        assert_eq!(info.subject, Subject::PersonAgent);
        assert_eq!(info.scope, Scope::Global);
    }
}
