//! Context-specific trust (Section 3, "Context specific").
//!
//! "Trust and reputation both depend on some context. For example, Mike
//! trusts John as his doctor, but he does not trust John as a mechanic to
//! fix his car." In a web-service market the natural context is the
//! *function category* a service (or provider) operates in.
//! [`ContextualTrust`] keeps separate evidence per `(subject, context)`
//! and, when asked about an unseen context, falls back to a discounted
//! cross-context aggregate — related contexts say *something* about an
//! entity, just much less than in-context experience.

use crate::decay::DecayModel;
use crate::id::SubjectId;
use crate::time::Time;
use crate::trust::{evidence_confidence, TrustEstimate, TrustValue};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A trust context: the function category of the interaction.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct Context(pub u32);

impl fmt::Display for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctx{}", self.0)
    }
}

/// Per-context trust series for a population of subjects.
#[derive(Debug, Clone)]
pub struct ContextualTrust {
    series: BTreeMap<(SubjectId, Context), Vec<(f64, Time)>>,
    decay: DecayModel,
    /// Weight of cross-context evidence when the asked context is unseen
    /// (the paper's point is that this must be well below 1).
    transfer_discount: f64,
}

impl Default for ContextualTrust {
    fn default() -> Self {
        Self::new()
    }
}

impl ContextualTrust {
    /// Default decay, cross-context transfer discounted to 0.3.
    pub fn new() -> Self {
        ContextualTrust {
            series: BTreeMap::new(),
            decay: DecayModel::default(),
            transfer_discount: 0.3,
        }
    }

    /// Explicit decay model and transfer discount.
    ///
    /// # Panics
    ///
    /// Panics if `transfer_discount` is outside `\[0, 1\]`.
    pub fn with_params(decay: DecayModel, transfer_discount: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&transfer_discount),
            "discount must be in [0,1]"
        );
        ContextualTrust {
            series: BTreeMap::new(),
            decay,
            transfer_discount,
        }
    }

    /// Record an in-context experience (`score` in `\[0, 1\]`).
    pub fn record(
        &mut self,
        subject: impl Into<SubjectId>,
        context: Context,
        score: f64,
        at: Time,
    ) {
        self.series
            .entry((subject.into(), context))
            .or_default()
            .push((score.clamp(0.0, 1.0), at));
    }

    /// In-context trust, `None` without in-context evidence.
    pub fn in_context(
        &self,
        subject: impl Into<SubjectId>,
        context: Context,
        now: Time,
    ) -> Option<TrustEstimate> {
        let samples = self.series.get(&(subject.into(), context))?;
        let mean = self.decay.weighted_mean(samples.iter().copied(), now)?;
        Some(TrustEstimate::new(
            TrustValue::new(mean),
            evidence_confidence(samples.len(), 3.0),
        ))
    }

    /// Trust in a context, falling back to a *discounted* cross-context
    /// aggregate when the subject was never seen in `context`:
    /// the value shrinks toward the neutral prior and the confidence is
    /// multiplied by the transfer discount.
    pub fn trust(
        &self,
        subject: impl Into<SubjectId>,
        context: Context,
        now: Time,
    ) -> Option<TrustEstimate> {
        let subject = subject.into();
        if let Some(est) = self.in_context(subject, context, now) {
            return Some(est);
        }
        // Cross-context aggregate.
        let mut estimates = Vec::new();
        for ((s, _), samples) in &self.series {
            if *s != subject {
                continue;
            }
            if let Some(mean) = self.decay.weighted_mean(samples.iter().copied(), now) {
                estimates.push(TrustEstimate::new(
                    TrustValue::new(mean),
                    evidence_confidence(samples.len(), 3.0),
                ));
            }
        }
        if estimates.is_empty() {
            return None;
        }
        let combined = TrustEstimate::combine(estimates);
        let shrunk = TrustValue::NEUTRAL.blend(combined.value, self.transfer_discount);
        Some(TrustEstimate::new(
            shrunk,
            combined.confidence * self.transfer_discount,
        ))
    }

    /// Contexts in which a subject has evidence.
    pub fn contexts_of(&self, subject: impl Into<SubjectId>) -> Vec<Context> {
        let subject = subject.into();
        self.series
            .keys()
            .filter(|&&(s, _)| s == subject)
            .map(|&(_, c)| c)
            .collect()
    }

    /// Total recorded samples.
    pub fn len(&self) -> usize {
        self.series.values().map(Vec::len).sum()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::AgentId;

    const DOCTOR: Context = Context(1);
    const MECHANIC: Context = Context(2);

    fn john() -> AgentId {
        AgentId::new(7)
    }

    /// The paper's own example: trusted as a doctor, not as a mechanic.
    fn mikes_view() -> ContextualTrust {
        let mut ct = ContextualTrust::new();
        for t in 0..6 {
            ct.record(john(), DOCTOR, 0.95, Time::new(t));
            ct.record(john(), MECHANIC, 0.1, Time::new(t));
        }
        ct
    }

    #[test]
    fn trust_separates_by_context() {
        let ct = mikes_view();
        let now = Time::new(6);
        let as_doctor = ct.in_context(john(), DOCTOR, now).unwrap();
        let as_mechanic = ct.in_context(john(), MECHANIC, now).unwrap();
        assert!(as_doctor.value.get() > 0.9);
        assert!(as_mechanic.value.get() < 0.2);
    }

    #[test]
    fn unseen_context_transfers_with_discount() {
        let mut ct = ContextualTrust::new();
        for t in 0..10 {
            ct.record(john(), DOCTOR, 0.95, Time::new(t));
        }
        let now = Time::new(10);
        let as_pharmacist = ct.trust(john(), Context(3), now).unwrap();
        let as_doctor = ct.trust(john(), DOCTOR, now).unwrap();
        // Transfer is positive but strictly weaker than in-context trust.
        assert!(as_pharmacist.value.get() > 0.5);
        assert!(as_pharmacist.value.get() < as_doctor.value.get());
        assert!(as_pharmacist.confidence < as_doctor.confidence);
    }

    #[test]
    fn zero_discount_means_no_transfer_signal() {
        let mut ct = ContextualTrust::with_params(DecayModel::None, 0.0);
        ct.record(john(), DOCTOR, 1.0, Time::ZERO);
        let est = ct.trust(john(), MECHANIC, Time::new(1)).unwrap();
        assert_eq!(est.value, TrustValue::NEUTRAL);
        assert_eq!(est.confidence, 0.0);
    }

    #[test]
    fn unknown_subject_is_none() {
        let ct = mikes_view();
        assert!(ct.trust(AgentId::new(99), DOCTOR, Time::new(6)).is_none());
    }

    #[test]
    fn contexts_of_lists_evidence_contexts() {
        let ct = mikes_view();
        let cs = ct.contexts_of(john());
        assert_eq!(cs, vec![DOCTOR, MECHANIC]);
        assert_eq!(ct.len(), 12);
    }

    #[test]
    fn decay_applies_within_contexts() {
        let mut ct = ContextualTrust::with_params(DecayModel::Exponential { half_life: 1 }, 0.3);
        ct.record(john(), DOCTOR, 0.0, Time::new(0));
        ct.record(john(), DOCTOR, 1.0, Time::new(10));
        let est = ct.in_context(john(), DOCTOR, Time::new(10)).unwrap();
        assert!(est.value.get() > 0.99);
    }

    #[test]
    #[should_panic(expected = "discount must be in [0,1]")]
    fn invalid_discount_panics() {
        ContextualTrust::with_params(DecayModel::None, 1.5);
    }
}
