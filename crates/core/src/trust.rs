//! Trust values and estimates.
//!
//! Section 3 of the paper: *trust* is "personalized and subjective
//! reflecting an individual's opinion" while *reputation* is "objective and
//! represents a collective evaluation". Both are evaluations of
//! trustworthiness and both are reported here as a [`TrustValue`] in
//! `\[0, 1\]`, optionally paired with a confidence, as a [`TrustEstimate`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// A trustworthiness score normalized to `\[0, 1\]`.
///
/// `0.5` is the conventional neutral prior (total ignorance in the beta
/// model); `1` is full trust, `0` full distrust. Construction clamps, so a
/// `TrustValue` is always in range.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct TrustValue(f64);

impl TrustValue {
    /// Complete distrust.
    pub const MIN: TrustValue = TrustValue(0.0);
    /// The ignorance prior.
    pub const NEUTRAL: TrustValue = TrustValue(0.5);
    /// Complete trust.
    pub const MAX: TrustValue = TrustValue(1.0);

    /// Build from a raw score, clamping into `\[0, 1\]`. NaN maps to 0.
    pub fn new(raw: f64) -> Self {
        if raw.is_nan() {
            TrustValue(0.0)
        } else {
            TrustValue(raw.clamp(0.0, 1.0))
        }
    }

    /// The score as `f64` in `\[0, 1\]`.
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Weighted blend: `(1 - w) * self + w * other`, `w` clamped to `\[0,1\]`.
    pub fn blend(self, other: TrustValue, w: f64) -> TrustValue {
        let w = w.clamp(0.0, 1.0);
        TrustValue::new((1.0 - w) * self.0 + w * other.0)
    }
}

impl From<f64> for TrustValue {
    fn from(raw: f64) -> Self {
        TrustValue::new(raw)
    }
}

impl fmt::Display for TrustValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

/// A trust value together with how much evidence backs it.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TrustEstimate {
    /// The trustworthiness score.
    pub value: TrustValue,
    /// Confidence in `\[0, 1\]`: 0 = pure prior, 1 = abundant evidence.
    pub confidence: f64,
}

impl TrustEstimate {
    /// An estimate with explicit confidence.
    pub fn new(value: impl Into<TrustValue>, confidence: f64) -> Self {
        TrustEstimate {
            value: value.into(),
            confidence: confidence.clamp(0.0, 1.0),
        }
    }

    /// A fully confident estimate.
    pub fn certain(value: impl Into<TrustValue>) -> Self {
        Self::new(value, 1.0)
    }

    /// The ignorance prior: neutral value, zero confidence.
    pub fn ignorance() -> Self {
        Self::new(TrustValue::NEUTRAL, 0.0)
    }

    /// Confidence-weighted average of several estimates. Returns
    /// [`Self::ignorance`] when the iterator is empty or all weights are 0.
    pub fn combine<I: IntoIterator<Item = TrustEstimate>>(estimates: I) -> Self {
        let mut num = 0.0;
        let mut den = 0.0;
        let mut max_conf: f64 = 0.0;
        for e in estimates {
            num += e.confidence * e.value.get();
            den += e.confidence;
            max_conf = max_conf.max(e.confidence);
        }
        if den == 0.0 {
            Self::ignorance()
        } else {
            Self::new(num / den, max_conf)
        }
    }
}

/// Confidence from an evidence count: `n / (n + k)` where `k` sets how many
/// observations count as "half certain". The standard saturating form used
/// throughout the mechanisms.
pub fn evidence_confidence(n: usize, k: f64) -> f64 {
    let n = n as f64;
    if k <= 0.0 {
        if n > 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        n / (n + k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_clamps() {
        assert_eq!(TrustValue::new(1.5), TrustValue::MAX);
        assert_eq!(TrustValue::new(-0.2), TrustValue::MIN);
        assert_eq!(TrustValue::new(f64::NAN).get(), 0.0);
    }

    #[test]
    fn blend_interpolates() {
        let t = TrustValue::new(0.0).blend(TrustValue::new(1.0), 0.25);
        assert!((t.get() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn combine_weights_by_confidence() {
        let e =
            TrustEstimate::combine([TrustEstimate::new(1.0, 0.9), TrustEstimate::new(0.0, 0.1)]);
        assert!((e.value.get() - 0.9).abs() < 1e-12);
        assert_eq!(e.confidence, 0.9);
    }

    #[test]
    fn combine_of_nothing_is_ignorance() {
        assert_eq!(TrustEstimate::combine([]), TrustEstimate::ignorance());
        let zeros = [TrustEstimate::new(1.0, 0.0)];
        assert_eq!(TrustEstimate::combine(zeros), TrustEstimate::ignorance());
    }

    #[test]
    fn evidence_confidence_saturates() {
        assert_eq!(evidence_confidence(0, 5.0), 0.0);
        assert!((evidence_confidence(5, 5.0) - 0.5).abs() < 1e-12);
        assert!(evidence_confidence(1000, 5.0) > 0.99);
        assert_eq!(evidence_confidence(3, 0.0), 1.0);
        assert_eq!(evidence_confidence(0, 0.0), 0.0);
    }

    proptest! {
        #[test]
        fn trust_values_always_in_unit_interval(raw in -10.0f64..10.0) {
            let t = TrustValue::new(raw);
            prop_assert!((0.0..=1.0).contains(&t.get()));
        }

        #[test]
        fn blend_stays_between_endpoints(a in 0.0f64..=1.0, b in 0.0f64..=1.0, w in 0.0f64..=1.0) {
            let t = TrustValue::new(a).blend(TrustValue::new(b), w);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(t.get() >= lo - 1e-12 && t.get() <= hi + 1e-12);
        }
    }
}
