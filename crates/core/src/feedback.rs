//! Consumer feedback: the raw material of every reputation mechanism.
//!
//! Section 2 of the paper distinguishes the two kinds of information a
//! consumer reports to the QoS registry after consuming a service:
//!
//! 1. *"quality information collected from actual execution monitoring,
//!    such as response time and execution time"* — here the
//!    [`Feedback::observed`] QoS vector, and
//! 2. *"ratings about the quality of the service, especially the QoS
//!    aspects like accuracy that can not be acquired through execution
//!    monitoring"* — here [`Feedback::facet_ratings`] plus the overall
//!    [`Feedback::score`].

use crate::id::{AgentId, SubjectId};
use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use wsrep_qos::metric::Metric;
use wsrep_qos::value::QosVector;

/// One feedback report from a rater about a subject.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Feedback {
    /// Who reports.
    pub rater: AgentId,
    /// What is being rated: a service, a provider, or another agent.
    pub subject: SubjectId,
    /// Overall satisfaction in `\[0, 1\]`.
    pub score: f64,
    /// Raw QoS values measured during the interaction, if any.
    pub observed: QosVector,
    /// Subjective per-metric ratings in `\[0, 1\]` for aspects that cannot be
    /// measured mechanically (accuracy, confidentiality, …).
    pub facet_ratings: BTreeMap<Metric, f64>,
    /// When the interaction happened.
    pub at: Time,
}

impl Feedback {
    /// A plain overall-score feedback with no per-metric detail.
    ///
    /// ```
    /// use wsrep_core::feedback::Feedback;
    /// use wsrep_core::id::{AgentId, ServiceId};
    /// use wsrep_core::time::Time;
    /// let fb = Feedback::scored(AgentId::new(1), ServiceId::new(2), 0.8, Time::new(3));
    /// assert!(fb.is_positive(0.5));
    /// ```
    pub fn scored(rater: AgentId, subject: impl Into<SubjectId>, score: f64, at: Time) -> Self {
        Feedback {
            rater,
            subject: subject.into(),
            score: score.clamp(0.0, 1.0),
            observed: QosVector::new(),
            facet_ratings: BTreeMap::new(),
            at,
        }
    }

    /// Attach measured QoS values (builder style).
    pub fn with_observed(mut self, observed: QosVector) -> Self {
        self.observed = observed;
        self
    }

    /// Attach a subjective per-metric rating (builder style).
    pub fn with_facet(mut self, metric: Metric, rating: f64) -> Self {
        self.facet_ratings.insert(metric, rating.clamp(0.0, 1.0));
        self
    }

    /// Whether the rater was satisfied relative to `threshold`.
    pub fn is_positive(&self, threshold: f64) -> bool {
        self.score >= threshold
    }

    /// Map the score onto eBay's ternary scale: `+1` (score ≥ 2/3),
    /// `-1` (score ≤ 1/3), `0` otherwise.
    pub fn ebay_sign(&self) -> i8 {
        if self.score >= 2.0 / 3.0 {
            1
        } else if self.score <= 1.0 / 3.0 {
            -1
        } else {
            0
        }
    }

    /// Whether this report is a *complaint* in the Aberer–Despotovic sense
    /// (only negative experiences are filed; anything below the threshold
    /// becomes a complaint).
    pub fn is_complaint(&self, threshold: f64) -> bool {
        self.score < threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ServiceId;

    fn fb(score: f64) -> Feedback {
        Feedback::scored(AgentId::new(0), ServiceId::new(1), score, Time::ZERO)
    }

    #[test]
    fn score_is_clamped() {
        assert_eq!(fb(1.4).score, 1.0);
        assert_eq!(fb(-0.3).score, 0.0);
    }

    #[test]
    fn ebay_sign_buckets() {
        assert_eq!(fb(0.9).ebay_sign(), 1);
        assert_eq!(fb(0.5).ebay_sign(), 0);
        assert_eq!(fb(0.1).ebay_sign(), -1);
        assert_eq!(fb(2.0 / 3.0).ebay_sign(), 1);
        assert_eq!(fb(1.0 / 3.0).ebay_sign(), -1);
    }

    #[test]
    fn complaint_is_below_threshold() {
        assert!(fb(0.2).is_complaint(0.5));
        assert!(!fb(0.5).is_complaint(0.5));
    }

    #[test]
    fn builder_attaches_details() {
        let fb = fb(0.7)
            .with_observed(QosVector::from_pairs([(Metric::ResponseTime, 99.0)]))
            .with_facet(Metric::Accuracy, 2.0);
        assert_eq!(fb.observed.get(Metric::ResponseTime), Some(99.0));
        assert_eq!(fb.facet_ratings[&Metric::Accuracy], 1.0); // clamped
    }
}
