//! # wsrep-core — trust and reputation mechanisms for web service selection
//!
//! The subject matter of Wang & Vassileva's 2007 survey, as a library:
//!
//! * the **vocabulary** of trust and reputation — identities ([`id`]),
//!   timestamped feedback ([`feedback`]), trust values ([`trust`]), time
//!   decay ([`decay`]), subjective-logic / Dempster–Shafer calculi
//!   ([`opinion`]), transitive trust networks ([`transitive`]),
//!   multi-faceted per-QoS-metric trust ([`facets`]), and
//!   context-specific trust ([`context`]);
//! * the **typology** of the paper's Figure 4 ([`typology`]);
//! * a common [`mechanism::ReputationMechanism`] interface, and
//! * an implementation of **every system the survey classifies**, in
//!   [`mechanisms`].
//!
//! ## Quick example
//!
//! ```
//! use wsrep_core::feedback::Feedback;
//! use wsrep_core::id::{AgentId, ServiceId};
//! use wsrep_core::mechanism::ReputationMechanism;
//! use wsrep_core::mechanisms::ebay::EbayMechanism;
//! use wsrep_core::time::Time;
//!
//! let mut ebay = EbayMechanism::new();
//! let service = ServiceId::new(1);
//! ebay.submit(&Feedback::scored(AgentId::new(0), service, 0.9, Time::ZERO));
//! ebay.submit(&Feedback::scored(AgentId::new(1), service, 0.8, Time::ZERO));
//! let rep = ebay.global(service.into()).unwrap();
//! assert!(rep.value.get() > 0.5);
//! ```

pub mod context;
pub mod decay;
pub mod facets;
pub mod feedback;
pub mod id;
pub mod mechanism;
pub mod mechanisms;
pub mod opinion;
pub mod store;
pub mod time;
pub mod transitive;
pub mod trust;
pub mod typology;

pub use feedback::Feedback;
pub use id::{AgentId, ProviderId, ServiceId, SubjectId};
pub use mechanism::ReputationMechanism;
pub use time::Time;
pub use trust::{TrustEstimate, TrustValue};
