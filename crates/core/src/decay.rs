//! Time decay of experiences.
//!
//! "New experiences are more important than old ones since old experiences
//! may become obsolete or irrelevant with time passing by" (Section 3).
//! Every mechanism that aggregates timestamped feedback can plug in a
//! [`DecayModel`]; the `exp_dynamic` experiment compares the models on
//! oscillating and degrading providers.

use crate::time::Time;
use serde::{Deserialize, Serialize};

/// How the weight of an experience falls off with age.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DecayModel {
    /// All experiences weigh the same forever (the degenerate baseline).
    None,
    /// Exponential forgetting with the given half-life in rounds: an
    /// experience `h` rounds old weighs `0.5^(age / h)`.
    Exponential {
        /// Rounds after which an experience's weight halves.
        half_life: u64,
    },
    /// Hard sliding window: experiences younger than `window` rounds weigh
    /// 1, older ones weigh 0.
    Window {
        /// Number of rounds an experience stays relevant.
        window: u64,
    },
}

impl DecayModel {
    /// Weight in `\[0, 1\]` of an experience stamped `at`, evaluated `now`.
    ///
    /// # Panics
    ///
    /// Panics if an `Exponential` model was built with `half_life == 0`
    /// (checked here because the weight would be ill-defined).
    pub fn weight(&self, at: Time, now: Time) -> f64 {
        let age = now.since(at) as f64;
        match *self {
            DecayModel::None => 1.0,
            DecayModel::Exponential { half_life } => {
                assert!(half_life > 0, "half_life must be positive");
                0.5f64.powf(age / half_life as f64)
            }
            DecayModel::Window { window } => {
                if now.since(at) < window {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Weighted mean of `(value, timestamp)` samples at `now`. `None` when
    /// no sample carries positive weight.
    pub fn weighted_mean<I>(&self, samples: I, now: Time) -> Option<f64>
    where
        I: IntoIterator<Item = (f64, Time)>,
    {
        let mut num = 0.0;
        let mut den = 0.0;
        for (v, t) in samples {
            let w = self.weight(t, now);
            num += w * v;
            den += w;
        }
        if den > 0.0 {
            Some(num / den)
        } else {
            None
        }
    }
}

impl Default for DecayModel {
    /// Exponential with a 50-round half-life: a reasonable default that
    /// keeps mechanisms responsive without thrashing.
    fn default() -> Self {
        DecayModel::Exponential { half_life: 50 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn none_never_decays() {
        let d = DecayModel::None;
        assert_eq!(d.weight(Time::ZERO, Time::new(1_000_000)), 1.0);
    }

    #[test]
    fn exponential_halves_at_half_life() {
        let d = DecayModel::Exponential { half_life: 10 };
        assert!((d.weight(Time::ZERO, Time::new(10)) - 0.5).abs() < 1e-12);
        assert!((d.weight(Time::ZERO, Time::new(20)) - 0.25).abs() < 1e-12);
        assert_eq!(d.weight(Time::new(5), Time::new(5)), 1.0);
    }

    #[test]
    fn window_cuts_off_sharply() {
        let d = DecayModel::Window { window: 3 };
        assert_eq!(d.weight(Time::new(7), Time::new(9)), 1.0);
        assert_eq!(d.weight(Time::new(7), Time::new(10)), 0.0);
    }

    #[test]
    fn weighted_mean_tracks_recent_values() {
        let d = DecayModel::Exponential { half_life: 2 };
        // Old bad experiences, recent good ones.
        let samples = [
            (0.0, Time::new(0)),
            (0.0, Time::new(1)),
            (1.0, Time::new(19)),
            (1.0, Time::new(20)),
        ];
        let m = d.weighted_mean(samples, Time::new(20)).unwrap();
        assert!(m > 0.95, "m={m}");
        // Without decay the mean would be 0.5.
        let flat = DecayModel::None
            .weighted_mean(samples, Time::new(20))
            .unwrap();
        assert!((flat - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_mean_of_expired_window_is_none() {
        let d = DecayModel::Window { window: 1 };
        let samples = [(1.0, Time::new(0))];
        assert_eq!(d.weighted_mean(samples, Time::new(5)), None);
        assert_eq!(d.weighted_mean([], Time::new(5)), None);
    }

    #[test]
    #[should_panic(expected = "half_life must be positive")]
    fn zero_half_life_panics() {
        DecayModel::Exponential { half_life: 0 }.weight(Time::ZERO, Time::new(1));
    }

    proptest! {
        /// Decay weights are monotone non-increasing in age for all models.
        #[test]
        fn weight_monotone_in_age(age1 in 0u64..500, delta in 0u64..500, hl in 1u64..100, win in 1u64..100) {
            let age2 = age1 + delta;
            for d in [
                DecayModel::None,
                DecayModel::Exponential { half_life: hl },
                DecayModel::Window { window: win },
            ] {
                let w1 = d.weight(Time::ZERO, Time::new(age1));
                let w2 = d.weight(Time::ZERO, Time::new(age2));
                prop_assert!(w2 <= w1 + 1e-12);
                prop_assert!((0.0..=1.0).contains(&w1));
            }
        }

        /// The weighted mean always lies within the sample value range.
        #[test]
        fn weighted_mean_is_bounded(
            vals in proptest::collection::vec((0.0f64..=1.0, 0u64..100), 1..20),
            hl in 1u64..50,
        ) {
            let d = DecayModel::Exponential { half_life: hl };
            let samples: Vec<(f64, Time)> = vals.iter().map(|&(v, t)| (v, Time::new(t))).collect();
            let lo = vals.iter().map(|&(v, _)| v).fold(f64::INFINITY, f64::min);
            let hi = vals.iter().map(|&(v, _)| v).fold(f64::NEG_INFINITY, f64::max);
            let m = d.weighted_mean(samples, Time::new(100)).unwrap();
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }
    }
}
