//! Transitive trust networks (Jøsang, Gray & Kinateder — reference \[10\]).
//!
//! Section 3: "Trust can be transitive. For example, Alice trusts her
//! doctor and her doctor trusts an eye specialist. Then Alice can trust the
//! eye specialist." This module keeps a directed graph of subjective-logic
//! [`Opinion`]s between agents and derives indirect trust by discounting
//! along paths and fusing parallel paths — the simplification rules of the
//! cited paper.

use crate::id::AgentId;
use crate::opinion::Opinion;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A directed graph of trust opinions between agents.
#[derive(Debug, Clone, Default)]
pub struct TrustGraph {
    edges: BTreeMap<AgentId, BTreeMap<AgentId, Opinion>>,
}

impl TrustGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the direct opinion `from` holds about `to` (replacing any prior).
    pub fn set(&mut self, from: AgentId, to: AgentId, opinion: Opinion) {
        self.edges.entry(from).or_default().insert(to, opinion);
    }

    /// The direct opinion `from` holds about `to`, if any.
    pub fn direct(&self, from: AgentId, to: AgentId) -> Option<Opinion> {
        self.edges.get(&from)?.get(&to).copied()
    }

    /// Outgoing opinions of `from`.
    pub fn successors(&self, from: AgentId) -> impl Iterator<Item = (AgentId, Opinion)> + '_ {
        self.edges
            .get(&from)
            .into_iter()
            .flatten()
            .map(|(a, o)| (*a, *o))
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.values().map(BTreeMap::len).sum()
    }

    /// Whether the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Derive `source`'s opinion about `target` by enumerating all simple
    /// directed paths up to `max_hops`, discounting each path's opinions in
    /// sequence, and fusing the per-path results with the consensus
    /// operator. Returns `None` when no path exists.
    ///
    /// Path enumeration is exponential in the worst case; `max_hops` keeps
    /// it tame (the cited analysis recommends short chains anyway: trust
    /// dilutes quickly with distance).
    pub fn derive(&self, source: AgentId, target: AgentId, max_hops: usize) -> Option<Opinion> {
        if source == target {
            // Full self-trust by convention.
            return Some(Opinion {
                b: 1.0,
                d: 0.0,
                u: 0.0,
                a: 0.5,
            });
        }
        let mut path_opinions = Vec::new();
        let mut visited = BTreeSet::new();
        visited.insert(source);
        self.dfs(
            source,
            target,
            max_hops,
            None,
            &mut visited,
            &mut path_opinions,
        );
        if path_opinions.is_empty() {
            return None;
        }
        let mut fused = path_opinions[0];
        for op in &path_opinions[1..] {
            fused = fused.consensus(op);
        }
        Some(fused)
    }

    fn dfs(
        &self,
        at: AgentId,
        target: AgentId,
        hops_left: usize,
        carried: Option<Opinion>,
        visited: &mut BTreeSet<AgentId>,
        out: &mut Vec<Opinion>,
    ) {
        if hops_left == 0 {
            return;
        }
        for (next, op) in self.successors(at) {
            let combined = match carried {
                None => op,
                Some(c) => c.discount(&op),
            };
            if next == target {
                out.push(combined);
                continue;
            }
            if visited.contains(&next) {
                continue;
            }
            visited.insert(next);
            self.dfs(next, target, hops_left - 1, Some(combined), visited, out);
            visited.remove(&next);
        }
    }

    /// Agents reachable from `source` within `max_hops` (BFS) — the
    /// referral horizon used by decentralized witness search.
    pub fn reachable(&self, source: AgentId, max_hops: usize) -> BTreeSet<AgentId> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([(source, 0usize)]);
        while let Some((at, d)) = queue.pop_front() {
            if d >= max_hops {
                continue;
            }
            for (next, _) in self.successors(at) {
                if next != source && seen.insert(next) {
                    queue.push_back((next, d + 1));
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u64) -> AgentId {
        AgentId::new(i)
    }

    fn strong() -> Opinion {
        Opinion::from_evidence(18.0, 0.0, 0.5)
    }

    fn weak() -> Opinion {
        Opinion::from_evidence(2.0, 2.0, 0.5)
    }

    #[test]
    fn alice_doctor_specialist_chain() {
        // The paper's worked example: Alice -> doctor -> eye specialist.
        let mut g = TrustGraph::new();
        g.set(a(0), a(1), strong()); // Alice trusts doctor
        g.set(a(1), a(2), strong()); // doctor trusts specialist
        let derived = g.derive(a(0), a(2), 3).unwrap();
        assert!(derived.is_valid());
        assert!(derived.expectation() > 0.6, "e={}", derived.expectation());
        // but weaker than the direct links
        assert!(derived.b < strong().b);
    }

    #[test]
    fn no_path_means_no_opinion() {
        let mut g = TrustGraph::new();
        g.set(a(0), a(1), strong());
        assert_eq!(g.derive(a(1), a(0), 3), None);
        assert_eq!(g.derive(a(0), a(9), 3), None);
    }

    #[test]
    fn hop_limit_cuts_long_chains() {
        let mut g = TrustGraph::new();
        for i in 0..5 {
            g.set(a(i), a(i + 1), strong());
        }
        assert!(g.derive(a(0), a(5), 5).is_some());
        assert_eq!(g.derive(a(0), a(5), 3), None);
    }

    #[test]
    fn parallel_paths_fuse_and_reduce_uncertainty() {
        let mut g = TrustGraph::new();
        // Two independent referral chains to the same target.
        g.set(a(0), a(1), strong());
        g.set(a(1), a(3), strong());
        g.set(a(0), a(2), strong());
        g.set(a(2), a(3), strong());
        let fused = g.derive(a(0), a(3), 3).unwrap();
        // Single-path derivation for comparison.
        let mut single = TrustGraph::new();
        single.set(a(0), a(1), strong());
        single.set(a(1), a(3), strong());
        let one = single.derive(a(0), a(3), 3).unwrap();
        assert!(fused.u < one.u, "two witnesses beat one");
    }

    #[test]
    fn weak_recommender_dilutes_trust() {
        let mut g = TrustGraph::new();
        g.set(a(0), a(1), weak());
        g.set(a(1), a(2), strong());
        let derived = g.derive(a(0), a(2), 3).unwrap();
        assert!(derived.u > 0.4, "weak first hop keeps uncertainty high");
    }

    #[test]
    fn self_trust_is_full() {
        let g = TrustGraph::new();
        let o = g.derive(a(7), a(7), 1).unwrap();
        assert_eq!(o.b, 1.0);
    }

    #[test]
    fn cycles_do_not_hang_or_inflate() {
        let mut g = TrustGraph::new();
        g.set(a(0), a(1), strong());
        g.set(a(1), a(0), strong());
        g.set(a(1), a(2), strong());
        let derived = g.derive(a(0), a(2), 4).unwrap();
        assert!(derived.is_valid());
    }

    #[test]
    fn reachable_respects_horizon() {
        let mut g = TrustGraph::new();
        for i in 0..4 {
            g.set(a(i), a(i + 1), strong());
        }
        assert_eq!(g.reachable(a(0), 2).len(), 2);
        assert_eq!(g.reachable(a(0), 10).len(), 4);
        assert!(g.reachable(a(4), 3).is_empty());
    }
}
