//! Logical time.
//!
//! The paper lists *dynamic* as a defining property of trust: "trust and
//! reputation can increase or decrease with further experiences. They also
//! decay with time." All mechanisms therefore timestamp feedback with a
//! logical [`Time`] in simulation rounds; decay models (see
//! [`crate::decay`]) interpret the distance between timestamps.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A logical instant, counted in simulation rounds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Time(u64);

impl Time {
    /// The epoch (round zero).
    pub const ZERO: Time = Time(0);

    /// Wrap a round counter.
    pub const fn new(round: u64) -> Self {
        Time(round)
    }

    /// The raw round counter.
    pub const fn round(self) -> u64 {
        self.0
    }

    /// Rounds elapsed since `earlier`; zero if `earlier` is in the future.
    pub fn since(self, earlier: Time) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// The next round.
    pub fn next(self) -> Time {
        Time(self.0 + 1)
    }
}

impl Add<u64> for Time {
    type Output = Time;
    fn add(self, rhs: u64) -> Time {
        Time(self.0 + rhs)
    }
}

impl AddAssign<u64> for Time {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Time> for Time {
    type Output = u64;
    fn sub(self, rhs: Time) -> u64 {
        self.since(rhs)
    }
}

impl From<u64> for Time {
    fn from(round: u64) -> Self {
        Time(round)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves() {
        let t = Time::new(5);
        assert_eq!((t + 3).round(), 8);
        assert_eq!(t.next(), Time::new(6));
        assert_eq!(Time::new(9) - t, 4);
    }

    #[test]
    fn since_saturates_for_future_times() {
        assert_eq!(Time::new(3).since(Time::new(10)), 0);
    }

    #[test]
    fn default_is_epoch() {
        assert_eq!(Time::default(), Time::ZERO);
        assert_eq!(Time::ZERO.to_string(), "t0");
    }
}
