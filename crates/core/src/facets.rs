//! Multi-faceted trust (Section 3, "Multi-faceted").
//!
//! "Even in the same context, there is a need to develop differentiated
//! trust in different aspects of a service … For each aspect, she develops
//! a kind of trust. The overall trust depends on the combination of the
//! trusts in each aspect." A [`FacetedTrust`] tracker keeps one decayed
//! trust series per QoS metric and combines them under a consumer's
//! preference weights — the machinery behind experiment `exp_fig3`.

use crate::decay::DecayModel;
use crate::time::Time;
use crate::trust::{evidence_confidence, TrustEstimate, TrustValue};
use std::collections::BTreeMap;
use wsrep_qos::metric::Metric;
use wsrep_qos::preference::Preferences;

/// Per-metric trust tracker for one subject.
#[derive(Debug, Clone, Default)]
pub struct FacetedTrust {
    /// Per metric: list of (normalized score in \[0,1\], timestamp).
    samples: BTreeMap<Metric, Vec<(f64, Time)>>,
    decay: DecayModel,
}

impl FacetedTrust {
    /// New tracker with the default decay model.
    pub fn new() -> Self {
        Self::default()
    }

    /// New tracker with an explicit decay model.
    pub fn with_decay(decay: DecayModel) -> Self {
        FacetedTrust {
            samples: BTreeMap::new(),
            decay,
        }
    }

    /// Record a normalized per-metric experience (`score` in `\[0, 1\]`,
    /// higher better, already oriented).
    pub fn record(&mut self, metric: Metric, score: f64, at: Time) {
        self.samples
            .entry(metric)
            .or_default()
            .push((score.clamp(0.0, 1.0), at));
    }

    /// Trust in one facet at time `now`.
    pub fn facet(&self, metric: Metric, now: Time) -> Option<TrustEstimate> {
        let samples = self.samples.get(&metric)?;
        let mean = self.decay.weighted_mean(samples.iter().copied(), now)?;
        Some(TrustEstimate::new(
            TrustValue::new(mean),
            evidence_confidence(samples.len(), 3.0),
        ))
    }

    /// Overall trust as the preference-weighted combination of facet
    /// trusts. Facets without evidence contribute the neutral prior with
    /// zero confidence, so missing facets lower overall confidence but do
    /// not bias the value.
    pub fn overall(&self, prefs: &Preferences, now: Time) -> TrustEstimate {
        let mut value = 0.0;
        let mut conf = 0.0;
        let mut weight_seen = 0.0;
        for (m, w) in prefs.iter() {
            let est = self.facet(m, now).unwrap_or_else(TrustEstimate::ignorance);
            value += w * est.value.get();
            conf += w * est.confidence;
            weight_seen += w;
        }
        if weight_seen == 0.0 {
            return TrustEstimate::ignorance();
        }
        TrustEstimate::new(TrustValue::new(value / weight_seen), conf / weight_seen)
    }

    /// A single-scalar tracker's view: the unweighted mean across *all*
    /// recorded facets, losing the per-aspect structure. This is the
    /// baseline `exp_fig3` compares against.
    pub fn scalar(&self, now: Time) -> Option<TrustEstimate> {
        let all: Vec<(f64, Time)> = self.samples.values().flatten().copied().collect();
        if all.is_empty() {
            return None;
        }
        let n = all.len();
        let mean = self.decay.weighted_mean(all, now)?;
        Some(TrustEstimate::new(
            TrustValue::new(mean),
            evidence_confidence(n, 3.0),
        ))
    }

    /// Metrics with at least one sample.
    pub fn metrics(&self) -> impl Iterator<Item = Metric> + '_ {
        self.samples.keys().copied()
    }

    /// Total number of recorded samples across facets.
    pub fn len(&self) -> usize {
        self.samples.values().map(Vec::len).sum()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facets_are_tracked_independently() {
        let mut ft = FacetedTrust::with_decay(DecayModel::None);
        ft.record(Metric::ResponseTime, 1.0, Time::ZERO);
        ft.record(Metric::Accuracy, 0.0, Time::ZERO);
        let now = Time::new(1);
        assert!(ft.facet(Metric::ResponseTime, now).unwrap().value.get() > 0.9);
        assert!(ft.facet(Metric::Accuracy, now).unwrap().value.get() < 0.1);
        assert_eq!(ft.facet(Metric::Price, now), None);
    }

    #[test]
    fn overall_follows_preferences() {
        let mut ft = FacetedTrust::with_decay(DecayModel::None);
        // Great speed, terrible accuracy.
        for t in 0..5 {
            ft.record(Metric::ResponseTime, 1.0, Time::new(t));
            ft.record(Metric::Accuracy, 0.0, Time::new(t));
        }
        let now = Time::new(5);
        let speed_prefs =
            Preferences::from_weights([(Metric::ResponseTime, 0.9), (Metric::Accuracy, 0.1)]);
        let accuracy_prefs =
            Preferences::from_weights([(Metric::ResponseTime, 0.1), (Metric::Accuracy, 0.9)]);
        let speed_view = ft.overall(&speed_prefs, now);
        let accuracy_view = ft.overall(&accuracy_prefs, now);
        assert!(speed_view.value.get() > 0.8);
        assert!(accuracy_view.value.get() < 0.2);
        // The scalar view cannot distinguish the two consumers.
        let scalar = ft.scalar(now).unwrap();
        assert!((scalar.value.get() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn missing_facet_lowers_confidence_not_value() {
        let mut ft = FacetedTrust::with_decay(DecayModel::None);
        for t in 0..10 {
            ft.record(Metric::ResponseTime, 0.9, Time::new(t));
        }
        let now = Time::new(10);
        let prefs =
            Preferences::from_weights([(Metric::ResponseTime, 0.5), (Metric::Accuracy, 0.5)]);
        let overall = ft.overall(&prefs, now);
        // Accuracy facet contributes 0.5 neutral: value = (0.9 + 0.5)/2.
        assert!((overall.value.get() - 0.7).abs() < 1e-9);
        assert!(overall.confidence < 0.5);
    }

    #[test]
    fn empty_preferences_yield_ignorance() {
        let ft = FacetedTrust::new();
        assert_eq!(
            ft.overall(&Preferences::default(), Time::ZERO),
            TrustEstimate::ignorance()
        );
        assert!(ft.is_empty());
        assert_eq!(ft.scalar(Time::ZERO), None);
    }

    #[test]
    fn decay_applies_per_facet() {
        let mut ft = FacetedTrust::with_decay(DecayModel::Exponential { half_life: 1 });
        ft.record(Metric::Accuracy, 0.0, Time::new(0));
        ft.record(Metric::Accuracy, 1.0, Time::new(10));
        let est = ft.facet(Metric::Accuracy, Time::new(10)).unwrap();
        assert!(est.value.get() > 0.99, "old bad sample should be forgotten");
    }

    #[test]
    fn len_counts_all_samples() {
        let mut ft = FacetedTrust::new();
        ft.record(Metric::Accuracy, 0.5, Time::ZERO);
        ft.record(Metric::Price, 0.5, Time::ZERO);
        ft.record(Metric::Price, 0.6, Time::new(1));
        assert_eq!(ft.len(), 3);
        assert_eq!(ft.metrics().count(), 2);
    }
}
