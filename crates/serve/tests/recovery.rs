//! Crash-recovery integration tests: kill the service at an arbitrary
//! point, recover from the journal, and demand the exact acknowledged
//! state back.
//!
//! "Crash" is simulated by copying the journal directory while the
//! service is still live (everything durable at that instant is in the
//! copy; everything else is lost, exactly like power failure) or by
//! truncating segment files at arbitrary byte offsets (a torn write).

use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ProviderId, ServiceId, SubjectId};
use wsrep_core::mechanism::score_from_log;
use wsrep_core::mechanisms::beta::BetaMechanism;
use wsrep_core::store::FeedbackStore;
use wsrep_core::time::Time;
use wsrep_core::trust::TrustEstimate;
use wsrep_journal::{recover, GroupSet, Journal, JournalConfig, JournalRecord};
use wsrep_qos::metric::Metric;
use wsrep_qos::value::QosVector;
use wsrep_serve::ReputationService;
use wsrep_sim::registry::Listing;

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("wsrep-serve-recovery-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Copy the journal directory byte for byte (including writer-group
/// subdirectories) — the durable state an abrupt kill would leave behind.
fn freeze(live: &Path, tag: &str) -> PathBuf {
    let frozen = temp_dir(tag);
    copy_tree(live, &frozen);
    frozen
}

fn copy_tree(from: &Path, to: &Path) {
    fs::create_dir_all(to).unwrap();
    for entry in fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let target = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_tree(&entry.path(), &target);
        } else {
            fs::copy(entry.path(), target).unwrap();
        }
    }
}

fn feedback(rater: u64, service: u64, score: f64, at: u64) -> Feedback {
    Feedback::scored(
        AgentId::new(rater),
        ServiceId::new(service),
        score,
        Time::new(at),
    )
}

fn listing(service: u64, category: u32) -> Listing {
    Listing {
        service: ServiceId::new(service),
        provider: ProviderId::new(service),
        category,
        advertised: QosVector::from_pairs([(Metric::Price, service as f64 + 1.0)]),
    }
}

/// The reference answer: replay a plain sequential [`FeedbackStore`]
/// through the same mechanism the service scores with.
fn sequential_score(reports: &[Feedback], subject: SubjectId) -> Option<TrustEstimate> {
    let mut store = FeedbackStore::new();
    for report in reports {
        store.push(report.clone());
    }
    let mut mechanism = BetaMechanism::new();
    score_from_log(&mut mechanism, store.about(subject), subject)
}

#[test]
fn kill_and_recover_restores_every_acknowledged_score() {
    let live = temp_dir("kill-live");
    let svc = ReputationService::builder()
        .shards(4)
        .journal(&live)
        .build();
    for s in 0..6 {
        svc.publish(listing(s, s as u32 % 2)).unwrap();
    }
    svc.deregister(ServiceId::new(5)).unwrap();
    let reports: Vec<Feedback> = (0..300)
        .map(|i| feedback(i % 17, i % 6, (i % 10) as f64 / 10.0, i))
        .collect();
    for report in &reports {
        svc.ingest(report.clone()).unwrap();
    }
    // Durability barrier: everything above is now fdatasync'd.
    svc.flush();
    let frozen = freeze(&live, "kill-frozen");
    let pre_crash: Vec<Option<TrustEstimate>> = (0..6)
        .map(|s| svc.score(ServiceId::new(s).into()))
        .collect();
    drop(svc); // the "crashed" process; its directory is never reused

    let revived = ReputationService::builder()
        .shards(4)
        .recover_from(&frozen)
        .build();
    for (s, expected) in pre_crash.iter().enumerate() {
        let subject: SubjectId = ServiceId::new(s as u64).into();
        assert_eq!(
            revived.score(subject),
            *expected,
            "service {s} must score identically after recovery"
        );
        assert_eq!(
            revived.score(subject),
            sequential_score(&reports, subject),
            "recovered score must equal a sequential replay"
        );
    }
    // Listings survive, including the deregistration.
    assert_eq!(revived.stats().listings, 5);
    assert!(revived.listing(ServiceId::new(5)).is_none());
    let health = revived.stats().journal.expect("journal attached");
    // 6 publishes + 1 deregister + 300 reports.
    assert_eq!(health.records_recovered, 307);
    assert!(!health.degraded);
    fs::remove_dir_all(&live).unwrap();
    fs::remove_dir_all(&frozen).unwrap();
}

#[test]
fn recovery_restores_epochs_so_the_cache_cannot_serve_stale_scores() {
    let live = temp_dir("epoch-live");
    let subject: SubjectId = ServiceId::new(1).into();
    {
        let svc = ReputationService::builder().journal(&live).build();
        for i in 0..40 {
            svc.ingest(feedback(i, 1, 0.9, i)).unwrap();
        }
        svc.flush();
        assert_eq!(svc.store().epoch(subject), 40);
    }
    let revived = ReputationService::builder().recover_from(&live).build();
    // The epoch is the count of applied reports; replay must restore it
    // exactly, or cached scores could validate against stale state.
    assert_eq!(revived.store().epoch(subject), 40);
    let before = revived.score(subject).unwrap();
    // New feedback after recovery still invalidates the cache.
    for i in 0..40 {
        revived.ingest(feedback(100 + i, 1, 0.0, 50 + i)).unwrap();
    }
    revived.flush();
    assert_eq!(revived.store().epoch(subject), 80);
    let after = revived.score(subject).unwrap();
    assert!(
        after.value.get() < before.value.get(),
        "post-recovery feedback must move the score"
    );
    fs::remove_dir_all(&live).unwrap();
}

#[test]
fn torn_final_record_is_skipped_without_error() {
    let live = temp_dir("torn-live");
    let reports: Vec<Feedback> = (0..25).map(|i| feedback(i, i % 3, 0.7, i)).collect();
    {
        let mut journal = Journal::open(&live, JournalConfig::default()).unwrap();
        // One record per commit, so every frame boundary is a possible
        // durable point.
        for report in &reports {
            journal
                .append_batch(&[JournalRecord::Feedback(report.clone())])
                .unwrap();
        }
    }
    // Tear the last record mid-frame.
    let (_, segment) = wsrep_journal::segment::list_segments(&live)
        .unwrap()
        .pop()
        .unwrap();
    let len = fs::metadata(&segment).unwrap().len();
    fs::OpenOptions::new()
        .write(true)
        .open(&segment)
        .unwrap()
        .set_len(len - 3)
        .unwrap();

    let revived = ReputationService::builder().recover_from(&live).build();
    let prefix = &reports[..24];
    for s in 0..3u64 {
        let subject: SubjectId = ServiceId::new(s).into();
        assert_eq!(revived.score(subject), sequential_score(prefix, subject));
    }
    assert_eq!(revived.stats().feedback, 24);
    // The revived journal truncated the torn tail and appends cleanly.
    revived.ingest(reports[24].clone()).unwrap();
    revived.flush();
    assert_eq!(revived.stats().feedback, 25);
    fs::remove_dir_all(&live).unwrap();
}

#[test]
fn checkpoint_plus_tail_recovers_and_reclaims_segments() {
    let live = temp_dir("checkpoint-live");
    let svc = ReputationService::builder()
        .shards(4)
        .journal(&live)
        .max_segment_bytes(512)
        .build();
    svc.publish(listing(0, 0)).unwrap();
    svc.publish(listing(1, 0)).unwrap();
    let reports: Vec<Feedback> = (0..200)
        .map(|i| feedback(i % 9, i % 2, (i % 7) as f64 / 7.0, i))
        .collect();
    for report in &reports[..120] {
        svc.ingest(report.clone()).unwrap();
    }
    let report = svc.checkpoint().unwrap().expect("journal attached");
    assert_eq!(report.lsn, 122, "2 publishes + 120 reports");
    assert!(
        report.segments_removed > 0,
        "512-byte segments must leave covered segments to reclaim: {report:?}"
    );
    for more in &reports[120..] {
        svc.ingest(more.clone()).unwrap();
    }
    svc.flush();
    let frozen = freeze(&live, "checkpoint-frozen");
    let pre_crash: Vec<Option<TrustEstimate>> = (0..2)
        .map(|s| svc.score(ServiceId::new(s).into()))
        .collect();
    drop(svc);

    let revived = ReputationService::builder()
        .shards(4)
        .recover_from(&frozen)
        .build();
    for (s, expected) in pre_crash.iter().enumerate() {
        let subject: SubjectId = ServiceId::new(s as u64).into();
        assert_eq!(revived.score(subject), *expected);
        assert_eq!(revived.score(subject), sequential_score(&reports, subject));
    }
    assert_eq!(revived.stats().feedback, 200);
    fs::remove_dir_all(&live).unwrap();
    fs::remove_dir_all(&frozen).unwrap();
}

#[test]
fn background_compactor_takes_checkpoints_on_its_own() {
    let live = temp_dir("compactor-live");
    let svc = ReputationService::builder()
        .journal(&live)
        .max_segment_bytes(256)
        .checkpoint_every(Duration::from_millis(25))
        .build();
    for i in 0..400 {
        svc.ingest(feedback(i % 13, i % 5, 0.6, i)).unwrap();
    }
    svc.flush();
    // Poll until the background thread has written a snapshot.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let snapshot = loop {
        if let Some(snapshot) = wsrep_journal::latest_snapshot(&live).unwrap() {
            break snapshot;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "compactor never wrote a snapshot"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(snapshot.lsn > 0);
    drop(svc);
    // Whatever instant the compactor snapshotted at, recovery is exact.
    let revived = ReputationService::builder().recover_from(&live).build();
    assert_eq!(revived.stats().feedback, 400);
    fs::remove_dir_all(&live).unwrap();
}

#[test]
fn partitioned_kill_and_recover_restores_every_acknowledged_score() {
    let live = temp_dir("part-kill-live");
    let svc = ReputationService::builder()
        .shards(4)
        .writer_groups(4)
        .journal(&live)
        .build();
    for s in 0..6 {
        svc.publish(listing(s, s as u32 % 2)).unwrap();
    }
    svc.deregister(ServiceId::new(5)).unwrap();
    let reports: Vec<Feedback> = (0..300)
        .map(|i| feedback(i % 17, i % 6, (i % 10) as f64 / 10.0, i))
        .collect();
    for report in &reports {
        svc.ingest(report.clone()).unwrap();
    }
    // Durability barrier: everything above is fsynced across all four
    // writer-group logs, so the cross-group watermark covers it.
    svc.flush();
    let frozen = freeze(&live, "part-kill-frozen");
    let pre_crash: Vec<Option<TrustEstimate>> = (0..6)
        .map(|s| svc.score(ServiceId::new(s).into()))
        .collect();
    drop(svc);

    // No writer_groups setting: the on-disk partitioned layout decides.
    let revived = ReputationService::builder()
        .shards(4)
        .recover_from(&frozen)
        .build();
    for (s, expected) in pre_crash.iter().enumerate() {
        let subject: SubjectId = ServiceId::new(s as u64).into();
        assert_eq!(
            revived.score(subject),
            *expected,
            "service {s} must score identically after partitioned recovery"
        );
        assert_eq!(
            revived.score(subject),
            sequential_score(&reports, subject),
            "recovered score must equal a sequential replay"
        );
    }
    assert_eq!(revived.stats().listings, 5);
    assert!(revived.listing(ServiceId::new(5)).is_none());
    let health = revived.stats().journal.expect("journal attached");
    assert_eq!(health.records_recovered, 307);
    assert_eq!(health.writer_groups, 4, "on-disk layout reopens wide");
    assert!(!health.degraded);
    fs::remove_dir_all(&live).unwrap();
    fs::remove_dir_all(&frozen).unwrap();
}

#[test]
fn torn_tail_in_one_group_loses_only_that_groups_suffix() {
    let live = temp_dir("part-torn-live");
    let reports: Vec<Feedback> = (0..10).map(|i| feedback(i, i % 3, 0.7, i)).collect();
    {
        let set = GroupSet::open(&live, 2, JournalConfig::default(), 0).unwrap();
        // One record per commit, alternating groups: LSN i lands in
        // group i % 2, so each group's log is every other LSN.
        for (i, report) in reports.iter().enumerate() {
            let receipt = set
                .append_batch(i % 2, &[JournalRecord::Feedback(report.clone())])
                .unwrap();
            assert_eq!(receipt.first_lsn, i as u64);
        }
    }
    // Tear group 1 back to 3 whole frames: LSNs 7 and 9 are lost while
    // group 0's 8 survives above the resulting gap.
    let group1 = live.join("group-001");
    let (_, segment) = wsrep_journal::segment::list_segments(&group1)
        .unwrap()
        .pop()
        .unwrap();
    let len = fs::metadata(&segment).unwrap().len();
    let frame = (len - 13) / 5; // 13-byte header, five same-size frames
    fs::OpenOptions::new()
        .write(true)
        .open(&segment)
        .unwrap()
        .set_len(13 + 3 * frame)
        .unwrap();

    let recovered = recover(&live).unwrap();
    let survivors: Vec<u64> = recovered.feedback.iter().map(|f| f.rater.raw()).collect();
    assert_eq!(survivors, vec![0, 1, 2, 3, 4, 5, 6, 8], "gap at 7, keep 8");
    assert_eq!(recovered.durable_lsn, 7, "frontier stops at the gap");
    assert_eq!(recovered.next_lsn, 9, "appends resume past the survivor");
    fs::remove_dir_all(&live).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Write N reports, truncate the segment at an arbitrary byte, and
    /// recovery must yield exactly a prefix of the log — scoring equal to
    /// a sequential replay of that prefix for every subject.
    #[test]
    fn truncate_anywhere_recovers_a_score_exact_prefix(
        raw in proptest::collection::vec((0u64..12, 0u64..6, 0.0f64..1.0, 0u64..50), 1..60),
        chunk in 1usize..8,
        cut_back in 0u64..2000,
    ) {
        let tag = format!("prop-{}-{}-{}", raw.len(), chunk, cut_back);
        let live = temp_dir(&tag);
        let reports: Vec<Feedback> = raw
            .iter()
            .map(|&(rater, service, score, at)| feedback(rater, service, score, at))
            .collect();
        {
            let mut journal = Journal::open(&live, JournalConfig::default()).unwrap();
            for batch in reports.chunks(chunk) {
                let records: Vec<JournalRecord> =
                    batch.iter().cloned().map(JournalRecord::Feedback).collect();
                journal.append_batch(&records).unwrap();
            }
        }
        let (_, segment) = wsrep_journal::segment::list_segments(&live)
            .unwrap()
            .pop()
            .unwrap();
        let len = fs::metadata(&segment).unwrap().len();
        // Cut anywhere from "keep everything" down to the bare header.
        let cut = len.saturating_sub(cut_back).max(13);
        fs::OpenOptions::new()
            .write(true)
            .open(&segment)
            .unwrap()
            .set_len(cut)
            .unwrap();

        let recovered = recover(&live).unwrap();
        let k = recovered.feedback.len();
        prop_assert!(k <= reports.len());
        prop_assert_eq!(&recovered.feedback, &reports[..k], "must be an exact prefix");

        let revived = ReputationService::builder()
            .shards(3)
            .recover_from(&live)
            .build();
        for service in 0..6u64 {
            let subject: SubjectId = ServiceId::new(service).into();
            prop_assert_eq!(
                revived.score(subject),
                sequential_score(&reports[..k], subject),
                "subject {} after cut at byte {}", service, cut
            );
        }
        drop(revived);
        fs::remove_dir_all(&live).unwrap();
    }

    /// Partition the log over several writer groups, tear every group's
    /// tail at an arbitrary byte, and recovery must (a) keep exactly a
    /// prefix of each group's log, (b) equal a sequential single-log
    /// replay of the surviving records, and (c) report a durable
    /// watermark that never exceeds any group's torn frontier.
    #[test]
    fn partitioned_truncate_anywhere_matches_a_sequential_replay_twin(
        n in 1usize..60,
        groups in 2usize..5,
        chunk in 1usize..6,
        cuts in proptest::collection::vec(0u64..2000, 4),
    ) {
        let tag = format!("part-prop-{n}-{groups}-{chunk}-{}", cuts[0]);
        let live = temp_dir(&tag);
        // Record i carries its own LSN in the rater id: batches are
        // appended one at a time, so allocation is dense and global
        // position == LSN.
        let reports: Vec<Feedback> = (0..n as u64)
            .map(|i| feedback(i, i % 6, ((i % 7) as f64) / 7.0, i))
            .collect();
        let mut group_lsns: Vec<Vec<u64>> = vec![Vec::new(); groups];
        {
            let set = GroupSet::open(&live, groups, JournalConfig::default(), 0).unwrap();
            for (b, batch) in reports.chunks(chunk).enumerate() {
                let group = b % groups;
                let records: Vec<JournalRecord> =
                    batch.iter().cloned().map(JournalRecord::Feedback).collect();
                let receipt = set.append_batch(group, &records).unwrap();
                group_lsns[group]
                    .extend(receipt.first_lsn..receipt.first_lsn + receipt.count);
            }
        }
        // Tear each group's last segment at an independent offset —
        // groups torn at different LSNs is exactly the crash shape a
        // partitioned writer leaves.
        for (group, lsns) in group_lsns.iter().enumerate() {
            if lsns.is_empty() {
                continue;
            }
            let dir = live.join(format!("group-{group:03}"));
            let (_, segment) = wsrep_journal::segment::list_segments(&dir)
                .unwrap()
                .pop()
                .unwrap();
            let len = fs::metadata(&segment).unwrap().len();
            let cut = len.saturating_sub(cuts[group % cuts.len()]).max(13);
            fs::OpenOptions::new()
                .write(true)
                .open(&segment)
                .unwrap()
                .set_len(cut)
                .unwrap();
        }

        let recovered = recover(&live).unwrap();
        let survivors: Vec<u64> = recovered.feedback.iter().map(|f| f.rater.raw()).collect();

        // (a) Per-group, the surviving LSNs are a prefix of that group's
        // appends: tearing a suffix of bytes loses a suffix of records.
        let survived: std::collections::BTreeSet<u64> = survivors.iter().copied().collect();
        let mut torn_frontiers: Vec<u64> = Vec::new();
        for lsns in &group_lsns {
            let kept = lsns.iter().take_while(|lsn| survived.contains(lsn)).count();
            for lost in &lsns[kept..] {
                prop_assert!(
                    !survived.contains(lost),
                    "group lost LSN {} but kept a later one", lost
                );
            }
            torn_frontiers.push(lsns.get(kept).copied().unwrap_or(u64::MAX));
        }

        // (b) The merged replay equals a sequential single-log twin fed
        // the same surviving records in LSN order.
        let twin_dir = temp_dir(&format!("{tag}-twin"));
        {
            let mut twin = Journal::open(&twin_dir, JournalConfig::default()).unwrap();
            let records: Vec<JournalRecord> = recovered
                .feedback
                .iter()
                .cloned()
                .map(JournalRecord::Feedback)
                .collect();
            if !records.is_empty() {
                twin.append_batch(&records).unwrap();
            }
        }
        let twin = recover(&twin_dir).unwrap();
        prop_assert_eq!(&twin.feedback, &recovered.feedback);

        // (c) The reported frontier is the first hole in the survivor
        // set and never exceeds any group's torn frontier.
        let first_hole = (0..n as u64)
            .find(|lsn| !survived.contains(lsn))
            .unwrap_or(n as u64);
        prop_assert_eq!(recovered.durable_lsn, first_hole);
        for frontier in torn_frontiers {
            prop_assert!(
                recovered.durable_lsn <= frontier,
                "watermark {} beyond a torn frontier {}", recovered.durable_lsn, frontier
            );
        }
        prop_assert_eq!(
            recovered.next_lsn,
            survivors.iter().max().map(|lsn| lsn + 1).unwrap_or(0)
        );

        // The revived service scores every subject like a sequential
        // replay of the surviving stream.
        let revived = ReputationService::builder()
            .shards(3)
            .recover_from(&live)
            .build();
        for service in 0..6u64 {
            let subject: SubjectId = ServiceId::new(service).into();
            prop_assert_eq!(
                revived.score(subject),
                sequential_score(&recovered.feedback, subject),
                "subject {} over {} groups", service, groups
            );
        }
        drop(revived);
        fs::remove_dir_all(&live).unwrap();
        fs::remove_dir_all(&twin_dir).unwrap();
    }
}
