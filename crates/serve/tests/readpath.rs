//! Read-path correctness under the wait-free snapshot machinery.
//!
//! Two families of guarantees:
//!
//! 1. **Never stale** — a score served through the snapshot-swapped cache
//!    at store epoch `E` equals what a twin service replaying exactly the
//!    same applied prefix computes. Invalidations (per-subject epochs,
//!    per-category score epochs) can only over-invalidate, never serve a
//!    value that silently ignores applied feedback.
//! 2. **Consistency under concurrency** — many readers hammering `score`
//!    and the pre-ranked `top_k` while one writer publishes, deregisters,
//!    and ingests must always observe internally consistent answers
//!    (sorted, deduplicated, drawn from the live candidate set at *some*
//!    point), and the final quiesced answer must equal a from-scratch
//!    recomputation.

use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ProviderId, ServiceId, SubjectId};
use wsrep_core::time::Time;
use wsrep_qos::metric::Metric;
use wsrep_qos::preference::Preferences;
use wsrep_qos::value::QosVector;
use wsrep_serve::ReputationService;
use wsrep_sim::registry::Listing;

const SERVICES: u64 = 6;

fn feedback(rater: u64, service: u64, score: f64, at: u64) -> Feedback {
    Feedback::scored(
        AgentId::new(rater),
        ServiceId::new(service),
        score,
        Time::new(at),
    )
}

fn listing(service: u64, category: u32) -> Listing {
    Listing {
        service: ServiceId::new(service),
        provider: ProviderId::new(service),
        category,
        advertised: QosVector::from_pairs([
            (Metric::Price, service as f64 + 1.0),
            (Metric::Accuracy, 1.0 / (service as f64 + 1.0)),
        ]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Never-stale, checked at every flush point: after each applied
    /// chunk, every subject's cached score and every category's
    /// pre-ranked `top_k` equal what a replay twin fed exactly the same
    /// prefix computes from scratch. A stale snapshot surviving an epoch
    /// bump anywhere — subject epoch, score epoch, listings epoch —
    /// would diverge here.
    #[test]
    fn snapshot_reads_are_never_stale(
        raw in proptest::collection::vec(
            (0u64..7, 0u64..SERVICES, 0.0f64..=1.0, 0u64..50),
            1..100,
        ),
        chunk in 1usize..20,
    ) {
        let reports: Vec<Feedback> = raw
            .iter()
            .map(|&(rater, service, score, at)| feedback(rater, service, score, at))
            .collect();
        let cached = ReputationService::builder().shards(4).build();
        for s in 0..SERVICES {
            cached.publish(listing(s, (s % 2) as u32)).unwrap();
        }
        let prefs = Preferences::uniform([Metric::Price, Metric::Accuracy]);
        for prefix in reports.chunks(chunk) {
            for report in prefix {
                cached.ingest(report.clone()).unwrap();
            }
            cached.flush();
            // Twin rebuilt from scratch on the same applied prefix: no
            // caches carried over, so it cannot be stale by construction.
            let applied = cached.store().len();
            let twin = ReputationService::builder().shards(4).replay_scoring().build();
            for s in 0..SERVICES {
                twin.publish(listing(s, (s % 2) as u32)).unwrap();
            }
            for report in &reports[..applied] {
                twin.ingest(report.clone()).unwrap();
            }
            twin.flush();
            for s in 0..SERVICES {
                let subject: SubjectId = ServiceId::new(s).into();
                prop_assert_eq!(
                    cached.score(subject),
                    twin.score(subject),
                    "service {} after {} applied reports", s, applied
                );
            }
            for category in 0..2u32 {
                prop_assert_eq!(
                    cached.top_k(category, &prefs, SERVICES as usize),
                    twin.top_k(category, &prefs, SERVICES as usize),
                    "category {} after {} applied reports", category, applied
                );
            }
        }
    }
}

/// Many readers hammer the pre-ranked `top_k` and `score` while one
/// writer churns listings (publish + deregister) and feedback. Readers
/// assert every answer is internally consistent; afterwards the quiesced
/// service must agree with a from-scratch twin.
#[test]
fn preranked_top_k_stays_consistent_under_concurrent_writes() {
    const READERS: usize = 3;
    const WRITER_ROUNDS: u64 = 300;
    let svc = Arc::new(ReputationService::builder().shards(4).build());
    for s in 0..SERVICES {
        svc.publish(listing(s, 0)).unwrap();
    }
    let prefs = Preferences::uniform([Metric::Price, Metric::Accuracy]);
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for reader in 0..READERS {
            let svc = Arc::clone(&svc);
            let done = Arc::clone(&done);
            let prefs = prefs.clone();
            scope.spawn(move || {
                let mut out = Vec::new();
                let mut rounds = 0u64;
                while !done.load(Ordering::Relaxed) || rounds < 1_000 {
                    rounds += 1;
                    let k = 1 + (rounds as usize + reader) % (SERVICES as usize + 2);
                    svc.top_k_into(0, &prefs, k, &mut out);
                    assert!(out.len() <= k, "answer longer than k");
                    for pair in out.windows(2) {
                        assert!(
                            pair[0].score >= pair[1].score,
                            "pre-ranked answer must be sorted best-first"
                        );
                    }
                    let mut services: Vec<_> = out.iter().map(|r| r.service).collect();
                    services.sort_unstable();
                    services.dedup();
                    assert_eq!(services.len(), out.len(), "no duplicate services");
                    for entry in &out {
                        assert!(
                            entry.service.raw() < SERVICES + 5,
                            "candidate from outside the published id space"
                        );
                        assert!((0.0..=1.0).contains(&entry.qos_score));
                        assert!((0.0..=1.0).contains(&entry.score));
                    }
                    // Scores stay well-formed under churn too.
                    let subject: SubjectId = ServiceId::new(rounds % SERVICES).into();
                    if let Some(estimate) = svc.score(subject) {
                        assert!((0.0..=1.0).contains(&estimate.value.get()));
                    }
                }
            });
        }
        let svc = Arc::clone(&svc);
        let done = Arc::clone(&done);
        scope.spawn(move || {
            for round in 0..WRITER_ROUNDS {
                // Churn a rotating extra listing in and out of the
                // category readers are ranking.
                let extra = SERVICES + (round % 5);
                svc.publish(listing(extra, 0)).unwrap();
                for rater in 0..3 {
                    svc.ingest(feedback(rater, round % SERVICES, 0.5, round))
                        .unwrap();
                }
                if round % 2 == 1 {
                    let _ = svc.deregister(ServiceId::new(extra));
                }
            }
            svc.flush();
            done.store(true, Ordering::Relaxed);
        });
    });

    // Quiesced: the concurrent run must land in exactly the state a
    // sequential twin reaches.
    svc.flush();
    let twin = ReputationService::builder()
        .shards(4)
        .replay_scoring()
        .build();
    for s in 0..SERVICES {
        twin.publish(listing(s, 0)).unwrap();
    }
    for round in 0..WRITER_ROUNDS {
        let extra = SERVICES + (round % 5);
        twin.publish(listing(extra, 0)).unwrap();
        for rater in 0..3 {
            twin.ingest(feedback(rater, round % SERVICES, 0.5, round))
                .unwrap();
        }
        if round % 2 == 1 {
            let _ = twin.deregister(ServiceId::new(extra));
        }
    }
    twin.flush();
    assert_eq!(
        svc.top_k(0, &prefs, SERVICES as usize + 5),
        twin.top_k(0, &prefs, SERVICES as usize + 5),
        "quiesced concurrent state must equal the sequential twin"
    );
    for s in 0..SERVICES {
        let subject: SubjectId = ServiceId::new(s).into();
        assert_eq!(svc.score(subject), twin.score(subject), "service {s}");
    }
}

/// The wait-free accessors (`len`, `stats`) racing writers never see
/// torn or regressing values.
#[test]
fn stats_collection_races_writers_without_tearing() {
    let svc = Arc::new(ReputationService::builder().shards(4).build());
    let done = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        {
            let svc = Arc::clone(&svc);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let mut last_feedback = 0;
                let mut last_swaps = 0;
                while !done.load(Ordering::Relaxed) {
                    let stats = svc.stats();
                    assert!(stats.feedback >= last_feedback, "feedback regressed");
                    assert!(stats.snapshot_swaps >= last_swaps, "swaps regressed");
                    assert!(stats.listings <= 64, "listings out of range");
                    last_feedback = stats.feedback;
                    last_swaps = stats.snapshot_swaps;
                }
            });
        }
        let svc = Arc::clone(&svc);
        let done = Arc::clone(&done);
        scope.spawn(move || {
            for round in 0..200u64 {
                svc.publish(listing(round % 8, 0)).unwrap();
                for rater in 0..4 {
                    svc.ingest(feedback(rater, round % 8, 0.7, round)).unwrap();
                }
                let subject: SubjectId = ServiceId::new(round % 8).into();
                let _ = svc.score(subject);
            }
            svc.flush();
            done.store(true, Ordering::Relaxed);
        });
    });
    let stats = svc.stats();
    assert_eq!(stats.feedback, 800);
    assert_eq!(stats.listings, 8);
}
