//! Service-level equivalence tests for the incremental scoring engine:
//! a service folding reports into shard-resident accumulators must be
//! observably identical to one replaying the log on every miss, across
//! every mechanism, after recovery, and through `top_k` — incrementality
//! is an optimization, never a semantic.

use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ProviderId, ServiceId, SubjectId};
use wsrep_core::mechanisms::all_figure4_mechanisms;
use wsrep_core::time::Time;
use wsrep_qos::metric::Metric;
use wsrep_qos::preference::Preferences;
use wsrep_qos::value::QosVector;
use wsrep_serve::{ReputationService, ServiceBuilder};
use wsrep_sim::registry::Listing;

const SERVICES: u64 = 8;

fn feedback(rater: u64, service: u64, score: f64, at: u64) -> Feedback {
    Feedback::scored(
        AgentId::new(rater),
        ServiceId::new(service),
        score,
        Time::new(at),
    )
}

fn listing(service: u64, category: u32) -> Listing {
    Listing {
        service: ServiceId::new(service),
        provider: ProviderId::new(service),
        category,
        advertised: QosVector::from_pairs([
            (Metric::Price, service as f64 + 1.0),
            (Metric::Accuracy, 1.0 / (service as f64 + 1.0)),
        ]),
    }
}

fn ingest_all(svc: &ReputationService, reports: &[Feedback]) {
    for report in reports {
        svc.ingest(report.clone()).unwrap();
    }
    svc.flush();
}

/// Build incremental and replay twins from the same configuration, feed
/// both the same reports, and demand identical answers everywhere.
/// `has_fold` says whether the mechanism offers an accumulator at all —
/// without one, the "incremental" twin quietly replays too.
fn assert_twins_agree(builder: impl Fn() -> ServiceBuilder, reports: &[Feedback], has_fold: bool) {
    let incremental = builder().build();
    let replay = builder().replay_scoring().build();
    assert_eq!(incremental.stats().incremental, has_fold);
    assert!(!replay.stats().incremental);
    for svc in [&incremental, &replay] {
        for s in 0..SERVICES {
            svc.publish(listing(s, (s % 2) as u32)).unwrap();
        }
        ingest_all(svc, reports);
    }
    for s in 0..SERVICES {
        let subject: SubjectId = ServiceId::new(s).into();
        assert_eq!(
            incremental.score(subject),
            replay.score(subject),
            "service {s}"
        );
    }
    let prefs = Preferences::uniform([Metric::Price, Metric::Accuracy]);
    for category in 0..2 {
        assert_eq!(
            incremental.top_k(category, &prefs, 5),
            replay.top_k(category, &prefs, 5),
            "category {category}"
        );
    }
}

#[test]
fn every_figure4_mechanism_scores_identically_incremental_and_replay() {
    let reports: Vec<Feedback> = (0..200)
        .map(|i| feedback(i % 11, i % SERVICES, (i % 10) as f64 / 10.0, i / 3))
        .collect();
    for prototype in all_figure4_mechanisms() {
        let key = prototype.info().key;
        let has_fold = prototype.accumulator().is_some();
        let make = move || {
            ReputationService::builder()
                .shards(4)
                .mechanism_factory(std::sync::Arc::new(move || {
                    all_figure4_mechanisms()
                        .into_iter()
                        .find(|m| m.info().key == key)
                        .expect("mechanism key is stable")
                }))
        };
        assert_twins_agree(make, &reports, has_fold);
    }
}

#[test]
fn preranked_list_serves_repeat_queries_and_invalidates_on_publish() {
    let svc = ReputationService::builder().build();
    for s in 0..4 {
        svc.publish(listing(s, 0)).unwrap();
    }
    let prefs = Preferences::uniform([Metric::Price, Metric::Accuracy]);
    let first = svc.top_k(0, &prefs, 4);
    assert_eq!(first.len(), 4);
    assert_eq!(svc.stats().preranked_misses, 1);
    assert_eq!(svc.stats().topk_plan_misses, 1);
    // Repeat queries never reach the plan cache: the fully pre-ranked
    // list answers them with a k-element copy.
    for _ in 0..10 {
        assert_eq!(svc.top_k(0, &prefs, 4), first);
    }
    assert_eq!(svc.stats().preranked_hits, 10);
    assert_eq!(
        svc.stats().preranked_misses,
        1,
        "no re-rank between queries"
    );
    assert_eq!(
        svc.stats().topk_plan_misses,
        1,
        "no rebuild between queries"
    );

    // A publish moves the listings epoch: the next query re-ranks (and
    // rebuilds the plan) and sees the new candidate.
    svc.publish(listing(9, 0)).unwrap();
    let widened = svc.top_k(0, &prefs, 10);
    assert_eq!(widened.len(), 5);
    assert_eq!(svc.stats().preranked_misses, 2);
    assert_eq!(svc.stats().topk_plan_misses, 2);

    // A deregister invalidates too.
    svc.deregister(ServiceId::new(9)).unwrap();
    assert_eq!(svc.top_k(0, &prefs, 10).len(), 4);
    assert_eq!(svc.stats().preranked_misses, 3);
    assert_eq!(svc.stats().topk_plan_misses, 3);
}

#[test]
fn preranked_lists_are_per_category_and_per_prefs() {
    let svc = ReputationService::builder().build();
    svc.publish(listing(1, 0)).unwrap();
    svc.publish(listing(2, 7)).unwrap();
    let prefs = Preferences::uniform([Metric::Price]);
    assert_eq!(svc.top_k(0, &prefs, 1).len(), 1);
    assert_eq!(svc.top_k(7, &prefs, 1).len(), 1);
    assert_eq!(svc.top_k(0, &prefs, 1).len(), 1);
    let stats = svc.stats();
    assert_eq!(stats.preranked_misses, 2, "one ranking per category");
    assert_eq!(stats.preranked_hits, 1);
    assert_eq!(stats.topk_plan_misses, 2, "one plan build per category");
    assert_eq!(stats.topk_plan_hits, 0, "rank hits shield the plan cache");

    // Different preferences rank separately over the same cached plan.
    let other = Preferences::uniform([Metric::Accuracy]);
    assert_eq!(svc.top_k(0, &other, 1).len(), 1);
    let stats = svc.stats();
    assert_eq!(stats.preranked_misses, 3, "new prefs miss the rank cache");
    assert_eq!(stats.topk_plan_hits, 1, "but reuse the category plan");
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "wsrep-serve-incremental-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole invariant end to end: arbitrary interleavings of
    /// reports (out-of-order timestamps included) score identically
    /// whether folded incrementally or replayed from the log.
    #[test]
    fn incremental_twin_equals_replay_twin(
        raw in proptest::collection::vec(
            (0u64..9, 0u64..SERVICES, 0.0f64..=1.0, 0u64..40),
            1..120,
        ),
        shards in 1usize..6,
    ) {
        let reports: Vec<Feedback> = raw
            .iter()
            .map(|&(rater, service, score, at)| feedback(rater, service, score, at))
            .collect();
        let incremental = ReputationService::builder().shards(shards).build();
        let replay = ReputationService::builder().shards(shards).replay_scoring().build();
        ingest_all(&incremental, &reports);
        ingest_all(&replay, &reports);
        for s in 0..SERVICES {
            let subject: SubjectId = ServiceId::new(s).into();
            prop_assert_eq!(incremental.score(subject), replay.score(subject));
        }
    }

    /// Recovery rebuilds the resident accumulators in parallel across a
    /// WAL forced into many small segments; the recovered incremental
    /// service must score exactly like an un-crashed replay twin.
    #[test]
    fn parallel_recovery_equals_sequential_replay(
        raw in proptest::collection::vec(
            (0u64..9, 0u64..SERVICES, 0.0f64..=1.0, 0u64..40),
            1..80,
        ),
        segment_bytes in 128u64..1024,
    ) {
        let tag = format!("recover-{}-{}", raw.len(), segment_bytes);
        let live = temp_dir(&tag);
        let reports: Vec<Feedback> = raw
            .iter()
            .map(|&(rater, service, score, at)| feedback(rater, service, score, at))
            .collect();
        {
            let svc = ReputationService::builder()
                .shards(4)
                .journal(&live)
                .max_segment_bytes(segment_bytes)
                .build();
            ingest_all(&svc, &reports);
        }
        let revived = ReputationService::builder()
            .shards(4)
            .recover_from(&live)
            .build();
        prop_assert!(revived.stats().incremental);
        let reference = ReputationService::builder()
            .shards(4)
            .replay_scoring()
            .build();
        ingest_all(&reference, &reports);
        for s in 0..SERVICES {
            let subject: SubjectId = ServiceId::new(s).into();
            prop_assert_eq!(
                revived.score(subject),
                reference.score(subject),
                "service {} after recovery over {} byte segments", s, segment_bytes
            );
        }
        drop(revived);
        fs::remove_dir_all(&live).unwrap();
    }
}
