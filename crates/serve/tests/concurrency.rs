//! Concurrency and equivalence guarantees of the served registry.
//!
//! Two claims are load-bearing: (1) no feedback is ever lost between a
//! successful `ingest` and the sharded store, whatever the thread
//! interleaving; (2) sharding + batching + caching are pure plumbing —
//! the score a subject gets from the service is exactly the score a
//! single-threaded [`FeedbackStore`] replay produces.

use proptest::prelude::*;
use std::sync::Arc;
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ServiceId, SubjectId};
use wsrep_core::mechanism::score_from_log;
use wsrep_core::mechanisms::beta::BetaMechanism;
use wsrep_core::store::FeedbackStore;
use wsrep_core::time::Time;
use wsrep_qos::metric::Metric;
use wsrep_qos::preference::Preferences;
use wsrep_qos::value::QosVector;
use wsrep_serve::ReputationService;
use wsrep_sim::registry::Listing;

fn feedback(rater: u64, service: u64, score: f64, at: u64) -> Feedback {
    Feedback::scored(
        AgentId::new(rater),
        ServiceId::new(service),
        score,
        Time::new(at),
    )
}

fn listing(service: u64) -> Listing {
    Listing {
        service: ServiceId::new(service),
        provider: wsrep_core::id::ProviderId::new(service),
        category: 0,
        advertised: QosVector::from_pairs([(Metric::Price, service as f64 + 1.0)]),
    }
}

/// Many ingest threads race many query threads; afterwards every accepted
/// report is in exactly one shard and the shard totals add up.
#[test]
fn concurrent_ingest_and_query_loses_nothing() {
    const INGESTERS: u64 = 4;
    const QUERIERS: u64 = 4;
    const PER_THREAD: u64 = 500;
    const SERVICES: u64 = 16;

    let service = Arc::new(
        ReputationService::builder()
            .shards(8)
            .channel_capacity(64)
            .batch_size(32)
            .build(),
    );
    for s in 0..SERVICES {
        service.publish(listing(s)).unwrap();
    }

    let prefs = Preferences::uniform([Metric::Price]);
    std::thread::scope(|scope| {
        for t in 0..INGESTERS {
            let service = Arc::clone(&service);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let sid = (t * PER_THREAD + i) % SERVICES;
                    let score = if sid.is_multiple_of(2) { 0.9 } else { 0.2 };
                    service
                        .ingest(feedback(t, sid, score, i))
                        .expect("pipeline is open");
                }
            });
        }
        for _ in 0..QUERIERS {
            let service = Arc::clone(&service);
            let prefs = prefs.clone();
            scope.spawn(move || {
                // Queries interleave with ingestion; they must never
                // panic, deadlock, or observe a phantom subject.
                for q in 0..400u64 {
                    let subject: SubjectId = ServiceId::new(q % SERVICES).into();
                    if let Some(estimate) = service.score(subject) {
                        let v = estimate.value.get();
                        assert!((0.0..=1.0).contains(&v), "score out of range: {v}");
                    }
                    if q % 50 == 0 {
                        let top = service.top_k(0, &prefs, 5);
                        assert!(top.len() <= 5);
                    }
                }
            });
        }
    });

    service.flush();
    let total = INGESTERS * PER_THREAD;
    let store = service.store();
    let per_shard: Vec<usize> = (0..store.num_shards())
        .map(|i| store.shard_len(i))
        .collect();
    assert_eq!(
        per_shard.iter().sum::<usize>() as u64,
        total,
        "shard totals {per_shard:?} must add up to every accepted report"
    );
    assert_eq!(service.stats().feedback, total);

    // Epochs partition the same count by subject.
    let epoch_sum: u64 = (0..SERVICES)
        .map(|s| store.epoch(ServiceId::new(s).into()))
        .sum();
    assert_eq!(epoch_sum, total);
}

/// After the dust settles, polarized feedback must separate good from bad
/// services in `top_k` even though all claims are distinct.
#[test]
fn ranking_after_concurrent_ingestion_reflects_feedback() {
    let service = Arc::new(ReputationService::builder().reputation_weight(1.0).build());
    service.publish(listing(0)).unwrap(); // rated 0.9 below
    service.publish(listing(1)).unwrap(); // rated 0.2 below
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let service = Arc::clone(&service);
            scope.spawn(move || {
                for i in 0..100 {
                    service.ingest(feedback(t, 0, 0.9, i)).unwrap();
                    service.ingest(feedback(t, 1, 0.2, i)).unwrap();
                }
            });
        }
    });
    service.flush();
    let prefs = Preferences::uniform([Metric::Price]);
    let top = service.top_k(0, &prefs, 2);
    assert_eq!(top[0].service, ServiceId::new(0));
    assert!(top[0].score > top[1].score);
}

proptest! {
    /// The served score equals a single-threaded replay of the same log
    /// through the same mechanism over a plain `FeedbackStore`.
    #[test]
    fn sharded_score_matches_sequential_store(
        reports in proptest::collection::vec(
            (0u64..12, 0u64..6, 0.0f64..1.0, 0u64..50),
            1..60,
        ),
        shards in 1usize..9,
    ) {
        let service = ReputationService::builder()
            .shards(shards)
            .batch_size(7)
            .mechanism(BetaMechanism::new)
            .build();
        let mut reference = FeedbackStore::new();
        for &(rater, svc, score, at) in &reports {
            let f = feedback(rater, svc, score, at);
            service.ingest(f.clone()).unwrap();
            reference.push(f);
        }
        service.flush();

        for svc in 0..6u64 {
            let subject: SubjectId = ServiceId::new(svc).into();
            let mut mech = BetaMechanism::new();
            let expected = score_from_log(&mut mech, reference.about(subject), subject);
            let served = service.score(subject);
            match (expected, served) {
                (None, None) => {}
                (Some(e), Some(s)) => {
                    prop_assert!(
                        (e.value.get() - s.value.get()).abs() < 1e-12
                            && (e.confidence - s.confidence).abs() < 1e-12,
                        "subject {subject}: served {s:?} != sequential {e:?}"
                    );
                }
                other => prop_assert!(false, "evidence mismatch for {subject}: {other:?}"),
            }
        }
    }
}
