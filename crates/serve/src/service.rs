//! The served reputation registry.
//!
//! [`ReputationService`] is the paper's Figure 2 central QoS registry
//! grown into a thread-safe service: providers `publish` listings,
//! consumers `ingest` feedback (batched, through the bounded pipeline) and
//! ask for `score`s and `top_k` rankings.
//!
//! Scoring is **incremental** whenever the configured
//! [`ReputationMechanism`] offers a fold
//! ([`ReputationMechanism::accumulator`]): the ingest writer folds each
//! applied report into shard-resident per-subject state, and a score read
//! is an O(1) lookup of the resident estimate no matter how long the
//! subject's log is. Mechanisms without a fold fall back to replaying the
//! subject's shard log through [`score_from_log`] on every cache miss
//! (also selectable explicitly with [`ServiceBuilder::replay_scoring`]).
//!
//! The query path is **read-mostly wait-free**: `score` validates a
//! wait-free per-subject epoch and probes a snapshot-swapped cache;
//! `top_k` validates the listings epoch (one atomic load) and the
//! category's score epoch, then serves a pre-ranked list with a
//! `k`-element copy. Writers — the ingest thread, publish, deregister —
//! swap immutable snapshots and bump epochs; they never hold a lock a
//! reader has to wait on. See `DESIGN.md` § "Read path".
//!
//! Reads are eventually consistent with respect to ingestion: a query
//! reflects the reports the writer has applied, not the ones still queued.
//! Call [`ReputationService::flush`] for a consistency point.

use crate::cache::ScoreCache;
use crate::durability::{DurabilityPolicy, JournalHandle, JournalHealth, NotDurable};
use crate::ingest::{IngestClosed, IngestConfig, IngestPipeline};
use crate::shard::{FoldFactory, ShardedStore};
use crate::topk::{CategoryPlan, PlanCache, RankCache, RankedList, ScoreEpochs};
use parking_lot::RwLock;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread;
use std::time::Duration;
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{ServiceId, SubjectId};
use wsrep_core::mechanism::{score_from_log, ReputationMechanism};
use wsrep_core::mechanisms::beta::BetaMechanism;
use wsrep_core::trust::TrustEstimate;
use wsrep_journal::faults::IoPolicy;
use wsrep_journal::{
    list_group_dirs, recover, write_snapshot, GroupSet, Journal, JournalConfig, JournalRecord,
};
use wsrep_qos::metric::Metric;
use wsrep_qos::normalize::{NormalizationMatrix, OverallScore};
use wsrep_qos::preference::Preferences;
use wsrep_qos::value::QosVector;
use wsrep_sim::registry::{search_category, Listing, PublishStatus, RegistryError};

pub use crate::topk::RankedService;

/// Builds a fresh mechanism instance for one scoring pass. Shared
/// (`Arc`) so the shard-resident fold can reuse the same recipe.
pub type MechanismFactory = Arc<dyn Fn() -> Box<dyn ReputationMechanism> + Send + Sync>;

/// The listing table plus its **epoch** and **count**, both readable
/// without the lock.
///
/// The epoch is bumped under the write lock on every publish/deregister;
/// cached category plans and rank lists are stamped with the epoch they
/// were built from, so any listing change invalidates exactly the state
/// it could affect — and the read path checks it with one atomic load.
/// The count feeds stats without touching the lock.
#[derive(Debug, Default)]
struct Listings {
    table: RwLock<BTreeMap<ServiceId, Listing>>,
    epoch: AtomicU64,
    count: AtomicU64,
}

impl Listings {
    /// Current epoch, without the lock. Readers validating cached plans
    /// against this may trail a publish mid-apply by one bump — the
    /// served answer is then the consistent pre-publish one, exactly as
    /// if the query had run a moment earlier.
    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed) as usize
    }

    /// Insert/replace under the write lock, then bump the epoch. Plan
    /// builders hold the read lock while stamping, so a stamped epoch
    /// always matches the exact table contents it was built from.
    fn publish(&self, listing: Listing) -> PublishStatus {
        let mut table = self.table.write();
        let status = match table.insert(listing.service, listing) {
            Some(_) => PublishStatus::Updated,
            None => {
                self.count.fetch_add(1, Ordering::Relaxed);
                PublishStatus::Created
            }
        };
        self.epoch.fetch_add(1, Ordering::Release);
        status
    }

    fn deregister(&self, service: ServiceId) -> bool {
        let mut table = self.table.write();
        if table.remove(&service).is_some() {
            self.count.fetch_sub(1, Ordering::Relaxed);
            self.epoch.fetch_add(1, Ordering::Release);
            true
        } else {
            false
        }
    }
}

/// Operational counters for dashboards and benchmarks.
///
/// **Consistency contract:** every counter is maintained as a relaxed
/// atomic (or derived from one) and read without stopping writers. Each
/// counter is individually monotonic and exact, but one `stats()` call is
/// *not* a consistent cut across them — e.g. `cache_hits +
/// cache_misses` may momentarily disagree with the number of `score`
/// calls that have returned, and `feedback` may trail an in-flight batch.
/// Collecting stats never takes a lock the read or write path uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Shards in the feedback store.
    pub shards: usize,
    /// Published listings.
    pub listings: usize,
    /// Feedback reports applied to the store.
    pub feedback: u64,
    /// Reports accepted but possibly still queued.
    pub submitted: u64,
    /// Score queries answered from the cache.
    pub cache_hits: u64,
    /// Score queries that recomputed.
    pub cache_misses: u64,
    /// `top_k` rebuilds ranking over a prebuilt category plan.
    pub topk_plan_hits: u64,
    /// `top_k` rebuilds that (re)built their category plan.
    pub topk_plan_misses: u64,
    /// `top_k` queries served whole from a pre-ranked list (no scoring,
    /// no sort).
    pub preranked_hits: u64,
    /// `top_k` queries that had to score and sort the category.
    pub preranked_misses: u64,
    /// Immutable snapshots published across the score, plan, and rank
    /// caches (one per copy-on-write insert).
    pub snapshot_swaps: u64,
    /// `top_k` rebuilds that reused a warm thread-local scratch buffer
    /// instead of allocating.
    pub scratch_reuse: u64,
    /// Whether scoring folds incrementally (vs replaying the log).
    pub incremental: bool,
    /// Journal health, when a write-ahead log is attached.
    pub journal: Option<JournalHealth>,
}

/// What one [`ReputationService::checkpoint`] pass captured and reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointReport {
    /// The snapshot covers journal records `[0, lsn)`.
    pub lsn: u64,
    /// Entries written to the snapshot (listings + feedback).
    pub entries: u64,
    /// WAL segments the snapshot made deletable.
    pub segments_removed: u64,
    /// Superseded snapshot files deleted.
    pub snapshots_removed: u64,
    /// Total bytes reclaimed.
    pub bytes_reclaimed: u64,
}

/// Why [`ReputationService::apply_replicated`] stopped applying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicateError {
    /// The ingest pipeline already shut down.
    Closed,
    /// The durability policy fenced writes after a journal failure; the
    /// replica refuses to acknowledge records it cannot journal.
    NotDurable,
}

impl fmt::Display for ReplicateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicateError::Closed => IngestClosed.fmt(f),
            ReplicateError::NotDurable => NotDurable.fmt(f),
        }
    }
}

impl std::error::Error for ReplicateError {}

impl From<IngestClosed> for ReplicateError {
    fn from(_: IngestClosed) -> Self {
        ReplicateError::Closed
    }
}

impl From<NotDurable> for ReplicateError {
    fn from(_: NotDurable) -> Self {
        ReplicateError::NotDurable
    }
}

/// Configures and builds a [`ReputationService`].
pub struct ServiceBuilder {
    shards: usize,
    ingest: IngestConfig,
    reputation_weight: f64,
    factory: MechanismFactory,
    journal_dir: Option<PathBuf>,
    recover: bool,
    journal_config: JournalConfig,
    checkpoint_every: Option<Duration>,
    incremental: bool,
    writer_groups: usize,
    durability: DurabilityPolicy,
    io_policy: Option<Arc<dyn IoPolicy>>,
}

impl Default for ServiceBuilder {
    fn default() -> Self {
        ServiceBuilder {
            shards: 8,
            ingest: IngestConfig::default(),
            reputation_weight: 0.5,
            factory: Arc::new(|| Box::new(BetaMechanism::new())),
            journal_dir: None,
            recover: false,
            journal_config: JournalConfig::default(),
            checkpoint_every: None,
            incremental: true,
            writer_groups: 1,
            durability: DurabilityPolicy::default(),
            io_policy: None,
        }
    }
}

impl ServiceBuilder {
    /// Number of store shards (clamped to at least 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Bounded ingest channel capacity.
    pub fn channel_capacity(mut self, capacity: usize) -> Self {
        self.ingest.channel_capacity = capacity;
        self
    }

    /// Most reports the writer applies per wake-up.
    pub fn batch_size(mut self, batch: usize) -> Self {
        self.ingest.batch_size = batch;
        self
    }

    /// Weight of reputation vs advertised QoS in `top_k` (clamped to
    /// `[0, 1]`; 0 ranks purely on claims, 1 purely on reputation).
    pub fn reputation_weight(mut self, weight: f64) -> Self {
        self.reputation_weight = weight.clamp(0.0, 1.0);
        self
    }

    /// The reputation mechanism scoring queries replay feedback through.
    pub fn mechanism<F, M>(mut self, factory: F) -> Self
    where
        F: Fn() -> M + Send + Sync + 'static,
        M: ReputationMechanism + 'static,
    {
        self.factory = Arc::new(move || Box::new(factory()));
        self
    }

    /// Like [`ServiceBuilder::mechanism`], but taking the boxed factory
    /// form directly — for callers that pick the mechanism at runtime.
    pub fn mechanism_factory(mut self, factory: MechanismFactory) -> Self {
        self.factory = factory;
        self
    }

    /// Score by replaying the subject's log on every cache miss even when
    /// the mechanism offers an incremental fold — the pre-incremental
    /// behavior, kept selectable for measurement and as the reference
    /// semantics the fold is tested against.
    pub fn replay_scoring(mut self) -> Self {
        self.incremental = false;
        self
    }

    /// Attach a write-ahead journal at `dir` (created if missing): every
    /// ingested batch and every publish/deregister is group-committed to
    /// the log before it is applied.
    pub fn journal(mut self, dir: impl Into<PathBuf>) -> Self {
        self.journal_dir = Some(dir.into());
        self
    }

    /// Attach the journal at `dir` **and** replay its latest snapshot
    /// plus WAL tail into the fresh service before it starts serving.
    pub fn recover_from(mut self, dir: impl Into<PathBuf>) -> Self {
        self.journal_dir = Some(dir.into());
        self.recover = true;
        self
    }

    /// Rotate the active WAL segment once it exceeds this many bytes.
    pub fn max_segment_bytes(mut self, bytes: u64) -> Self {
        self.journal_config.max_segment_bytes = bytes;
        self
    }

    /// Checkpoint (snapshot + compact) in the background at this period.
    /// Only meaningful with a journal attached.
    pub fn checkpoint_every(mut self, every: Duration) -> Self {
        self.checkpoint_every = Some(every);
        self
    }

    /// Ingest writer groups (clamped to at least 1). With `n > 1` the
    /// ingest pipeline runs `n` writer threads, each owning a disjoint
    /// set of store shards — and, with a journal attached, its own WAL
    /// partition with its own group-commit fsync pipeline. A journal
    /// directory that already holds `m > n` partitions reopens with `m`
    /// writers; the layout never shrinks in place.
    pub fn writer_groups(mut self, groups: usize) -> Self {
        self.writer_groups = groups.max(1);
        self
    }

    /// How the service responds to a journal I/O failure: keep serving
    /// without durability ([`DurabilityPolicy::Degrade`], the default),
    /// fence writes ([`DurabilityPolicy::ReadOnly`]), or fence writes
    /// and report fail-stop ([`DurabilityPolicy::FailStop`]). Only
    /// meaningful with a journal attached.
    pub fn durability_policy(mut self, policy: DurabilityPolicy) -> Self {
        self.durability = policy;
        self
    }

    /// Install a fault-injection policy on the journal (and the
    /// checkpointer's snapshot writes) — the test seam behind every
    /// durability claim. See [`wsrep_journal::faults`].
    pub fn io_policy(mut self, policy: Arc<dyn IoPolicy>) -> Self {
        self.io_policy = Some(policy);
        self
    }

    /// Start the service (spawns the ingest writer thread).
    ///
    /// Panics if the journal directory cannot be opened or recovered;
    /// use [`ServiceBuilder::try_build`] to handle that as an error.
    pub fn build(self) -> ReputationService {
        self.try_build().expect("failed to open reputation journal")
    }

    /// Start the service, surfacing journal open/recovery errors.
    pub fn try_build(self) -> io::Result<ReputationService> {
        // Probe once whether the mechanism folds; availability is a
        // property of the mechanism type, not of any one instance.
        let fold: Option<FoldFactory> =
            if self.incremental && (self.factory)().accumulator().is_some() {
                let factory = Arc::clone(&self.factory);
                Some(Arc::new(move || {
                    (factory)()
                        .accumulator()
                        .expect("accumulator availability must not vary per instance")
                }))
            } else {
                None
            };
        let store = Arc::new(ShardedStore::with_fold(self.shards, fold));
        let listings = Arc::new(Listings::default());
        let score_epochs = Arc::new(ScoreEpochs::new());

        let mut journal = None;
        if let Some(dir) = self.journal_dir {
            let mut records_recovered = 0;
            let mut floor_lsn = 0;
            if self.recover {
                // Replay BEFORE opening the writer: recovery tolerates a
                // torn final record, and reopening the log then truncates
                // the same tail, so both agree on the durable prefix.
                let recovered = recover(&dir)?;
                records_recovered = recovered.records_recovered;
                floor_lsn = recovered.next_lsn;
                for listing in recovered.listings {
                    score_epochs.ensure(listing.service.into(), listing.category);
                    listings.publish(listing);
                }
                // Re-inserting the recovered log restores every
                // per-subject epoch (an epoch is a count of applied
                // reports), so the empty score cache can never validate
                // against a stale epoch. The parallel path rebuilds the
                // resident accumulators on all cores — restart cost
                // scales with cores, not history length.
                store.insert_batch_parallel(recovered.feedback);
            }
            // A directory that already has writer-group partitions must
            // reopen partitioned even if the builder asked for one
            // writer; a fresh single-writer journal keeps the flat
            // (root-level) layout bit-for-bit.
            let on_disk_groups = list_group_dirs(&dir)?.len();
            let handle = if self.writer_groups <= 1 && on_disk_groups == 0 {
                let mut inner = Journal::open(&dir, self.journal_config)?;
                if let Some(policy) = &self.io_policy {
                    inner.set_io_policy(Arc::clone(policy));
                }
                JournalHandle::single(
                    inner,
                    records_recovered,
                    self.durability,
                    self.io_policy.clone(),
                )
            } else {
                let set = GroupSet::open(&dir, self.writer_groups, self.journal_config, floor_lsn)?;
                if let Some(policy) = &self.io_policy {
                    set.set_io_policy(Arc::clone(policy));
                }
                JournalHandle::partitioned(
                    set,
                    records_recovered,
                    self.durability,
                    self.io_policy.clone(),
                )
            };
            journal = Some(Arc::new(handle));
        }

        // A journaled pipeline's fan-out must match the log's partition
        // count (which may exceed the requested one when reopening a
        // wider on-disk layout); without a journal the knob alone decides.
        let pipeline_groups = journal
            .as_ref()
            .map(|handle| handle.writer_groups())
            .unwrap_or(self.writer_groups);
        let ingest = IngestPipeline::start_with_journal(
            Arc::clone(&store),
            self.ingest,
            journal.clone(),
            Some(Arc::clone(&score_epochs)),
            pipeline_groups,
        );
        let compactor = match (&journal, self.checkpoint_every) {
            (Some(handle), Some(every)) => Some(Compactor::spawn(
                every,
                Arc::clone(handle),
                Arc::clone(&store),
                Arc::clone(&listings),
            )),
            _ => None,
        };
        Ok(ReputationService {
            store,
            cache: ScoreCache::new(),
            plans: PlanCache::new(),
            ranks: RankCache::new(),
            score_epochs,
            listings,
            reputation_weight: self.reputation_weight,
            factory: self.factory,
            scratch_reuse: AtomicU64::new(0),
            journal,
            _compactor: compactor,
            ingest,
        })
    }
}

thread_local! {
    /// Per-thread rank-rebuild scratch: weight and score buffers reused
    /// across `top_k` misses so a rebuild allocates only the cached
    /// `RankedList` itself.
    static RANK_SCRATCH: RefCell<RankScratch> = RefCell::new(RankScratch::default());
}

#[derive(Default)]
struct RankScratch {
    weights: Vec<f64>,
    scores: Vec<OverallScore>,
    warm: bool,
}

/// Thread-safe reputation registry: sharded store + batched ingestion +
/// snapshot-swapped score/plan/rank caches + preference-aware top-k.
pub struct ReputationService {
    store: Arc<ShardedStore>,
    cache: ScoreCache,
    plans: PlanCache,
    ranks: RankCache,
    score_epochs: Arc<ScoreEpochs>,
    listings: Arc<Listings>,
    reputation_weight: f64,
    factory: MechanismFactory,
    scratch_reuse: AtomicU64,
    journal: Option<Arc<JournalHandle>>,
    // Held only for its Drop. Declared before `ingest`: drop stops the
    // checkpointer first, then the pipeline drains (journaling the
    // remainder) and joins.
    _compactor: Option<Compactor>,
    ingest: IngestPipeline,
}

impl fmt::Debug for ReputationService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReputationService")
            .field("shards", &self.store.num_shards())
            .field("listings", &self.listings.len())
            .field("feedback", &self.store.len())
            .finish_non_exhaustive()
    }
}

impl Default for ReputationService {
    fn default() -> Self {
        Self::builder().build()
    }
}

impl ReputationService {
    /// Configure a service.
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::default()
    }

    /// Publish (or update) a listing. The served registry has no down
    /// state, so the only refusal is [`RegistryError::NotDurable`]: the
    /// durability policy fenced writes after a journal failure. With a
    /// journal attached the event is committed to the log before the
    /// listing table changes.
    pub fn publish(&self, listing: Listing) -> Result<PublishStatus, RegistryError> {
        match &self.journal {
            Some(handle) => {
                // Listing mutations always commit through group 0, so
                // they keep a total order among themselves however many
                // feedback writers run.
                let record = JournalRecord::Publish(listing.clone());
                handle
                    .commit(0, std::slice::from_ref(&record), || {
                        self.apply_publish(listing)
                    })
                    .map_err(|NotDurable| RegistryError::NotDurable)
            }
            None => Ok(self.apply_publish(listing)),
        }
    }

    fn apply_publish(&self, listing: Listing) -> PublishStatus {
        // Membership first: feedback landing between the two calls bumps
        // the (possibly brand-new) category counter, which at worst
        // invalidates a rank list one query earlier than necessary.
        self.score_epochs
            .ensure(listing.service.into(), listing.category);
        self.listings.publish(listing)
    }

    /// Remove a listing. Journaled only when it actually removes one;
    /// a fenced journal refuses with [`RegistryError::NotDurable`]
    /// **without** removing anything.
    pub fn deregister(&self, service: ServiceId) -> Result<(), RegistryError> {
        match &self.journal {
            Some(handle) => {
                // Hold group 0's commit lock across check-append-remove:
                // a concurrent checkpoint never sees the removal without
                // its journal record, and the journal-before-apply order
                // means a policy-rejected append leaves the listing in
                // place — the service never claims a removal it cannot
                // make durable.
                let mut guard = handle.lock_group(0);
                if self.listing(service).is_none() {
                    return Err(RegistryError::NotFound);
                }
                guard
                    .append(&[JournalRecord::Deregister(service)])
                    .map_err(|NotDurable| RegistryError::NotDurable)?;
                self.apply_deregister(service);
                Ok(())
            }
            None => {
                if self.apply_deregister(service) {
                    Ok(())
                } else {
                    Err(RegistryError::NotFound)
                }
            }
        }
    }

    fn apply_deregister(&self, service: ServiceId) -> bool {
        if self.listings.deregister(service) {
            self.score_epochs.forget(service.into());
            true
        } else {
            false
        }
    }

    /// Look up one listing.
    pub fn listing(&self, service: ServiceId) -> Option<Listing> {
        self.listings.table.read().get(&service).cloned()
    }

    /// Every listing in `category`, through the same [`search_category`]
    /// the simulated UDDI registry answers with.
    pub fn search(&self, category: u32) -> Vec<Listing> {
        let table = self.listings.table.read();
        search_category(table.values(), category)
            .into_iter()
            .cloned()
            .collect()
    }

    /// Enqueue one feedback report (blocks while the channel is full).
    pub fn ingest(&self, feedback: Feedback) -> Result<(), IngestClosed> {
        self.ingest.submit(feedback)
    }

    /// Enqueue a whole batch of reports (blocks while the channel is
    /// full), returning how many were accepted. This is the entry point
    /// for batched ingest RPCs: one call moves the submitted counter once,
    /// so a concurrent [`ReputationService::flush`] waits for the entire
    /// accepted batch or none of it.
    pub fn ingest_batch(
        &self,
        batch: impl IntoIterator<Item = Feedback>,
    ) -> Result<u64, IngestClosed> {
        self.ingest.submit_batch(batch)
    }

    /// Block until everything ingested so far is applied and queryable.
    ///
    /// With a journal attached this is also a **durability barrier**: the
    /// ingest writer group-commits each batch to the WAL before applying
    /// it and only then advances the counter this waits on. When `flush`
    /// returns, every previously ingested report is fdatasync'd on disk
    /// and will survive a crash — [`ServiceBuilder::recover_from`] gets
    /// it back.
    pub fn flush(&self) {
        self.ingest.flush();
    }

    /// [`ReputationService::flush`], but honest about fencing: if the
    /// durability policy fenced writes ([`DurabilityPolicy::ReadOnly`] /
    /// [`DurabilityPolicy::FailStop`]), some previously accepted reports
    /// were rejected instead of journaled, and this returns
    /// [`NotDurable`] rather than acknowledging them. Servers use this
    /// as the ack barrier so a fenced node refuses instead of lying.
    pub fn try_flush(&self) -> Result<(), NotDurable> {
        self.ingest.flush();
        // The writer sets the fence before advancing the progress
        // counter, so after the wait above any rejected prior batch is
        // visible here.
        if self.durability_fenced() {
            return Err(NotDurable);
        }
        Ok(())
    }

    /// True once the durability policy fenced writes after a journal
    /// failure. A fenced service keeps answering reads but refuses every
    /// mutation; under [`DurabilityPolicy::FailStop`] the host process
    /// is expected to exit when this turns true.
    pub fn durability_fenced(&self) -> bool {
        self.journal.as_ref().is_some_and(|handle| handle.fenced())
    }

    /// The configured response to journal failure
    /// ([`DurabilityPolicy::Degrade`] when no journal is attached).
    pub fn durability_policy(&self) -> DurabilityPolicy {
        self.journal
            .as_ref()
            .map(|handle| handle.policy())
            .unwrap_or_default()
    }

    /// Apply a run of replicated journal records in shipped order — the
    /// entry point a replication follower feeds records pulled from its
    /// primary through.
    ///
    /// Contiguous feedback records ride the batched ingest pipeline;
    /// listing operations (publish/deregister) apply inline. Before each
    /// listing operation — and once at the end — the pipeline is flushed,
    /// so with a journal attached the replica's *own* log records the
    /// stream in exactly the shipped LSN order: local LSNs equal primary
    /// LSNs, which is what lets a promoted replica's log stand in for the
    /// primary's. A deregister of an unknown service is tolerated (the
    /// primary only journals removals that happened, so this indicates
    /// nothing worse than a duplicate delivery).
    ///
    /// Returns how many records were applied; when it returns `Ok`,
    /// every one of them is queryable (and durable, with a journal
    /// attached). A fenced replica ([`DurabilityPolicy::ReadOnly`] /
    /// [`DurabilityPolicy::FailStop`] after a journal failure) returns
    /// [`ReplicateError::NotDurable`] instead of acknowledging records
    /// it could not journal.
    pub fn apply_replicated(
        &self,
        records: impl IntoIterator<Item = JournalRecord>,
    ) -> Result<u64, ReplicateError> {
        let mut applied = 0u64;
        let mut batch: Vec<Feedback> = Vec::new();
        for record in records {
            match record {
                JournalRecord::Feedback(report) => batch.push(report),
                JournalRecord::Publish(listing) => {
                    applied += self.drain_replicated(&mut batch)?;
                    self.publish(listing)
                        .map_err(|_| ReplicateError::NotDurable)?;
                    applied += 1;
                }
                JournalRecord::Deregister(service) => {
                    applied += self.drain_replicated(&mut batch)?;
                    // NotFound is tolerated (duplicate delivery); a
                    // durability fence is not.
                    match self.deregister(service) {
                        Ok(()) | Err(RegistryError::NotFound) => {}
                        Err(_) => return Err(ReplicateError::NotDurable),
                    }
                    applied += 1;
                }
            }
        }
        applied += self.drain_replicated(&mut batch)?;
        Ok(applied)
    }

    /// Submit buffered replicated feedback and wait until it is applied
    /// (and journaled, when a journal is attached).
    fn drain_replicated(&self, batch: &mut Vec<Feedback>) -> Result<u64, ReplicateError> {
        if batch.is_empty() {
            return Ok(0);
        }
        let accepted = self.ingest_batch(batch.drain(..))?;
        self.try_flush()?;
        Ok(accepted)
    }

    /// The attached journal's contiguous durable frontier — the
    /// watermark replication lag is measured against. With one writer
    /// this is one past the last record; with several writer groups it
    /// is the min over groups of each group's settled prefix, so every
    /// record below it is on disk. `None` without a journal.
    pub fn durable_lsn(&self) -> Option<u64> {
        self.journal.as_ref().map(|handle| handle.durable_lsn())
    }

    /// The attached journal's root directory, when one is attached —
    /// where a [`wsrep_journal::ShipCursor`] reads records to replicate
    /// (merging writer-group partitions when there are several).
    pub fn journal_dir(&self) -> Option<PathBuf> {
        self.journal
            .as_ref()
            .map(|handle| handle.dir().to_path_buf())
    }

    /// Snapshot the full registry state at a consistent LSN, then drop
    /// every WAL segment (and superseded snapshot) the new snapshot
    /// covers. Returns `None` when no journal is attached.
    ///
    /// Flushes first, so the snapshot covers everything ingested before
    /// the call. The commit lock is held only while state is copied out —
    /// the snapshot file itself is written with ingestion running.
    pub fn checkpoint(&self) -> io::Result<Option<CheckpointReport>> {
        let Some(handle) = &self.journal else {
            return Ok(None);
        };
        self.flush();
        checkpoint_now(handle, &self.store, &self.listings).map(Some)
    }

    /// The subject's reputation, from cache when the store hasn't moved.
    ///
    /// Wait-free when cached: the epoch read and the cache probe are both
    /// snapshot reads that never block on the ingest writer. A miss reads
    /// the shard-resident accumulator (O(1) in the subject's history)
    /// with an incremental mechanism, or replays the subject's shard log
    /// through a fresh mechanism instance without one.
    ///
    /// `None` means no evidence: either nothing was ever reported, or the
    /// mechanism abstains.
    pub fn score(&self, subject: SubjectId) -> Option<TrustEstimate> {
        let epoch = self.store.epoch(subject);
        if epoch == 0 {
            return None;
        }
        self.cache.get_or_compute(subject, epoch, || {
            self.store
                .with_subject_shard(subject, |shard| match shard.resident_estimate(subject) {
                    Some(estimate) => estimate,
                    None => {
                        let mut mechanism = (self.factory)();
                        score_from_log(mechanism.as_mut(), shard.store().about(subject), subject)
                    }
                })
        })
    }

    /// The `k` best services in `category` under `prefs`.
    ///
    /// Advertised claims are normalized Liu–Ngu–Zeng style across the
    /// category's candidates; each candidate's claim score is blended with
    /// its reputation (ignorance counts as the neutral 0.5 prior) by the
    /// configured weight, and ties keep the deterministic listing order.
    ///
    /// Allocates the answer vector; the hot path is
    /// [`ReputationService::top_k_into`], which reuses a caller buffer.
    pub fn top_k(&self, category: u32, prefs: &Preferences, k: usize) -> Vec<RankedService> {
        let mut out = Vec::new();
        self.top_k_into(category, prefs, k, &mut out);
        out
    }

    /// [`ReputationService::top_k`] into a caller-provided buffer
    /// (cleared first) — the allocation-free form for query loops.
    ///
    /// The fast path is wait-free: one listings-epoch load, one
    /// score-epoch load, one rank-cache snapshot probe, and a `k`-element
    /// copy of the pre-ranked list. Only when a publish/deregister or
    /// member feedback moved an epoch does the query score and sort the
    /// category again — and that rebuild is cached for everyone.
    pub fn top_k_into(
        &self,
        category: u32,
        prefs: &Preferences,
        k: usize,
        out: &mut Vec<RankedService>,
    ) {
        out.clear();
        if k == 0 {
            return;
        }
        let listings_epoch = self.listings.epoch();
        // Read the score epoch BEFORE any scoring: if feedback lands
        // mid-rebuild the list is stamped older than its content and the
        // bumped counter forces a harmless rebuild — never the reverse
        // (fresh-stamped stale scores served forever).
        let score_epoch = self.score_epochs.get(category);
        if let Some(list) = self.ranks.get(category, prefs, listings_epoch, score_epoch) {
            let take = k.min(list.ranked.len());
            out.extend_from_slice(&list.ranked[..take]);
            return;
        }
        let plan = self.category_plan(category);
        let ranked = self.rank_category(&plan, prefs);
        let list = self.ranks.insert(
            category,
            Arc::new(RankedList {
                // The plan's epoch, not the one loaded above: the plan
                // build may have observed a racing publish, and the
                // ranked content corresponds to *its* candidate set.
                listings_epoch: plan.epoch,
                score_epoch,
                prefs: prefs.clone(),
                ranked,
            }),
        );
        let take = k.min(list.ranked.len());
        out.extend_from_slice(&list.ranked[..take]);
    }

    /// Score and sort every candidate of `plan` under `prefs`, reusing
    /// the thread-local scratch buffers for the weight/score vectors.
    fn rank_category(&self, plan: &CategoryPlan, prefs: &Preferences) -> Vec<RankedService> {
        if plan.candidates.is_empty() {
            return Vec::new();
        }
        let w = self.reputation_weight;
        let mut ranked: Vec<RankedService> = Vec::with_capacity(plan.candidates.len());
        RANK_SCRATCH.with(|scratch| {
            let mut scratch = scratch.borrow_mut();
            if scratch.warm {
                self.scratch_reuse.fetch_add(1, Ordering::Relaxed);
            } else {
                scratch.warm = true;
            }
            let RankScratch {
                weights, scores, ..
            } = &mut *scratch;
            plan.matrix.scores_unsorted_into(prefs, weights, scores);
            for (&(service, provider), qos) in plan.candidates.iter().zip(scores.iter()) {
                let reputation = self.score(service.into());
                let rep_value = reputation
                    .map(|e| e.value.get())
                    .unwrap_or_else(|| TrustEstimate::ignorance().value.get());
                ranked.push(RankedService {
                    service,
                    provider,
                    qos_score: qos.score,
                    reputation,
                    score: (1.0 - w) * qos.score + w * rep_value,
                });
            }
        });
        ranked.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        ranked
    }

    /// The category's prepared ranking plan, rebuilt only when a publish
    /// or deregister has moved the listings epoch since it was cached.
    ///
    /// The plan is built under the listings read lock, so a plan can
    /// never pair stale candidates with a fresh epoch; the matrix is
    /// built over borrowed advertised vectors — no listing is cloned on
    /// this path.
    fn category_plan(&self, category: u32) -> Arc<CategoryPlan> {
        let plan = {
            let table = self.listings.table.read();
            let epoch = self.listings.epoch();
            if let Some(plan) = self.plans.get(category, epoch) {
                return plan;
            }
            let candidates = search_category(table.values(), category);
            let vectors: Vec<&QosVector> = candidates.iter().map(|l| &l.advertised).collect();
            let mut metrics: Vec<Metric> = vectors.iter().flat_map(|v| v.metrics()).collect();
            metrics.sort();
            metrics.dedup();
            Arc::new(CategoryPlan {
                epoch,
                candidates: candidates.iter().map(|l| (l.service, l.provider)).collect(),
                matrix: NormalizationMatrix::new(&vectors, &metrics),
            })
        };
        self.plans.insert(category, plan)
    }

    /// Operational counters. See [`ServiceStats`] for the consistency
    /// contract — collection never blocks the read or write path.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            shards: self.store.num_shards(),
            listings: self.listings.len(),
            feedback: self.store.len() as u64,
            submitted: self.ingest.submitted(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            topk_plan_hits: self.plans.hits(),
            topk_plan_misses: self.plans.misses(),
            preranked_hits: self.ranks.hits(),
            preranked_misses: self.ranks.misses(),
            snapshot_swaps: self.cache.swaps() + self.plans.swaps() + self.ranks.swaps(),
            scratch_reuse: self.scratch_reuse.load(Ordering::Relaxed),
            incremental: self.store.is_incremental(),
            journal: self.journal.as_ref().map(|handle| handle.health()),
        }
    }

    /// The shared sharded store (for tests and benchmarks).
    pub fn store(&self) -> &Arc<ShardedStore> {
        &self.store
    }
}

/// Capture `(LSN, listings, feedback)` with every commit lock held,
/// write the snapshot outside the locks, then compact.
///
/// Consistency argument: every mutation commits its journal record and
/// its in-memory apply under the same (per-group) commit lock, so with
/// all locks held the state is exactly the effect of records
/// `[0, next_lsn)` — including reports still queued in the ingest
/// channels, which get LSNs above the captured one and survive
/// compaction in the WAL tails.
fn checkpoint_now(
    handle: &JournalHandle,
    store: &ShardedStore,
    listings: &Listings,
) -> io::Result<CheckpointReport> {
    let (lsn, (listing_vec, feedback)) = handle.freeze(|| {
        let listing_vec: Vec<Listing> = listings.table.read().values().cloned().collect();
        let feedback = store.dump();
        (listing_vec, feedback)
    });
    let entries = listing_vec.len() as u64 + feedback.len() as u64;
    // The checkpoint-side fault seam: an installed IoPolicy can fail or
    // delay the snapshot write just like any journal I/O.
    handle.consult_snapshot()?;
    write_snapshot(handle.dir(), lsn, &listing_vec, &feedback)?;
    let report = handle.compact(lsn)?;
    Ok(CheckpointReport {
        lsn,
        entries,
        segments_removed: report.segments_removed,
        snapshots_removed: report.snapshots_removed,
        bytes_reclaimed: report.bytes_reclaimed,
    })
}

/// The background checkpointer: wakes on a period, snapshots, compacts.
/// Stopped and joined on drop.
struct Compactor {
    stop: Arc<(StdMutex<bool>, Condvar)>,
    thread: Option<thread::JoinHandle<()>>,
}

impl Compactor {
    fn spawn(
        every: Duration,
        handle: Arc<JournalHandle>,
        store: Arc<ShardedStore>,
        listings: Arc<Listings>,
    ) -> Compactor {
        let stop = Arc::new((StdMutex::new(false), Condvar::new()));
        let thread_stop = Arc::clone(&stop);
        let thread = thread::spawn(move || {
            let (lock, wake) = &*thread_stop;
            let mut stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
            while !*stopped {
                let (guard, timeout) = wake
                    .wait_timeout(stopped, every)
                    .unwrap_or_else(|e| e.into_inner());
                stopped = guard;
                if !*stopped && timeout.timed_out() {
                    // A failed background pass only delays compaction;
                    // the WAL still holds everything.
                    let _ = checkpoint_now(&handle, &store, &listings);
                }
            }
        });
        Compactor {
            stop,
            thread: Some(thread),
        }
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        let (lock, wake) = &*self.stop;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        wake.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrep_core::id::{AgentId, ProviderId};
    use wsrep_core::time::Time;

    fn listing(service: u64, category: u32, price: f64, accuracy: f64) -> Listing {
        Listing {
            service: ServiceId::new(service),
            provider: ProviderId::new(service),
            category,
            advertised: QosVector::from_pairs([
                (Metric::Price, price),
                (Metric::Accuracy, accuracy),
            ]),
        }
    }

    fn feedback(rater: u64, service: u64, score: f64, at: u64) -> Feedback {
        Feedback::scored(
            AgentId::new(rater),
            ServiceId::new(service),
            score,
            Time::new(at),
        )
    }

    #[test]
    fn publish_search_and_deregister() {
        let svc = ReputationService::builder().shards(2).build();
        assert_eq!(
            svc.publish(listing(1, 0, 5.0, 0.9)),
            Ok(PublishStatus::Created)
        );
        assert_eq!(
            svc.publish(listing(1, 0, 4.0, 0.9)),
            Ok(PublishStatus::Updated)
        );
        assert_eq!(
            svc.publish(listing(2, 7, 2.0, 0.5)),
            Ok(PublishStatus::Created)
        );
        assert_eq!(svc.search(0).len(), 1);
        assert_eq!(svc.search(7).len(), 1);
        assert_eq!(svc.deregister(ServiceId::new(2)), Ok(()));
        assert_eq!(
            svc.deregister(ServiceId::new(2)),
            Err(RegistryError::NotFound)
        );
        assert_eq!(svc.search(7).len(), 0);
    }

    #[test]
    fn score_reflects_flushed_feedback_and_caches() {
        let svc = ReputationService::default();
        let subject: SubjectId = ServiceId::new(1).into();
        assert_eq!(svc.score(subject), None);
        for i in 0..20 {
            svc.ingest(feedback(i, 1, 0.9, i)).unwrap();
        }
        svc.flush();
        let first = svc.score(subject).expect("evidence exists");
        assert!(first.value.get() > 0.5, "20 positive reports");
        let again = svc.score(subject).unwrap();
        assert_eq!(first, again);
        let stats = svc.stats();
        assert!(stats.cache_hits >= 1, "second query must hit: {stats:?}");
        assert_eq!(stats.feedback, 20);
    }

    #[test]
    fn new_feedback_invalidates_the_cached_score() {
        let svc = ReputationService::default();
        let subject: SubjectId = ServiceId::new(1).into();
        svc.ingest(feedback(0, 1, 0.95, 0)).unwrap();
        svc.flush();
        let optimistic = svc.score(subject).unwrap();
        for i in 1..30 {
            svc.ingest(feedback(i, 1, 0.05, i)).unwrap();
        }
        svc.flush();
        let corrected = svc.score(subject).unwrap();
        assert!(
            corrected.value.get() < optimistic.value.get(),
            "29 negative reports must drag the score down"
        );
    }

    #[test]
    fn top_k_blends_claims_with_reputation() {
        let svc = ReputationService::builder().reputation_weight(0.5).build();
        // Same category, same claims — only reputation can separate them.
        svc.publish(listing(1, 0, 5.0, 0.9)).unwrap();
        svc.publish(listing(2, 0, 5.0, 0.9)).unwrap();
        for i in 0..15 {
            svc.ingest(feedback(i, 1, 0.95, i)).unwrap();
            svc.ingest(feedback(i, 2, 0.05, i)).unwrap();
        }
        svc.flush();
        let prefs = Preferences::uniform([Metric::Price, Metric::Accuracy]);
        let top = svc.top_k(0, &prefs, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].service, ServiceId::new(1));
        assert!(top[0].score > top[1].score);
        assert_eq!(svc.top_k(0, &prefs, 1).len(), 1);
        assert_eq!(svc.top_k(99, &prefs, 5), Vec::new());
    }

    #[test]
    fn unrated_services_rank_by_claims_alone() {
        let svc = ReputationService::builder().reputation_weight(0.5).build();
        svc.publish(listing(1, 0, 1.0, 0.9)).unwrap(); // cheap and accurate
        svc.publish(listing(2, 0, 9.0, 0.2)).unwrap(); // pricey and sloppy
        let prefs = Preferences::uniform([Metric::Price, Metric::Accuracy]);
        let top = svc.top_k(0, &prefs, 5);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].service, ServiceId::new(1));
        assert!(top.iter().all(|r| r.reputation.is_none()));
    }

    #[test]
    fn repeat_top_k_serves_from_the_preranked_list() {
        let svc = ReputationService::builder().reputation_weight(0.5).build();
        svc.publish(listing(1, 0, 1.0, 0.9)).unwrap();
        svc.publish(listing(2, 0, 2.0, 0.8)).unwrap();
        let prefs = Preferences::uniform([Metric::Price, Metric::Accuracy]);
        let first = svc.top_k(0, &prefs, 2);
        let mut out = Vec::new();
        for _ in 0..10 {
            svc.top_k_into(0, &prefs, 2, &mut out);
            assert_eq!(out, first);
        }
        let stats = svc.stats();
        assert_eq!(stats.preranked_hits, 10, "{stats:?}");
        assert_eq!(stats.preranked_misses, 1, "{stats:?}");
    }

    #[test]
    fn member_feedback_invalidates_the_preranked_list() {
        let svc = ReputationService::builder().reputation_weight(1.0).build();
        svc.publish(listing(1, 0, 5.0, 0.9)).unwrap();
        svc.publish(listing(2, 0, 5.0, 0.9)).unwrap();
        let prefs = Preferences::uniform([Metric::Price, Metric::Accuracy]);
        let before = svc.top_k(0, &prefs, 2);
        // Pure-reputation weights and identical claims: the ranking can
        // only move if the rank list is actually invalidated by feedback.
        for i in 0..20 {
            svc.ingest(feedback(i, 2, 0.99, i)).unwrap();
            svc.ingest(feedback(i, 1, 0.01, i)).unwrap();
        }
        svc.flush();
        let after = svc.top_k(0, &prefs, 2);
        assert_eq!(before[0].service, ServiceId::new(1), "listing order tie");
        assert_eq!(after[0].service, ServiceId::new(2), "feedback re-ranked");
        let stats = svc.stats();
        assert!(stats.preranked_misses >= 2, "{stats:?}");
    }

    #[test]
    fn feedback_about_unlisted_subjects_keeps_rank_lists_valid() {
        let svc = ReputationService::default();
        svc.publish(listing(1, 0, 1.0, 0.9)).unwrap();
        let prefs = Preferences::uniform([Metric::Price]);
        svc.top_k(0, &prefs, 1);
        // Feedback about a service nobody listed: no category member
        // moved, so the pre-ranked list must keep serving.
        for i in 0..10 {
            svc.ingest(feedback(i, 999, 0.5, i)).unwrap();
        }
        svc.flush();
        svc.top_k(0, &prefs, 1);
        let stats = svc.stats();
        assert_eq!(stats.preranked_hits, 1, "{stats:?}");
        assert_eq!(stats.preranked_misses, 1, "{stats:?}");
    }

    #[test]
    fn stats_report_snapshot_swaps_and_scratch_reuse() {
        let svc = ReputationService::default();
        svc.publish(listing(1, 0, 1.0, 0.9)).unwrap();
        let prefs = Preferences::uniform([Metric::Price]);
        svc.top_k(0, &prefs, 1);
        svc.publish(listing(2, 0, 2.0, 0.8)).unwrap();
        svc.top_k(0, &prefs, 2);
        let stats = svc.stats();
        assert!(stats.snapshot_swaps >= 2, "{stats:?}");
        assert!(stats.scratch_reuse >= 1, "second rebuild reuses: {stats:?}");
    }
}
