//! The served reputation registry.
//!
//! [`ReputationService`] is the paper's Figure 2 central QoS registry
//! grown into a thread-safe service: providers `publish` listings,
//! consumers `ingest` feedback (batched, through the bounded pipeline) and
//! ask for `score`s and `top_k` rankings.
//!
//! Scoring is **incremental** whenever the configured
//! [`ReputationMechanism`] offers a fold
//! ([`ReputationMechanism::accumulator`]): the ingest writer folds each
//! applied report into shard-resident per-subject state, and a score read
//! is an O(1) lookup of the resident estimate no matter how long the
//! subject's log is — the epoch-validated cache then only shields
//! cross-shard read traffic, not recompute cost. Mechanisms without a
//! fold fall back to replaying the subject's shard log through
//! [`score_from_log`] on every cache miss (the pre-incremental behavior,
//! also selectable explicitly with [`ServiceBuilder::replay_scoring`]).
//!
//! Reads are eventually consistent with respect to ingestion: a query
//! reflects the reports the writer has applied, not the ones still queued.
//! Call [`ReputationService::flush`] for a consistency point.

use crate::cache::ScoreCache;
use crate::durability::{JournalHandle, JournalHealth};
use crate::ingest::{IngestClosed, IngestConfig, IngestPipeline};
use crate::shard::{FoldFactory, ShardedStore};
use crate::topk::{CategoryPlan, PlanCache};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread;
use std::time::Duration;
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{ProviderId, ServiceId, SubjectId};
use wsrep_core::mechanism::{score_from_log, ReputationMechanism};
use wsrep_core::mechanisms::beta::BetaMechanism;
use wsrep_core::trust::TrustEstimate;
use wsrep_journal::{recover, write_snapshot, Journal, JournalConfig, JournalRecord};
use wsrep_qos::metric::Metric;
use wsrep_qos::normalize::NormalizationMatrix;
use wsrep_qos::preference::Preferences;
use wsrep_qos::value::QosVector;
use wsrep_sim::registry::{search_category, Listing, PublishStatus, RegistryError};

/// Builds a fresh mechanism instance for one scoring pass. Shared
/// (`Arc`) so the shard-resident fold can reuse the same recipe.
pub type MechanismFactory = Arc<dyn Fn() -> Box<dyn ReputationMechanism> + Send + Sync>;

/// The listing table plus its **epoch**: a counter bumped under the
/// write lock on every publish/deregister. Cached per-category ranking
/// plans are stamped with the epoch they were built from, so any listing
/// change invalidates exactly the plans it could affect.
#[derive(Debug, Default)]
struct ListingTable {
    map: BTreeMap<ServiceId, Listing>,
    epoch: u64,
}

/// One entry of a [`ReputationService::top_k`] answer.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedService {
    /// The ranked service.
    pub service: ServiceId,
    /// Its provider.
    pub provider: ProviderId,
    /// Advertised-QoS score in `[0, 1]` from the normalization matrix.
    pub qos_score: f64,
    /// Reputation evidence, when any feedback exists.
    pub reputation: Option<TrustEstimate>,
    /// The blended ranking score.
    pub score: f64,
}

/// Operational counters for dashboards and benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Shards in the feedback store.
    pub shards: usize,
    /// Published listings.
    pub listings: usize,
    /// Feedback reports applied to the store.
    pub feedback: u64,
    /// Reports accepted but possibly still queued.
    pub submitted: u64,
    /// Score queries answered from the cache.
    pub cache_hits: u64,
    /// Score queries that recomputed.
    pub cache_misses: u64,
    /// `top_k` queries ranking over a prebuilt category plan.
    pub topk_plan_hits: u64,
    /// `top_k` queries that (re)built their category plan.
    pub topk_plan_misses: u64,
    /// Whether scoring folds incrementally (vs replaying the log).
    pub incremental: bool,
    /// Journal health, when a write-ahead log is attached.
    pub journal: Option<JournalHealth>,
}

/// What one [`ReputationService::checkpoint`] pass captured and reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointReport {
    /// The snapshot covers journal records `[0, lsn)`.
    pub lsn: u64,
    /// Entries written to the snapshot (listings + feedback).
    pub entries: u64,
    /// WAL segments the snapshot made deletable.
    pub segments_removed: u64,
    /// Superseded snapshot files deleted.
    pub snapshots_removed: u64,
    /// Total bytes reclaimed.
    pub bytes_reclaimed: u64,
}

/// Configures and builds a [`ReputationService`].
pub struct ServiceBuilder {
    shards: usize,
    ingest: IngestConfig,
    reputation_weight: f64,
    factory: MechanismFactory,
    journal_dir: Option<PathBuf>,
    recover: bool,
    journal_config: JournalConfig,
    checkpoint_every: Option<Duration>,
    incremental: bool,
}

impl Default for ServiceBuilder {
    fn default() -> Self {
        ServiceBuilder {
            shards: 8,
            ingest: IngestConfig::default(),
            reputation_weight: 0.5,
            factory: Arc::new(|| Box::new(BetaMechanism::new())),
            journal_dir: None,
            recover: false,
            journal_config: JournalConfig::default(),
            checkpoint_every: None,
            incremental: true,
        }
    }
}

impl ServiceBuilder {
    /// Number of store shards (clamped to at least 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Bounded ingest channel capacity.
    pub fn channel_capacity(mut self, capacity: usize) -> Self {
        self.ingest.channel_capacity = capacity;
        self
    }

    /// Most reports the writer applies per wake-up.
    pub fn batch_size(mut self, batch: usize) -> Self {
        self.ingest.batch_size = batch;
        self
    }

    /// Weight of reputation vs advertised QoS in `top_k` (clamped to
    /// `[0, 1]`; 0 ranks purely on claims, 1 purely on reputation).
    pub fn reputation_weight(mut self, weight: f64) -> Self {
        self.reputation_weight = weight.clamp(0.0, 1.0);
        self
    }

    /// The reputation mechanism scoring queries replay feedback through.
    pub fn mechanism<F, M>(mut self, factory: F) -> Self
    where
        F: Fn() -> M + Send + Sync + 'static,
        M: ReputationMechanism + 'static,
    {
        self.factory = Arc::new(move || Box::new(factory()));
        self
    }

    /// Like [`ServiceBuilder::mechanism`], but taking the boxed factory
    /// form directly — for callers that pick the mechanism at runtime.
    pub fn mechanism_factory(mut self, factory: MechanismFactory) -> Self {
        self.factory = factory;
        self
    }

    /// Score by replaying the subject's log on every cache miss even when
    /// the mechanism offers an incremental fold — the pre-incremental
    /// behavior, kept selectable for measurement and as the reference
    /// semantics the fold is tested against.
    pub fn replay_scoring(mut self) -> Self {
        self.incremental = false;
        self
    }

    /// Attach a write-ahead journal at `dir` (created if missing): every
    /// ingested batch and every publish/deregister is group-committed to
    /// the log before it is applied.
    pub fn journal(mut self, dir: impl Into<PathBuf>) -> Self {
        self.journal_dir = Some(dir.into());
        self
    }

    /// Attach the journal at `dir` **and** replay its latest snapshot
    /// plus WAL tail into the fresh service before it starts serving.
    pub fn recover_from(mut self, dir: impl Into<PathBuf>) -> Self {
        self.journal_dir = Some(dir.into());
        self.recover = true;
        self
    }

    /// Rotate the active WAL segment once it exceeds this many bytes.
    pub fn max_segment_bytes(mut self, bytes: u64) -> Self {
        self.journal_config.max_segment_bytes = bytes;
        self
    }

    /// Checkpoint (snapshot + compact) in the background at this period.
    /// Only meaningful with a journal attached.
    pub fn checkpoint_every(mut self, every: Duration) -> Self {
        self.checkpoint_every = Some(every);
        self
    }

    /// Start the service (spawns the ingest writer thread).
    ///
    /// Panics if the journal directory cannot be opened or recovered;
    /// use [`ServiceBuilder::try_build`] to handle that as an error.
    pub fn build(self) -> ReputationService {
        self.try_build().expect("failed to open reputation journal")
    }

    /// Start the service, surfacing journal open/recovery errors.
    pub fn try_build(self) -> io::Result<ReputationService> {
        // Probe once whether the mechanism folds; availability is a
        // property of the mechanism type, not of any one instance.
        let fold: Option<FoldFactory> =
            if self.incremental && (self.factory)().accumulator().is_some() {
                let factory = Arc::clone(&self.factory);
                Some(Arc::new(move || {
                    (factory)()
                        .accumulator()
                        .expect("accumulator availability must not vary per instance")
                }))
            } else {
                None
            };
        let store = Arc::new(ShardedStore::with_fold(self.shards, fold));
        let listings = Arc::new(RwLock::new(ListingTable::default()));

        let mut journal = None;
        if let Some(dir) = self.journal_dir {
            let mut records_recovered = 0;
            if self.recover {
                // Replay BEFORE opening the writer: recovery tolerates a
                // torn final record, and `Journal::open` then truncates
                // the same tail, so both agree on the durable prefix.
                let recovered = recover(&dir)?;
                records_recovered = recovered.records_recovered;
                {
                    let mut table = listings.write();
                    for listing in recovered.listings {
                        table.epoch += 1;
                        table.map.insert(listing.service, listing);
                    }
                }
                // Re-inserting the recovered log restores every
                // per-subject epoch (an epoch is a count of applied
                // reports), so the empty score cache can never validate
                // against a stale epoch. The parallel path rebuilds the
                // resident accumulators on all cores — restart cost
                // scales with cores, not history length.
                store.insert_batch_parallel(recovered.feedback);
            }
            let inner = Journal::open(&dir, self.journal_config)?;
            journal = Some(Arc::new(JournalHandle::new(inner, records_recovered)));
        }

        let ingest =
            IngestPipeline::start_with_journal(Arc::clone(&store), self.ingest, journal.clone());
        let compactor = match (&journal, self.checkpoint_every) {
            (Some(handle), Some(every)) => Some(Compactor::spawn(
                every,
                Arc::clone(handle),
                Arc::clone(&store),
                Arc::clone(&listings),
            )),
            _ => None,
        };
        Ok(ReputationService {
            store,
            cache: ScoreCache::new(),
            plans: PlanCache::new(),
            listings,
            reputation_weight: self.reputation_weight,
            factory: self.factory,
            journal,
            _compactor: compactor,
            ingest,
        })
    }
}

/// Thread-safe reputation registry: sharded store + batched ingestion +
/// epoch-validated score cache + preference-aware top-k.
pub struct ReputationService {
    store: Arc<ShardedStore>,
    cache: ScoreCache,
    plans: PlanCache,
    listings: Arc<RwLock<ListingTable>>,
    reputation_weight: f64,
    factory: MechanismFactory,
    journal: Option<Arc<JournalHandle>>,
    // Held only for its Drop. Declared before `ingest`: drop stops the
    // checkpointer first, then the pipeline drains (journaling the
    // remainder) and joins.
    _compactor: Option<Compactor>,
    ingest: IngestPipeline,
}

impl fmt::Debug for ReputationService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReputationService")
            .field("shards", &self.store.num_shards())
            .field("listings", &self.listings.read().map.len())
            .field("feedback", &self.store.len())
            .finish_non_exhaustive()
    }
}

impl Default for ReputationService {
    fn default() -> Self {
        Self::builder().build()
    }
}

impl ReputationService {
    /// Configure a service.
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::default()
    }

    /// Publish (or update) a listing. The served registry has no down
    /// state — publication always succeeds. With a journal attached the
    /// event is committed to the log before the listing table changes.
    pub fn publish(&self, listing: Listing) -> PublishStatus {
        match &self.journal {
            Some(handle) => {
                let record = JournalRecord::Publish(listing.clone());
                handle.commit(std::slice::from_ref(&record), || {
                    Self::apply_publish(&self.listings, listing)
                })
            }
            None => Self::apply_publish(&self.listings, listing),
        }
    }

    fn apply_publish(listings: &RwLock<ListingTable>, listing: Listing) -> PublishStatus {
        let mut table = listings.write();
        table.epoch += 1;
        match table.map.insert(listing.service, listing) {
            Some(_) => PublishStatus::Updated,
            None => PublishStatus::Created,
        }
    }

    /// Remove a listing. Journaled only when it actually removes one.
    pub fn deregister(&self, service: ServiceId) -> Result<(), RegistryError> {
        match &self.journal {
            Some(handle) => {
                // Hold the commit lock across check-and-remove so a
                // concurrent checkpoint never sees the removal without
                // its journal record.
                let mut journal = handle.lock();
                if Self::apply_deregister(&self.listings, service) {
                    handle.append_locked(&mut journal, &[JournalRecord::Deregister(service)]);
                    Ok(())
                } else {
                    Err(RegistryError::NotFound)
                }
            }
            None => {
                if Self::apply_deregister(&self.listings, service) {
                    Ok(())
                } else {
                    Err(RegistryError::NotFound)
                }
            }
        }
    }

    fn apply_deregister(listings: &RwLock<ListingTable>, service: ServiceId) -> bool {
        let mut table = listings.write();
        if table.map.remove(&service).is_some() {
            table.epoch += 1;
            true
        } else {
            false
        }
    }

    /// Look up one listing.
    pub fn listing(&self, service: ServiceId) -> Option<Listing> {
        self.listings.read().map.get(&service).cloned()
    }

    /// Every listing in `category`, through the same [`search_category`]
    /// the simulated UDDI registry answers with.
    pub fn search(&self, category: u32) -> Vec<Listing> {
        let table = self.listings.read();
        search_category(table.map.values(), category)
            .into_iter()
            .cloned()
            .collect()
    }

    /// Enqueue one feedback report (blocks while the channel is full).
    pub fn ingest(&self, feedback: Feedback) -> Result<(), IngestClosed> {
        self.ingest.submit(feedback)
    }

    /// Block until everything ingested so far is applied and queryable.
    ///
    /// With a journal attached this is also a **durability barrier**: the
    /// ingest writer group-commits each batch to the WAL before applying
    /// it and only then advances the counter this waits on. When `flush`
    /// returns, every previously ingested report is fdatasync'd on disk
    /// and will survive a crash — [`ServiceBuilder::recover_from`] gets
    /// it back.
    pub fn flush(&self) {
        self.ingest.flush();
    }

    /// Snapshot the full registry state at a consistent LSN, then drop
    /// every WAL segment (and superseded snapshot) the new snapshot
    /// covers. Returns `None` when no journal is attached.
    ///
    /// Flushes first, so the snapshot covers everything ingested before
    /// the call. The commit lock is held only while state is copied out —
    /// the snapshot file itself is written with ingestion running.
    pub fn checkpoint(&self) -> io::Result<Option<CheckpointReport>> {
        let Some(handle) = &self.journal else {
            return Ok(None);
        };
        self.flush();
        checkpoint_now(handle, &self.store, &self.listings).map(Some)
    }

    /// The subject's reputation, from cache when the store hasn't moved.
    ///
    /// With an incremental mechanism a miss reads the shard-resident
    /// accumulator — O(1) in the subject's history. Otherwise it replays
    /// the subject's shard log through a fresh mechanism instance.
    ///
    /// `None` means no evidence: either nothing was ever reported, or the
    /// mechanism abstains.
    pub fn score(&self, subject: SubjectId) -> Option<TrustEstimate> {
        let epoch = self.store.epoch(subject);
        if epoch == 0 {
            return None;
        }
        self.cache.get_or_compute(subject, epoch, || {
            self.store
                .with_subject_shard(subject, |shard| match shard.resident_estimate(subject) {
                    Some(estimate) => estimate,
                    None => {
                        let mut mechanism = (self.factory)();
                        score_from_log(mechanism.as_mut(), shard.store().about(subject), subject)
                    }
                })
        })
    }

    /// The `k` best services in `category` under `prefs`.
    ///
    /// Advertised claims are normalized Liu–Ngu–Zeng style across the
    /// category's candidates; each candidate's claim score is blended with
    /// its reputation (ignorance counts as the neutral 0.5 prior) by the
    /// configured weight, and ties keep the deterministic listing order.
    pub fn top_k(&self, category: u32, prefs: &Preferences, k: usize) -> Vec<RankedService> {
        if k == 0 {
            return Vec::new();
        }
        let plan = self.category_plan(category);
        if plan.candidates.is_empty() {
            return Vec::new();
        }
        let mut qos_scores = vec![0.0; plan.candidates.len()];
        for s in plan.matrix.scores(prefs) {
            qos_scores[s.candidate] = s.score;
        }
        let w = self.reputation_weight;
        let mut ranked: Vec<RankedService> = plan
            .candidates
            .iter()
            .zip(qos_scores)
            .map(|(&(service, provider), qos_score)| {
                let reputation = self.score(service.into());
                let rep_value = reputation
                    .map(|e| e.value.get())
                    .unwrap_or_else(|| TrustEstimate::ignorance().value.get());
                RankedService {
                    service,
                    provider,
                    qos_score,
                    reputation,
                    score: (1.0 - w) * qos_score + w * rep_value,
                }
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        ranked.truncate(k);
        ranked
    }

    /// The category's prepared ranking plan, rebuilt only when a publish
    /// or deregister has moved the listings epoch since it was cached.
    ///
    /// The plan is built under the same read lock the epoch is read
    /// under, so a plan can never pair stale candidates with a fresh
    /// epoch; the matrix is built over borrowed advertised vectors — no
    /// listing is cloned on this path.
    fn category_plan(&self, category: u32) -> Arc<CategoryPlan> {
        let plan = {
            let table = self.listings.read();
            if let Some(plan) = self.plans.get(category, table.epoch) {
                return plan;
            }
            let candidates = search_category(table.map.values(), category);
            let vectors: Vec<&QosVector> = candidates.iter().map(|l| &l.advertised).collect();
            let mut metrics: Vec<Metric> = vectors.iter().flat_map(|v| v.metrics()).collect();
            metrics.sort();
            metrics.dedup();
            Arc::new(CategoryPlan {
                epoch: table.epoch,
                candidates: candidates.iter().map(|l| (l.service, l.provider)).collect(),
                matrix: NormalizationMatrix::new(&vectors, &metrics),
            })
        };
        self.plans.insert(category, plan)
    }

    /// Operational counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            shards: self.store.num_shards(),
            listings: self.listings.read().map.len(),
            feedback: self.store.len() as u64,
            submitted: self.ingest.submitted(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            topk_plan_hits: self.plans.hits(),
            topk_plan_misses: self.plans.misses(),
            incremental: self.store.is_incremental(),
            journal: self.journal.as_ref().map(|handle| handle.health()),
        }
    }

    /// The shared sharded store (for tests and benchmarks).
    pub fn store(&self) -> &Arc<ShardedStore> {
        &self.store
    }
}

/// Capture `(LSN, listings, feedback)` under the commit lock, write the
/// snapshot outside it, then compact.
///
/// Consistency argument: every mutation commits its journal record and
/// its in-memory apply under the same lock, so at capture time the state
/// is exactly the effect of records `[0, next_lsn)` — including reports
/// still queued in the ingest channel, which have an LSN above the
/// captured one and survive compaction in the WAL tail.
fn checkpoint_now(
    handle: &JournalHandle,
    store: &ShardedStore,
    listings: &RwLock<ListingTable>,
) -> io::Result<CheckpointReport> {
    let (lsn, dir, listing_vec, feedback) = {
        let journal = handle.lock();
        let lsn = journal.next_lsn();
        let listing_vec: Vec<Listing> = listings.read().map.values().cloned().collect();
        let feedback = store.dump();
        (lsn, journal.dir().to_path_buf(), listing_vec, feedback)
    };
    let entries = listing_vec.len() as u64 + feedback.len() as u64;
    write_snapshot(&dir, lsn, &listing_vec, &feedback)?;
    let report = handle.lock().compact(lsn)?;
    Ok(CheckpointReport {
        lsn,
        entries,
        segments_removed: report.segments_removed,
        snapshots_removed: report.snapshots_removed,
        bytes_reclaimed: report.bytes_reclaimed,
    })
}

/// The background checkpointer: wakes on a period, snapshots, compacts.
/// Stopped and joined on drop.
struct Compactor {
    stop: Arc<(StdMutex<bool>, Condvar)>,
    thread: Option<thread::JoinHandle<()>>,
}

impl Compactor {
    fn spawn(
        every: Duration,
        handle: Arc<JournalHandle>,
        store: Arc<ShardedStore>,
        listings: Arc<RwLock<ListingTable>>,
    ) -> Compactor {
        let stop = Arc::new((StdMutex::new(false), Condvar::new()));
        let thread_stop = Arc::clone(&stop);
        let thread = thread::spawn(move || {
            let (lock, wake) = &*thread_stop;
            let mut stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
            while !*stopped {
                let (guard, timeout) = wake
                    .wait_timeout(stopped, every)
                    .unwrap_or_else(|e| e.into_inner());
                stopped = guard;
                if !*stopped && timeout.timed_out() {
                    // A failed background pass only delays compaction;
                    // the WAL still holds everything.
                    let _ = checkpoint_now(&handle, &store, &listings);
                }
            }
        });
        Compactor {
            stop,
            thread: Some(thread),
        }
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        let (lock, wake) = &*self.stop;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        wake.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrep_core::id::AgentId;
    use wsrep_core::time::Time;

    fn listing(service: u64, category: u32, price: f64, accuracy: f64) -> Listing {
        Listing {
            service: ServiceId::new(service),
            provider: ProviderId::new(service),
            category,
            advertised: QosVector::from_pairs([
                (Metric::Price, price),
                (Metric::Accuracy, accuracy),
            ]),
        }
    }

    fn feedback(rater: u64, service: u64, score: f64, at: u64) -> Feedback {
        Feedback::scored(
            AgentId::new(rater),
            ServiceId::new(service),
            score,
            Time::new(at),
        )
    }

    #[test]
    fn publish_search_and_deregister() {
        let svc = ReputationService::builder().shards(2).build();
        assert_eq!(svc.publish(listing(1, 0, 5.0, 0.9)), PublishStatus::Created);
        assert_eq!(svc.publish(listing(1, 0, 4.0, 0.9)), PublishStatus::Updated);
        assert_eq!(svc.publish(listing(2, 7, 2.0, 0.5)), PublishStatus::Created);
        assert_eq!(svc.search(0).len(), 1);
        assert_eq!(svc.search(7).len(), 1);
        assert_eq!(svc.deregister(ServiceId::new(2)), Ok(()));
        assert_eq!(
            svc.deregister(ServiceId::new(2)),
            Err(RegistryError::NotFound)
        );
        assert_eq!(svc.search(7).len(), 0);
    }

    #[test]
    fn score_reflects_flushed_feedback_and_caches() {
        let svc = ReputationService::default();
        let subject: SubjectId = ServiceId::new(1).into();
        assert_eq!(svc.score(subject), None);
        for i in 0..20 {
            svc.ingest(feedback(i, 1, 0.9, i)).unwrap();
        }
        svc.flush();
        let first = svc.score(subject).expect("evidence exists");
        assert!(first.value.get() > 0.5, "20 positive reports");
        let again = svc.score(subject).unwrap();
        assert_eq!(first, again);
        let stats = svc.stats();
        assert!(stats.cache_hits >= 1, "second query must hit: {stats:?}");
        assert_eq!(stats.feedback, 20);
    }

    #[test]
    fn new_feedback_invalidates_the_cached_score() {
        let svc = ReputationService::default();
        let subject: SubjectId = ServiceId::new(1).into();
        svc.ingest(feedback(0, 1, 0.95, 0)).unwrap();
        svc.flush();
        let optimistic = svc.score(subject).unwrap();
        for i in 1..30 {
            svc.ingest(feedback(i, 1, 0.05, i)).unwrap();
        }
        svc.flush();
        let corrected = svc.score(subject).unwrap();
        assert!(
            corrected.value.get() < optimistic.value.get(),
            "29 negative reports must drag the score down"
        );
    }

    #[test]
    fn top_k_blends_claims_with_reputation() {
        let svc = ReputationService::builder().reputation_weight(0.5).build();
        // Same category, same claims — only reputation can separate them.
        svc.publish(listing(1, 0, 5.0, 0.9));
        svc.publish(listing(2, 0, 5.0, 0.9));
        for i in 0..15 {
            svc.ingest(feedback(i, 1, 0.95, i)).unwrap();
            svc.ingest(feedback(i, 2, 0.05, i)).unwrap();
        }
        svc.flush();
        let prefs = Preferences::uniform([Metric::Price, Metric::Accuracy]);
        let top = svc.top_k(0, &prefs, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].service, ServiceId::new(1));
        assert!(top[0].score > top[1].score);
        assert_eq!(svc.top_k(0, &prefs, 1).len(), 1);
        assert_eq!(svc.top_k(99, &prefs, 5), Vec::new());
    }

    #[test]
    fn unrated_services_rank_by_claims_alone() {
        let svc = ReputationService::builder().reputation_weight(0.5).build();
        svc.publish(listing(1, 0, 1.0, 0.9)); // cheap and accurate
        svc.publish(listing(2, 0, 9.0, 0.2)); // pricey and sloppy
        let prefs = Preferences::uniform([Metric::Price, Metric::Accuracy]);
        let top = svc.top_k(0, &prefs, 5);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].service, ServiceId::new(1));
        assert!(top.iter().all(|r| r.reputation.is_none()));
    }
}
