//! The sharded feedback store behind the served registry.
//!
//! The single-threaded [`FeedbackStore`] is the unit of storage; this
//! module spreads one store per shard, keyed by a hash of the subject, so
//! ingestion and queries touching different subjects proceed in parallel.
//! Every report about one subject lands in exactly one shard, which keeps
//! per-subject scoring local: a score never needs more than one read lock.
//!
//! Each shard also tracks a per-subject **epoch** — a counter bumped on
//! every report about that subject. The score cache stamps entries with
//! the epoch it computed from; a stale epoch is a cache miss, so readers
//! can never serve a score that silently ignores applied feedback. Epochs
//! live *outside* the shard lock, in an [`EpochMap`] of atomic counters
//! behind a snapshot cell: reading an epoch — the first step of every
//! `score` — is wait-free and never queues behind the ingest writer.
//!
//! Epoch bumps happen **after** the report is applied to the shard (and
//! folded into the resident accumulator). A reader that observes epoch
//! `E` and recomputes therefore sees *at least* `E` reports — the score
//! it caches at `E` is never staler than `E`, only possibly fresher,
//! and the next bump invalidates it.
//!
//! With a fold factory attached ([`ShardedStore::with_fold`]), each shard
//! additionally keeps **resident scoring state**: one
//! [`SubjectAccumulator`] per subject, folded forward as reports are
//! applied. A score read then costs O(1) regardless of how long the
//! subject's log has grown — the log itself stays only as replay
//! material for checkpoints and for mechanisms without a fold.

use crate::fxhash::{self, FxHashMap};
use crate::snapshot::SnapshotCell;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wsrep_core::feedback::Feedback;
use wsrep_core::id::SubjectId;
use wsrep_core::mechanism::SubjectAccumulator;
use wsrep_core::store::FeedbackStore;
use wsrep_core::trust::TrustEstimate;

/// Builds one empty per-subject accumulator; shards call it the first
/// time they see a subject. `None` on the store means the configured
/// mechanism has no incremental fold and scoring replays the log.
pub type FoldFactory = Arc<dyn Fn() -> Box<dyn SubjectAccumulator> + Send + Sync>;

/// Wait-free subject → epoch counters for one shard.
///
/// The map of `Arc<AtomicU64>` counters is published through a
/// [`SnapshotCell`]; reading an epoch is a pin + probe + atomic load.
/// Adding a *new* subject copies the map and swaps the snapshot (rare —
/// once per subject lifetime); bumping an existing subject is a single
/// `fetch_add` with no snapshot churn.
#[derive(Debug, Default)]
pub struct EpochMap {
    snapshot: SnapshotCell<FxHashMap<SubjectId, Arc<AtomicU64>>>,
    write: Mutex<()>,
}

impl EpochMap {
    /// The subject's epoch (0 = never seen). Wait-free.
    pub fn get(&self, subject: SubjectId) -> u64 {
        self.snapshot.read(|map| {
            map.get(&subject)
                .map(|counter| counter.load(Ordering::Acquire))
                .unwrap_or(0)
        })
    }

    /// Count one applied report about `subject`.
    fn bump(&self, subject: SubjectId) {
        let existing = self.snapshot.read(|map| map.get(&subject).cloned());
        if let Some(counter) = existing {
            counter.fetch_add(1, Ordering::AcqRel);
            return;
        }
        let _writer = self.write.lock();
        // Re-check under the writer mutex: a racing bump may have
        // published the counter while we waited.
        let existing = self.snapshot.read(|map| map.get(&subject).cloned());
        if let Some(counter) = existing {
            counter.fetch_add(1, Ordering::AcqRel);
            return;
        }
        let mut next = (*self.snapshot.load()).clone();
        next.insert(subject, Arc::new(AtomicU64::new(1)));
        self.snapshot.store(Arc::new(next));
    }
}

/// One shard: a plain feedback store and (in incremental mode) the
/// resident accumulators of the subjects it owns.
#[derive(Debug, Default)]
pub struct Shard {
    store: FeedbackStore,
    accumulators: BTreeMap<SubjectId, Box<dyn SubjectAccumulator>>,
}

impl Shard {
    /// The shard's underlying append-only store.
    pub fn store(&self) -> &FeedbackStore {
        &self.store
    }

    /// The resident estimate for `subject`: `Some(estimate)` when an
    /// accumulator is folding this subject, `None` when scoring must
    /// replay the log (no fold factory, or no report applied yet).
    pub fn resident_estimate(&self, subject: SubjectId) -> Option<Option<TrustEstimate>> {
        self.accumulators.get(&subject).map(|acc| acc.estimate())
    }

    fn push(&mut self, feedback: Feedback, fold: Option<&FoldFactory>) {
        if let Some(factory) = fold {
            self.accumulators
                .entry(feedback.subject)
                .or_insert_with(|| factory())
                .absorb(&feedback);
        }
        self.store.push(feedback);
    }
}

/// A fixed set of independently locked shards.
///
/// All methods take `&self`; interior mutability lives in the per-shard
/// `RwLock`s, so the store can sit behind an `Arc` and be hit from any
/// number of ingest and query threads at once. Epoch reads and the total
/// report count bypass the locks entirely.
pub struct ShardedStore {
    shards: Vec<RwLock<Shard>>,
    epochs: Vec<EpochMap>,
    /// Reports applied across all shards; relaxed, bumped per batch.
    total: AtomicU64,
    fold: Option<FoldFactory>,
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("shards", &self.shards.len())
            .field("incremental", &self.fold.is_some())
            .finish()
    }
}

impl ShardedStore {
    /// A store with `shards` independent locks (at least one), scoring
    /// by log replay.
    pub fn new(shards: usize) -> Self {
        Self::with_fold(shards, None)
    }

    /// A store whose shards keep resident per-subject accumulators built
    /// by `fold`, folded forward on every applied report.
    pub fn with_fold(shards: usize, fold: Option<FoldFactory>) -> Self {
        let count = shards.max(1);
        ShardedStore {
            shards: (0..count).map(|_| RwLock::default()).collect(),
            epochs: (0..count).map(|_| EpochMap::default()).collect(),
            total: AtomicU64::new(0),
            fold,
        }
    }

    /// Whether shards fold reports into resident scoring state.
    pub fn is_incremental(&self) -> bool {
        self.fold.is_some()
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index owning `subject`.
    pub fn shard_of(&self, subject: SubjectId) -> usize {
        (fxhash::hash_one(&subject) % self.shards.len() as u64) as usize
    }

    /// Apply one report.
    pub fn insert(&self, feedback: Feedback) {
        let idx = self.shard_of(feedback.subject);
        let subject = feedback.subject;
        {
            let mut shard = self.shards[idx].write();
            shard.push(feedback, self.fold.as_ref());
        }
        // Bump after the report is visible in the shard: a reader that
        // sees the new epoch and recomputes is guaranteed to see the
        // report (never-stale rule; see module docs).
        self.epochs[idx].bump(subject);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Apply a batch, taking each shard's write lock once.
    ///
    /// This is what makes batched ingestion pay: a batch of B reports
    /// spread over S shards costs at most `min(B, S)` lock acquisitions
    /// instead of B.
    pub fn insert_batch(&self, batch: Vec<Feedback>) {
        for (idx, group) in self.partition(batch).into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            self.apply_group(idx, group);
        }
    }

    /// Apply one shard's pre-partitioned group: push everything under one
    /// write-lock acquisition, then bump epochs (after-apply, so epoch
    /// observers can never get ahead of the log).
    fn apply_group(&self, idx: usize, group: Vec<Feedback>) {
        let count = group.len() as u64;
        let mut subjects: Vec<SubjectId> = Vec::with_capacity(group.len());
        {
            let mut shard = self.shards[idx].write();
            for feedback in group {
                subjects.push(feedback.subject);
                shard.push(feedback, self.fold.as_ref());
            }
        }
        for subject in subjects {
            self.epochs[idx].bump(subject);
        }
        self.total.fetch_add(count, Ordering::Relaxed);
    }

    /// Apply a batch with one worker thread per core, each owning a
    /// disjoint set of shards — the recovery path, where the WAL replay
    /// hands us the whole history at once and restart cost should scale
    /// with cores, not log length.
    ///
    /// Equivalent to [`ShardedStore::insert_batch`]: partitioning keeps
    /// per-subject order (a subject lives in exactly one shard group),
    /// and cross-shard apply order never mattered — shards share no
    /// state. Epochs, logs, and resident accumulators come out
    /// identical.
    pub fn insert_batch_parallel(&self, batch: Vec<Feedback>) {
        let per_shard = self.partition(batch);
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(self.shards.len());
        // Round-robin shard ownership: worker w applies shard groups
        // w, w + workers, w + 2·workers, … No two workers touch the
        // same shard, so there is no lock contention to speak of.
        let mut per_worker: Vec<Vec<(usize, Vec<Feedback>)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (idx, group) in per_shard.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            per_worker[idx % workers].push((idx, group));
        }
        std::thread::scope(|scope| {
            for mine in per_worker {
                if mine.is_empty() {
                    continue;
                }
                scope.spawn(move || {
                    for (idx, group) in mine {
                        self.apply_group(idx, group);
                    }
                });
            }
        });
    }

    fn partition(&self, batch: Vec<Feedback>) -> Vec<Vec<Feedback>> {
        let mut per_shard: Vec<Vec<Feedback>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for feedback in batch {
            per_shard[self.shard_of(feedback.subject)].push(feedback);
        }
        per_shard
    }

    /// The subject's current epoch (0 = no evidence yet). Wait-free:
    /// one snapshot pin, one probe, one atomic load — never queues
    /// behind the ingest writer.
    pub fn epoch(&self, subject: SubjectId) -> u64 {
        self.epochs[self.shard_of(subject)].get(subject)
    }

    /// Snapshot of every report about `subject`, oldest first.
    pub fn about(&self, subject: SubjectId) -> Vec<Feedback> {
        self.shards[self.shard_of(subject)]
            .read()
            .store
            .about(subject)
            .cloned()
            .collect()
    }

    /// Run `f` against the shard owning `subject` under its read lock —
    /// scoring without copying the log out.
    pub fn with_subject_shard<R>(&self, subject: SubjectId, f: impl FnOnce(&Shard) -> R) -> R {
        f(&self.shards[self.shard_of(subject)].read())
    }

    /// Copy out every report, shard by shard.
    ///
    /// Per-subject order is preserved — a subject lives in exactly one
    /// shard — which is all replay needs: re-inserting the dump into a
    /// fresh store reproduces every per-subject log and epoch exactly.
    /// This is the state a checkpoint snapshots.
    pub fn dump(&self) -> Vec<Feedback> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let shard = shard.read();
            out.extend(shard.store.iter().cloned());
        }
        out
    }

    /// Reports held by shard `idx`.
    pub fn shard_len(&self, idx: usize) -> usize {
        self.shards[idx].read().store.len()
    }

    /// Total reports across all shards, from a relaxed counter bumped as
    /// batches are applied — reading it takes no locks. Monotonic; may
    /// trail an in-flight batch by a few reports.
    pub fn len(&self) -> usize {
        self.total.load(Ordering::Relaxed) as usize
    }

    /// Whether no report has been applied anywhere.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrep_core::id::{AgentId, ServiceId};
    use wsrep_core::mechanism::ReputationMechanism;
    use wsrep_core::mechanisms::beta::BetaMechanism;
    use wsrep_core::time::Time;

    fn fb(rater: u64, service: u64, score: f64) -> Feedback {
        Feedback::scored(
            AgentId::new(rater),
            ServiceId::new(service),
            score,
            Time::ZERO,
        )
    }

    fn beta_fold() -> Option<FoldFactory> {
        Some(Arc::new(|| {
            BetaMechanism::new()
                .accumulator()
                .expect("beta has an incremental fold")
        }))
    }

    #[test]
    fn subject_always_maps_to_the_same_shard() {
        let store = ShardedStore::new(8);
        let s: SubjectId = ServiceId::new(42).into();
        let first = store.shard_of(s);
        for _ in 0..10 {
            assert_eq!(store.shard_of(s), first);
        }
    }

    #[test]
    fn epochs_count_reports_per_subject() {
        let store = ShardedStore::new(4);
        let s: SubjectId = ServiceId::new(1).into();
        assert_eq!(store.epoch(s), 0);
        store.insert(fb(0, 1, 0.9));
        store.insert(fb(1, 1, 0.4));
        store.insert(fb(0, 2, 0.7));
        assert_eq!(store.epoch(s), 2);
        assert_eq!(store.epoch(ServiceId::new(2).into()), 1);
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn batch_equals_sequential_inserts() {
        let batch: Vec<Feedback> = (0..40).map(|i| fb(i, i % 7, 0.5)).collect();
        let batched = ShardedStore::new(4);
        batched.insert_batch(batch.clone());
        let sequential = ShardedStore::new(4);
        for f in batch {
            sequential.insert(f);
        }
        assert_eq!(batched.len(), sequential.len());
        for service in 0..7u64 {
            let s: SubjectId = ServiceId::new(service).into();
            assert_eq!(batched.epoch(s), sequential.epoch(s));
            assert_eq!(batched.about(s), sequential.about(s));
        }
    }

    #[test]
    fn resident_estimates_track_applied_feedback() {
        let store = ShardedStore::with_fold(4, beta_fold());
        assert!(store.is_incremental());
        let s: SubjectId = ServiceId::new(1).into();
        assert_eq!(
            store.with_subject_shard(s, |sh| sh.resident_estimate(s)),
            None
        );
        store.insert(fb(0, 1, 1.0));
        store.insert(fb(1, 1, 1.0));
        let resident = store
            .with_subject_shard(s, |sh| sh.resident_estimate(s))
            .expect("accumulator exists")
            .expect("evidence exists");
        let mut replay = BetaMechanism::new();
        let replayed =
            wsrep_core::mechanism::score_from_log(&mut replay, &store.about(s), s).unwrap();
        assert_eq!(resident, replayed);
    }

    #[test]
    fn replay_mode_has_no_resident_state() {
        let store = ShardedStore::new(4);
        assert!(!store.is_incremental());
        let s: SubjectId = ServiceId::new(1).into();
        store.insert(fb(0, 1, 0.9));
        assert_eq!(
            store.with_subject_shard(s, |sh| sh.resident_estimate(s)),
            None
        );
        assert_eq!(store.epoch(s), 1);
    }

    #[test]
    fn parallel_batch_equals_sequential_batch() {
        let batch: Vec<Feedback> = (0..500)
            .map(|i| fb(i, i % 13, (i % 10) as f64 / 10.0))
            .collect();
        let parallel = ShardedStore::with_fold(8, beta_fold());
        parallel.insert_batch_parallel(batch.clone());
        let sequential = ShardedStore::with_fold(8, beta_fold());
        sequential.insert_batch(batch);
        assert_eq!(parallel.len(), sequential.len());
        for service in 0..13u64 {
            let s: SubjectId = ServiceId::new(service).into();
            assert_eq!(parallel.epoch(s), sequential.epoch(s));
            assert_eq!(parallel.about(s), sequential.about(s));
            assert_eq!(
                parallel.with_subject_shard(s, |sh| sh.resident_estimate(s)),
                sequential.with_subject_shard(s, |sh| sh.resident_estimate(s)),
            );
        }
    }

    #[test]
    fn zero_shards_is_clamped_to_one() {
        let store = ShardedStore::new(0);
        assert_eq!(store.num_shards(), 1);
        store.insert(fb(0, 1, 0.5));
        assert_eq!(store.len(), 1);
    }

    /// Epoch readers racing the writer observe a monotone counter that
    /// never gets ahead of the applied log.
    #[test]
    fn epoch_reads_race_inserts_without_blocking() {
        let store = Arc::new(ShardedStore::new(2));
        let s: SubjectId = ServiceId::new(5).into();
        std::thread::scope(|scope| {
            let reader_store = Arc::clone(&store);
            scope.spawn(move || {
                let mut last = 0;
                for _ in 0..50_000 {
                    let e = reader_store.epoch(s);
                    assert!(e >= last, "epoch went backwards: {e} < {last}");
                    last = e;
                }
            });
            let writer_store = Arc::clone(&store);
            scope.spawn(move || {
                for i in 0..2_000 {
                    writer_store.insert(fb(i, 5, 0.5));
                }
            });
        });
        assert_eq!(store.epoch(s), 2_000);
    }
}
