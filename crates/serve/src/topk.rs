//! Epoch-validated per-category ranking plans for `top_k`.
//!
//! Ranking a category normalizes every candidate's advertised QoS vector
//! Liu–Ngu–Zeng style — metric collection, sort/dedup, and a candidates ×
//! metrics matrix build. None of that depends on the query's preferences,
//! only on the listing table, so it is wasted work to repeat per query:
//! this cache keys the prepared plan by `(category, listings epoch)` and
//! rebuilds only when a publish or deregister moved the epoch. The
//! per-query remainder is a weighted row sum over the prebuilt matrix
//! plus the reputation blend.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wsrep_core::id::{ProviderId, ServiceId};
use wsrep_qos::normalize::NormalizationMatrix;

/// The listings-derived, preference-independent part of a `top_k`
/// answer for one category, valid while the listings epoch stands still.
#[derive(Debug)]
pub struct CategoryPlan {
    /// The listings epoch this plan was built from.
    pub epoch: u64,
    /// The category's candidates in deterministic listing order, matching
    /// the matrix rows.
    pub candidates: Vec<(ServiceId, ProviderId)>,
    /// Normalized advertised-QoS matrix over the candidates.
    pub matrix: NormalizationMatrix,
}

/// Concurrent category → plan map with hit/miss accounting.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: RwLock<HashMap<u32, Arc<CategoryPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached plan for `category` if it was built at exactly `epoch`.
    pub fn get(&self, category: u32, epoch: u64) -> Option<Arc<CategoryPlan>> {
        let hit = self
            .plans
            .read()
            .get(&category)
            .filter(|p| p.epoch == epoch)
            .cloned();
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Remember `plan`, never clobbering a fresher one a racing builder
    /// installed (a higher epoch means it saw more listing changes).
    pub fn insert(&self, category: u32, plan: Arc<CategoryPlan>) -> Arc<CategoryPlan> {
        let mut plans = self.plans.write();
        let slot = plans.entry(category).or_insert_with(|| Arc::clone(&plan));
        if slot.epoch < plan.epoch {
            *slot = Arc::clone(&plan);
        }
        Arc::clone(slot)
    }

    /// Queries answered from a prebuilt plan.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Queries that had to (re)build the plan.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrep_qos::metric::Metric;
    use wsrep_qos::value::QosVector;

    fn plan(epoch: u64) -> Arc<CategoryPlan> {
        let vectors = [QosVector::from_pairs([(Metric::Price, 1.0)])];
        let refs: Vec<&QosVector> = vectors.iter().collect();
        Arc::new(CategoryPlan {
            epoch,
            candidates: vec![(ServiceId::new(1), ProviderId::new(1))],
            matrix: NormalizationMatrix::new(&refs, &[Metric::Price]),
        })
    }

    #[test]
    fn epoch_mismatch_misses_and_rebuild_hits() {
        let cache = PlanCache::new();
        assert!(cache.get(0, 1).is_none());
        cache.insert(0, plan(1));
        assert!(cache.get(0, 1).is_some());
        assert!(cache.get(0, 2).is_none(), "stale epoch must miss");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn stale_insert_does_not_clobber_fresher_plan() {
        let cache = PlanCache::new();
        cache.insert(0, plan(5));
        let kept = cache.insert(0, plan(3));
        assert_eq!(kept.epoch, 5);
        assert!(cache.get(0, 5).is_some());
    }
}
