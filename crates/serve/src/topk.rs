//! Pre-ranked, epoch-validated `top_k` state: category plans, rank
//! lists, and the per-category score epochs that invalidate them.
//!
//! Ranking a category has three cost tiers, and this module caches the
//! top two:
//!
//! 1. **Plan** ([`CategoryPlan`], cached in [`PlanCache`]): the
//!    listings-derived part — candidate set and normalized advertised-QoS
//!    matrix. Depends only on the listing table; invalidated by the
//!    listings epoch (publish/deregister).
//! 2. **Rank list** ([`RankedList`], cached in [`RankCache`]): the fully
//!    scored, fully sorted answer for one `(category, preferences)` pair.
//!    Depends on the plan *and* on every member's reputation, so it is
//!    stamped with both the listings epoch and the category's **score
//!    epoch** — a counter ([`ScoreEpochs`]) the ingest writer bumps when
//!    feedback lands on a category member. A hit serves `top_k` with one
//!    snapshot probe and a `k`-element copy: no scoring, no sort, no
//!    allocation.
//! 3. The miss path recomputes scores over the plan matrix and re-sorts —
//!    the pre-PR-5 behavior, now paid only when listings or member
//!    feedback actually moved.
//!
//! Both caches publish immutable snapshots through [`SnapshotCell`], so
//! the validating reads above are wait-free; writers copy-on-write behind
//! a small mutex.
//!
//! **Never-stale rule.** A rank list's score epoch must be read *before*
//! its scores are computed. If feedback lands mid-build, the list gets
//! stamped with the pre-build epoch while holding possibly-fresher
//! scores; the already-bumped counter then fails validation and forces a
//! harmless rebuild. Reading the epoch *after* scoring would allow the
//! opposite — stale scores stamped fresh and served forever.

use crate::fxhash::{FxHashMap, FxHasher};
use crate::snapshot::SnapshotCell;
use parking_lot::Mutex;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wsrep_core::id::{ProviderId, ServiceId, SubjectId};
use wsrep_core::trust::TrustEstimate;
use wsrep_qos::normalize::NormalizationMatrix;
use wsrep_qos::preference::Preferences;

/// One entry of a `top_k` answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedService {
    /// The ranked service.
    pub service: ServiceId,
    /// Its provider.
    pub provider: ProviderId,
    /// Advertised-QoS score in `[0, 1]` from the normalization matrix.
    pub qos_score: f64,
    /// Reputation evidence, when any feedback exists.
    pub reputation: Option<TrustEstimate>,
    /// The blended ranking score.
    pub score: f64,
}

/// The listings-derived, preference-independent part of a `top_k`
/// answer for one category, valid while the listings epoch stands still.
#[derive(Debug)]
pub struct CategoryPlan {
    /// The listings epoch this plan was built from.
    pub epoch: u64,
    /// The category's candidates in deterministic listing order, matching
    /// the matrix rows.
    pub candidates: Vec<(ServiceId, ProviderId)>,
    /// Normalized advertised-QoS matrix over the candidates.
    pub matrix: NormalizationMatrix,
}

/// Concurrent category → plan map with hit/miss accounting and wait-free
/// reads (snapshot probe; no lock).
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: SnapshotCell<FxHashMap<u32, Arc<CategoryPlan>>>,
    write: Mutex<()>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached plan for `category` if it was built at exactly `epoch`.
    pub fn get(&self, category: u32, epoch: u64) -> Option<Arc<CategoryPlan>> {
        let hit = self
            .plans
            .read(|map| map.get(&category).filter(|p| p.epoch == epoch).cloned());
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Remember `plan` by copy-on-write, never clobbering a fresher one a
    /// racing builder installed (a higher epoch saw more listing changes).
    pub fn insert(&self, category: u32, plan: Arc<CategoryPlan>) -> Arc<CategoryPlan> {
        let _writer = self.write.lock();
        let current = self.plans.load();
        if let Some(existing) = current.get(&category) {
            if existing.epoch >= plan.epoch {
                return Arc::clone(existing);
            }
        }
        let mut next = (*current).clone();
        next.insert(category, Arc::clone(&plan));
        self.plans.store(Arc::new(next));
        plan
    }

    /// Queries answered from a prebuilt plan.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Queries that had to (re)build the plan.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Snapshots published (one per accepted insert).
    pub fn swaps(&self) -> u64 {
        self.plans.swaps()
    }
}

/// Per-category score epochs: counters bumped whenever applied feedback
/// touches a subject listed in the category.
///
/// Membership (subject → its category's counter) is maintained by the
/// publish/deregister path; bumping is done by the ingest writer *after*
/// a batch is applied, so an epoch observer that recomputes is guaranteed
/// to see at least the feedback the epoch counts. Reads are wait-free
/// (snapshot probe + atomic load); only first-seen subjects or categories
/// pay a copy-on-write swap.
#[derive(Debug, Default)]
pub struct ScoreEpochs {
    /// subject → the shared counter of the category it is listed in.
    members: SnapshotCell<FxHashMap<SubjectId, Arc<AtomicU64>>>,
    /// category → its counter (shared with `members` entries).
    counters: SnapshotCell<FxHashMap<u32, Arc<AtomicU64>>>,
    write: Mutex<()>,
}

impl ScoreEpochs {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// The category's current score epoch (0 = no member feedback yet).
    /// Wait-free.
    pub fn get(&self, category: u32) -> u64 {
        self.counters.read(|map| {
            map.get(&category)
                .map(|c| c.load(Ordering::Acquire))
                .unwrap_or(0)
        })
    }

    /// Record that `subject` is listed in `category` (publish path).
    /// Re-publishing into a different category repoints the membership.
    pub fn ensure(&self, subject: SubjectId, category: u32) {
        let _writer = self.write.lock();
        let counter = {
            let existing = self.counters.read(|map| map.get(&category).cloned());
            match existing {
                Some(counter) => counter,
                None => {
                    let counter = Arc::new(AtomicU64::new(0));
                    let mut next = (*self.counters.load()).clone();
                    next.insert(category, Arc::clone(&counter));
                    self.counters.store(Arc::new(next));
                    counter
                }
            }
        };
        let already = self
            .members
            .read(|map| map.get(&subject).is_some_and(|c| Arc::ptr_eq(c, &counter)));
        if already {
            return;
        }
        let mut next = (*self.members.load()).clone();
        next.insert(subject, counter);
        self.members.store(Arc::new(next));
    }

    /// Drop `subject`'s membership (deregister path).
    pub fn forget(&self, subject: SubjectId) {
        let _writer = self.write.lock();
        if self.members.read(|map| !map.contains_key(&subject)) {
            return;
        }
        let mut next = (*self.members.load()).clone();
        next.remove(&subject);
        self.members.store(Arc::new(next));
    }

    /// Count applied feedback about `subject` against its category, if it
    /// is a listed member. Called by the ingest writer *after* the batch
    /// lands in the store (never-stale rule; see module docs).
    pub fn bump(&self, subject: SubjectId) {
        let counter = self.members.read(|map| map.get(&subject).cloned());
        if let Some(counter) = counter {
            counter.fetch_add(1, Ordering::AcqRel);
        }
    }
}

/// A fully scored, fully sorted `top_k` answer for one `(category,
/// preferences)` pair, valid while both stamped epochs stand still.
#[derive(Debug)]
pub struct RankedList {
    /// Listings epoch of the plan the list was ranked over.
    pub listings_epoch: u64,
    /// The category's score epoch, read **before** scoring began.
    pub score_epoch: u64,
    /// The exact preferences the list was ranked under — checked on hit,
    /// so a fingerprint collision degrades to a miss, never a wrong
    /// answer.
    pub prefs: Preferences,
    /// Every candidate, best-first; `top_k(k)` copies the prefix.
    pub ranked: Vec<RankedService>,
}

/// Most `(category, prefs)` rank lists held before the cache resets —
/// a backstop against unbounded preference diversity, not an LRU.
const RANK_CACHE_CAP: usize = 1024;

/// Concurrent `(category, preferences)` → [`RankedList`] map with
/// wait-free validating reads.
#[derive(Debug, Default)]
pub struct RankCache {
    lists: SnapshotCell<FxHashMap<u64, Arc<RankedList>>>,
    write: Mutex<()>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl RankCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cache key: category folded with a fingerprint of the preference
    /// weights. Collisions are tolerated (stored prefs are re-checked);
    /// they only cost a rebuild.
    fn key(category: u32, prefs: &Preferences) -> u64 {
        let mut hasher = FxHasher::default();
        category.hash(&mut hasher);
        for (metric, weight) in prefs.iter() {
            metric.hash(&mut hasher);
            hasher.write_u64(weight.to_bits());
        }
        hasher.finish()
    }

    /// The cached rank list for `(category, prefs)` if it is still valid
    /// at both epochs. Wait-free; counts a hit or miss.
    pub fn get(
        &self,
        category: u32,
        prefs: &Preferences,
        listings_epoch: u64,
        score_epoch: u64,
    ) -> Option<Arc<RankedList>> {
        let key = Self::key(category, prefs);
        let hit = self.lists.read(|map| {
            map.get(&key)
                .filter(|list| {
                    list.listings_epoch == listings_epoch
                        && list.score_epoch == score_epoch
                        && list.prefs == *prefs
                })
                .cloned()
        });
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Remember `list` for `(category, list.prefs)` by copy-on-write.
    /// Never clobbers a strictly fresher entry; sweeps entries whose
    /// listings epoch regressed behind the inserted one and resets the
    /// whole map at the capacity backstop.
    pub fn insert(&self, category: u32, list: Arc<RankedList>) -> Arc<RankedList> {
        let key = Self::key(category, &list.prefs);
        let _writer = self.write.lock();
        let current = self.lists.load();
        if let Some(existing) = current.get(&key) {
            let fresher = (existing.listings_epoch, existing.score_epoch)
                >= (list.listings_epoch, list.score_epoch);
            if fresher && existing.prefs == list.prefs {
                return Arc::clone(existing);
            }
        }
        let mut next = (*current).clone();
        if next.len() >= RANK_CACHE_CAP {
            next.clear();
        }
        next.insert(key, Arc::clone(&list));
        self.lists.store(Arc::new(next));
        list
    }

    /// Queries answered from a pre-ranked list.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Queries that had to score and sort.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Snapshots published (one per accepted insert).
    pub fn swaps(&self) -> u64 {
        self.lists.swaps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrep_qos::metric::Metric;
    use wsrep_qos::value::QosVector;

    fn plan(epoch: u64) -> Arc<CategoryPlan> {
        let vectors = [QosVector::from_pairs([(Metric::Price, 1.0)])];
        let refs: Vec<&QosVector> = vectors.iter().collect();
        Arc::new(CategoryPlan {
            epoch,
            candidates: vec![(ServiceId::new(1), ProviderId::new(1))],
            matrix: NormalizationMatrix::new(&refs, &[Metric::Price]),
        })
    }

    fn ranked(listings_epoch: u64, score_epoch: u64, prefs: Preferences) -> Arc<RankedList> {
        Arc::new(RankedList {
            listings_epoch,
            score_epoch,
            prefs,
            ranked: vec![RankedService {
                service: ServiceId::new(1),
                provider: ProviderId::new(1),
                qos_score: 1.0,
                reputation: None,
                score: 0.75,
            }],
        })
    }

    #[test]
    fn epoch_mismatch_misses_and_rebuild_hits() {
        let cache = PlanCache::new();
        assert!(cache.get(0, 1).is_none());
        cache.insert(0, plan(1));
        assert!(cache.get(0, 1).is_some());
        assert!(cache.get(0, 2).is_none(), "stale epoch must miss");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn stale_insert_does_not_clobber_fresher_plan() {
        let cache = PlanCache::new();
        cache.insert(0, plan(5));
        let kept = cache.insert(0, plan(3));
        assert_eq!(kept.epoch, 5);
        assert!(cache.get(0, 5).is_some());
    }

    #[test]
    fn score_epochs_track_membership_and_bumps() {
        let epochs = ScoreEpochs::new();
        let s: SubjectId = ServiceId::new(1).into();
        assert_eq!(epochs.get(7), 0);
        // Feedback about an unlisted subject counts against nothing.
        epochs.bump(s);
        assert_eq!(epochs.get(7), 0);
        epochs.ensure(s, 7);
        epochs.bump(s);
        epochs.bump(s);
        assert_eq!(epochs.get(7), 2);
        // Re-publishing into another category repoints the membership.
        epochs.ensure(s, 9);
        epochs.bump(s);
        assert_eq!(epochs.get(7), 2);
        assert_eq!(epochs.get(9), 1);
        epochs.forget(s);
        epochs.bump(s);
        assert_eq!(epochs.get(9), 1);
    }

    #[test]
    fn rank_cache_validates_both_epochs_and_prefs() {
        let cache = RankCache::new();
        let prefs = Preferences::uniform([Metric::Price]);
        assert!(cache.get(0, &prefs, 1, 1).is_none());
        cache.insert(0, ranked(1, 1, prefs.clone()));
        assert!(cache.get(0, &prefs, 1, 1).is_some());
        assert!(cache.get(0, &prefs, 2, 1).is_none(), "listings moved");
        assert!(
            cache.get(0, &prefs, 1, 2).is_none(),
            "member feedback landed"
        );
        let other = Preferences::uniform([Metric::Accuracy]);
        assert!(cache.get(0, &other, 1, 1).is_none(), "different prefs");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 4);
    }

    #[test]
    fn rank_cache_is_per_category() {
        let cache = RankCache::new();
        let prefs = Preferences::uniform([Metric::Price]);
        cache.insert(3, ranked(1, 0, prefs.clone()));
        assert!(cache.get(3, &prefs, 1, 0).is_some());
        assert!(cache.get(4, &prefs, 1, 0).is_none());
    }

    #[test]
    fn stale_rank_insert_does_not_clobber_fresher_list() {
        let cache = RankCache::new();
        let prefs = Preferences::uniform([Metric::Price]);
        cache.insert(0, ranked(5, 9, prefs.clone()));
        let kept = cache.insert(0, ranked(5, 3, prefs.clone()));
        assert_eq!(kept.score_epoch, 9);
        assert!(cache.get(0, &prefs, 5, 9).is_some());
    }

    #[test]
    fn rank_cache_capacity_backstop_resets() {
        let cache = RankCache::new();
        for category in 0..(RANK_CACHE_CAP as u32 + 10) {
            let prefs = Preferences::uniform([Metric::Price]);
            cache.insert(category, ranked(1, 0, prefs));
        }
        // Still serving the most recent insert after the reset.
        let prefs = Preferences::uniform([Metric::Price]);
        assert!(cache.get(RANK_CACHE_CAP as u32 + 9, &prefs, 1, 0).is_some());
    }
}
