//! Atomic snapshot cells: the wait-free building block of the read path.
//!
//! A [`SnapshotCell<T>`] holds one immutable snapshot behind an atomic
//! pointer. Readers *pin* the cell (one wait-free `fetch_add`), dereference
//! the current snapshot, and unpin — they never take a lock and never wait
//! on a writer, no matter how many writers are swapping. Writers publish a
//! *new* snapshot with a single atomic swap and retire the old one; a
//! retired snapshot is freed only once no reader is pinned, so a reader can
//! never observe a torn or reclaimed value.
//!
//! This is classic RCU (read-copy-update) shrunk to the one shape the
//! registry needs: read-mostly maps that change by whole-value replacement.
//! The memory-ordering argument is spelled out on [`SnapshotCell::store`];
//! every atomic here is `SeqCst` because the safety proof needs the
//! store-buffer interleaving (reader misses the swap *and* writer misses
//! the pin) to be impossible, which acquire/release alone does not forbid.
//!
//! Cost model: a read is two uncontended `fetch_add`s and one load — a
//! handful of nanoseconds, unchanged by concurrent writers. A write is an
//! `Arc` allocation plus a swap; writers pay for copying the snapshot
//! (copy-on-write at the caller), which is the price of never making
//! readers wait.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

/// A single atomically swappable snapshot slot with wait-free reads.
///
/// Writers must serialize *logically* (last swap wins; use an external
/// mutex for read-modify-write sequences), but any interleaving of
/// `store` calls is memory-safe.
pub struct SnapshotCell<T> {
    /// `Arc::into_raw` of the current snapshot. Never null.
    current: AtomicPtr<T>,
    /// Readers currently inside their pin window.
    pinned: AtomicU64,
    /// Snapshots swapped out but possibly still referenced by a pinned
    /// reader. Drained opportunistically by writers once `pinned == 0`.
    retired: Mutex<Vec<*mut T>>,
    /// Lifetime total of snapshots published by [`SnapshotCell::store`].
    swaps: AtomicU64,
}

// SAFETY: the raw pointers in `current` and `retired` are all
// `Arc::into_raw` results whose strong count this cell owns; they are
// only dereferenced while provably alive (see `store` for the proof) and
// only freed once unreachable. `T: Send + Sync` makes sharing the
// underlying values across threads sound.
unsafe impl<T: Send + Sync> Send for SnapshotCell<T> {}
unsafe impl<T: Send + Sync> Sync for SnapshotCell<T> {}

impl<T> SnapshotCell<T> {
    /// A cell initially holding `snapshot`.
    pub fn new(snapshot: Arc<T>) -> Self {
        SnapshotCell {
            current: AtomicPtr::new(Arc::into_raw(snapshot) as *mut T),
            pinned: AtomicU64::new(0),
            retired: Mutex::new(Vec::new()),
            swaps: AtomicU64::new(0),
        }
    }

    /// Run `f` against the current snapshot without cloning it.
    ///
    /// Wait-free: pin (one `fetch_add`), load, call, unpin. Keep `f`
    /// short — while any reader is pinned, retired snapshots cannot be
    /// reclaimed (they are freed by a later `store` or by drop).
    pub fn read<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let _pin = PinGuard::enter(&self.pinned);
        let ptr = self.current.load(Ordering::SeqCst);
        // SAFETY: `ptr` came out of `current` inside the pin window, so
        // per the reclamation protocol (see `store`) its Arc is alive:
        // either it is still the current snapshot (the cell holds a
        // strong count) or it sits unreclaimed on the retired list.
        f(unsafe { &*ptr })
    }

    /// Clone out an owning handle to the current snapshot.
    pub fn load(&self) -> Arc<T> {
        self.read(|value| {
            let ptr = value as *const T;
            // SAFETY: `ptr` is the `Arc::into_raw` pointer of a live Arc
            // (pinned, see `read`); bumping its strong count and
            // rebuilding an Arc hands out a second owner.
            unsafe {
                Arc::increment_strong_count(ptr);
                Arc::from_raw(ptr)
            }
        })
    }

    /// Publish `snapshot` as the new current value.
    ///
    /// The old snapshot is retired, and retired snapshots are freed only
    /// when no reader is pinned. Safety of that check: all four operations
    /// involved — the reader's pin `fetch_add` and `current` load, the
    /// writer's `swap` and `pinned` load — are `SeqCst`, so they have one
    /// total order `S`. If a reader's pin precedes the writer's `pinned`
    /// load in `S`, the writer observes `pinned > 0` and frees nothing.
    /// Otherwise the writer's swap (program-order before its `pinned`
    /// load) also precedes the reader's `current` load in `S`, so the
    /// reader sees the *new* pointer and never touches the retired one.
    /// Either way no pinned reader can hold a pointer this call frees.
    pub fn store(&self, snapshot: Arc<T>) {
        let fresh = Arc::into_raw(snapshot) as *mut T;
        let old = self.current.swap(fresh, Ordering::SeqCst);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        let mut retired = self.retired.lock();
        retired.push(old);
        if self.pinned.load(Ordering::SeqCst) == 0 {
            for ptr in retired.drain(..) {
                // SAFETY: `ptr` was removed from `current` (by some
                // swap), is no longer reachable by new readers, and the
                // SeqCst argument above rules out a pinned reader still
                // holding it. Reclaiming the strong count we own.
                unsafe { drop(Arc::from_raw(ptr)) };
            }
        }
    }

    /// How many snapshots have ever been published (swapped in).
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }
}

impl<T> Drop for SnapshotCell<T> {
    fn drop(&mut self) {
        // `&mut self`: no reader can be pinned, every pointer is ours.
        let current = *self.current.get_mut();
        // SAFETY: reclaiming the strong counts owned by the cell.
        unsafe { drop(Arc::from_raw(current)) };
        for ptr in self.retired.get_mut().drain(..) {
            unsafe { drop(Arc::from_raw(ptr)) };
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SnapshotCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.read(|value| {
            f.debug_struct("SnapshotCell")
                .field("current", value)
                .field("swaps", &self.swaps())
                .finish()
        })
    }
}

impl<T: Default> Default for SnapshotCell<T> {
    fn default() -> Self {
        SnapshotCell::new(Arc::new(T::default()))
    }
}

/// Unpins on drop, so a panicking reader closure cannot wedge
/// reclamation forever.
struct PinGuard<'a> {
    pinned: &'a AtomicU64,
}

impl<'a> PinGuard<'a> {
    fn enter(pinned: &'a AtomicU64) -> Self {
        pinned.fetch_add(1, Ordering::SeqCst);
        PinGuard { pinned }
    }
}

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        self.pinned.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn read_sees_the_latest_store() {
        let cell = SnapshotCell::new(Arc::new(1u64));
        assert_eq!(cell.read(|v| *v), 1);
        cell.store(Arc::new(2));
        assert_eq!(cell.read(|v| *v), 2);
        assert_eq!(*cell.load(), 2);
        assert_eq!(cell.swaps(), 1);
    }

    /// Every snapshot allocated is dropped exactly once, whether it was
    /// retired mid-run or still current at the end.
    #[test]
    fn no_snapshot_leaks_or_double_frees() {
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        struct Counted(#[allow(dead_code)] u64);
        impl Counted {
            fn new(v: u64) -> Self {
                LIVE.fetch_add(1, Ordering::SeqCst);
                Counted(v)
            }
        }
        impl Drop for Counted {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Ordering::SeqCst);
            }
        }
        {
            let cell = SnapshotCell::new(Arc::new(Counted::new(0)));
            for i in 1..100 {
                cell.store(Arc::new(Counted::new(i)));
            }
            let held = cell.load();
            cell.store(Arc::new(Counted::new(1000)));
            drop(held);
        }
        assert_eq!(LIVE.load(Ordering::SeqCst), 0);
    }

    /// Readers racing a writer always observe an internally consistent
    /// snapshot (never a torn pair) and eventually the newest one.
    #[test]
    fn concurrent_readers_see_consistent_snapshots() {
        let cell = Arc::new(SnapshotCell::new(Arc::new((0u64, 0u64))));
        const ROUNDS: u64 = 20_000;
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let cell = Arc::clone(&cell);
                scope.spawn(move || {
                    let mut last = 0;
                    for _ in 0..ROUNDS {
                        let (a, b) = cell.read(|&pair| pair);
                        assert_eq!(a, b, "snapshot must never be torn");
                        assert!(a >= last, "snapshots must move forward");
                        last = a;
                    }
                });
            }
            let writer = Arc::clone(&cell);
            scope.spawn(move || {
                for i in 1..=ROUNDS / 4 {
                    writer.store(Arc::new((i, i)));
                }
            });
        });
        let (a, b) = cell.read(|&pair| pair);
        assert_eq!(a, ROUNDS / 4);
        assert_eq!(b, ROUNDS / 4);
    }

    /// `load` hands out an owner that stays valid after further swaps.
    #[test]
    fn loaded_arc_survives_later_stores() {
        let cell = SnapshotCell::new(Arc::new(vec![1, 2, 3]));
        let held = cell.load();
        for i in 0..50 {
            cell.store(Arc::new(vec![i]));
        }
        assert_eq!(*held, vec![1, 2, 3]);
    }
}
