//! # wsrep-serve — the reputation registry as a concurrent service
//!
//! The paper's Figure 2 places one central QoS registry between providers
//! and consumers. The simulation crates model that registry single-
//! threaded; this crate is the same registry grown into a production-shaped
//! subsystem:
//!
//! - [`snapshot`] — the RCU-style [`SnapshotCell`](snapshot::SnapshotCell)
//!   every read-path cache publishes through: readers pin + probe
//!   (wait-free), writers swap whole immutable snapshots;
//! - [`fxhash`] — the multiply-xor hasher the hot maps key with;
//! - [`shard`] — the feedback log split over independently locked shards,
//!   with wait-free per-subject epoch counters;
//! - [`ingest`] — bounded channels + one writer thread per **writer
//!   group** (subjects route by shard, groups own disjoint shard sets),
//!   applying feedback in per-shard batches and bumping category score
//!   epochs;
//! - [`cache`] — epoch-validated score memoization over snapshot-swapped
//!   shards, so a hot subject costs one atomic probe instead of a log
//!   replay;
//! - [`topk`] — per-category ranking plans *and* fully pre-ranked result
//!   lists, validated against the listings epoch and per-category score
//!   epochs, so a repeat `top_k` is a probe plus a `k`-element copy;
//! - [`service`] — the query API: `publish` / `ingest` / `score` /
//!   `top_k`, speaking the same [`Listing`](wsrep_sim::registry::Listing)
//!   and [`Preferences`](wsrep_qos::preference::Preferences) types as the
//!   simulator, and scoring through any
//!   [`ReputationMechanism`](wsrep_core::mechanism::ReputationMechanism);
//! - [`durability`] — the optional [`wsrep_journal`] integration: batches
//!   are group-committed to a write-ahead log before they are applied —
//!   with `ServiceBuilder::writer_groups(n)`, to `n` partitioned logs
//!   with independent fsync pipelines under a shared LSN space —
//!   `ServiceBuilder::recover_from` replays snapshot + WAL tail(s) on
//!   boot, and a background checkpointer snapshots and compacts the log.

pub mod cache;
pub mod durability;
pub mod fxhash;
pub mod ingest;
pub mod service;
pub mod shard;
pub mod snapshot;
pub mod topk;

pub use cache::ScoreCache;
pub use durability::{DurabilityPolicy, JournalHealth, NotDurable};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHasher};
pub use ingest::{IngestClosed, IngestConfig, IngestPipeline};
pub use service::{
    CheckpointReport, MechanismFactory, ReplicateError, ReputationService, ServiceBuilder,
    ServiceStats,
};
pub use shard::{EpochMap, FoldFactory, ShardedStore};
pub use snapshot::SnapshotCell;
pub use topk::{CategoryPlan, PlanCache, RankCache, RankedList, RankedService, ScoreEpochs};
