//! # wsrep-serve — the reputation registry as a concurrent service
//!
//! The paper's Figure 2 places one central QoS registry between providers
//! and consumers. The simulation crates model that registry single-
//! threaded; this crate is the same registry grown into a production-shaped
//! subsystem:
//!
//! - [`shard`] — the feedback log split over independently locked shards,
//!   each tracking per-subject epochs;
//! - [`ingest`] — a bounded channel + writer thread applying feedback in
//!   per-shard batches;
//! - [`cache`] — epoch-validated score memoization, so a hot subject costs
//!   a map lookup instead of a log replay;
//! - [`topk`] — per-category ranking plans (candidates + normalization
//!   matrix) cached against the listings epoch, so `top_k` only rebuilds
//!   after a publish or deregister;
//! - [`service`] — the query API: `publish` / `ingest` / `score` /
//!   `top_k`, speaking the same [`Listing`](wsrep_sim::registry::Listing)
//!   and [`Preferences`](wsrep_qos::preference::Preferences) types as the
//!   simulator, and scoring through any
//!   [`ReputationMechanism`](wsrep_core::mechanism::ReputationMechanism);
//! - [`durability`] — the optional [`wsrep_journal`] integration: batches
//!   are group-committed to a write-ahead log before they are applied,
//!   `ServiceBuilder::recover_from` replays snapshot + WAL tail on boot,
//!   and a background checkpointer snapshots and compacts the log.

pub mod cache;
pub mod durability;
pub mod ingest;
pub mod service;
pub mod shard;
pub mod topk;

pub use cache::ScoreCache;
pub use durability::JournalHealth;
pub use ingest::{IngestClosed, IngestConfig, IngestPipeline};
pub use service::{
    CheckpointReport, MechanismFactory, RankedService, ReputationService, ServiceBuilder,
    ServiceStats,
};
pub use shard::{FoldFactory, ShardedStore};
pub use topk::{CategoryPlan, PlanCache};
