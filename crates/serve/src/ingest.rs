//! Batched feedback ingestion.
//!
//! Producers push reports into bounded channels (backpressure: a full
//! channel blocks the producer instead of growing without bound) and
//! writer threads drain them — one writer per **writer group**. A report
//! is routed by its subject's shard (`shard_of(subject) % groups`), so a
//! subject's reports always flow through the same writer in submission
//! order, and groups own disjoint shard sets (no two writers contend on
//! a shard lock). With one group this collapses to the classic single
//! writer. Each writer greedily gathers up to `batch_size` queued
//! reports per wake-up and applies them through
//! [`ShardedStore::insert_batch`], so a burst of B reports costs one
//! lock acquisition per touched shard instead of one per report.
//!
//! When a journal is attached, each writer **group-commits its batch to
//! its own group's WAL before applying it**: one buffered write and one
//! fsync cover the whole batch — N writers mean N independent fsync
//! pipelines instead of one commit lock — and only after the apply does
//! the shared progress counter move. [`IngestPipeline::flush`] therefore
//! doubles as a durability barrier — when it returns, everything
//! submitted so far is both queryable and on stable storage, across
//! every group.
//!
//! [`IngestPipeline::flush`] gives tests and benchmarks a consistency
//! point: it blocks until everything submitted *so far by this handle*
//! has been applied to the store.

use crate::durability::JournalHandle;
use crate::shard::ShardedStore;
use crate::topk::ScoreEpochs;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use wsrep_core::feedback::Feedback;
use wsrep_journal::JournalRecord;

/// Ingestion tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestConfig {
    /// Bounded channel capacity per writer group; a full channel blocks
    /// producers.
    pub channel_capacity: usize,
    /// Most reports applied per writer wake-up.
    pub batch_size: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            channel_capacity: 1024,
            batch_size: 64,
        }
    }
}

/// Submitting failed because the pipeline already shut down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestClosed;

impl fmt::Display for IngestClosed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ingest pipeline is closed")
    }
}

impl std::error::Error for IngestClosed {}

/// Applied-report counter the writers bump and `flush` waits on.
#[derive(Debug, Default)]
struct Progress {
    applied: Mutex<u64>,
    moved: Condvar,
}

impl Progress {
    fn add(&self, n: u64) {
        let mut applied = self.applied.lock().unwrap_or_else(|e| e.into_inner());
        *applied += n;
        self.moved.notify_all();
    }

    fn wait_until(&self, target: u64) {
        let mut applied = self.applied.lock().unwrap_or_else(|e| e.into_inner());
        while *applied < target {
            applied = self.moved.wait(applied).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn current(&self) -> u64 {
        *self.applied.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The channels + writer threads feeding a [`ShardedStore`], one
/// channel/writer pair per writer group.
pub struct IngestPipeline {
    store: Arc<ShardedStore>,
    senders: Vec<Sender<Feedback>>,
    writers: Vec<JoinHandle<()>>,
    submitted: AtomicU64,
    progress: Arc<Progress>,
}

impl fmt::Debug for IngestPipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IngestPipeline")
            .field("writer_groups", &self.writers.len())
            .field("submitted", &self.submitted)
            .finish_non_exhaustive()
    }
}

impl IngestPipeline {
    /// Start a single writer thread draining into `store`.
    pub fn start(store: Arc<ShardedStore>, config: IngestConfig) -> Self {
        Self::start_with_journal(store, config, None, None, 1)
    }

    /// Start `writer_groups` writer threads, each journaling its batches
    /// to its own writer group before applying them when a journal
    /// handle is attached, and bumping per-category score epochs after
    /// each apply when a [`ScoreEpochs`] map is attached. A journaled
    /// pipeline's group count must match the handle's.
    pub(crate) fn start_with_journal(
        store: Arc<ShardedStore>,
        config: IngestConfig,
        journal: Option<Arc<JournalHandle>>,
        score_epochs: Option<Arc<ScoreEpochs>>,
        writer_groups: usize,
    ) -> Self {
        let groups = writer_groups.max(1);
        if let Some(handle) = &journal {
            debug_assert_eq!(
                groups,
                handle.writer_groups(),
                "pipeline fan-out must match the journal's writer groups"
            );
        }
        let progress = Arc::new(Progress::default());
        let batch_size = config.batch_size.max(1);
        let mut senders = Vec::with_capacity(groups);
        let mut writers = Vec::with_capacity(groups);
        for group in 0..groups {
            let (sender, receiver) = bounded::<Feedback>(config.channel_capacity);
            let store = Arc::clone(&store);
            let progress = Arc::clone(&progress);
            let journal = journal.clone();
            let score_epochs = score_epochs.clone();
            let writer = std::thread::Builder::new()
                .name(format!("wsrep-ingest-{group}"))
                .spawn(move || {
                    drain(
                        &store,
                        &receiver,
                        batch_size,
                        &progress,
                        journal.as_deref(),
                        score_epochs.as_deref(),
                        group,
                    );
                })
                .expect("spawn ingest writer");
            senders.push(sender);
            writers.push(writer);
        }
        IngestPipeline {
            store,
            senders,
            writers,
            submitted: AtomicU64::new(0),
            progress,
        }
    }

    /// The writer group owning `feedback`'s subject.
    fn group_of(&self, feedback: &Feedback) -> usize {
        self.store.shard_of(feedback.subject) % self.senders.len()
    }

    /// Enqueue one report, blocking while its group's channel is full.
    pub fn submit(&self, feedback: Feedback) -> Result<(), IngestClosed> {
        if self.senders.is_empty() {
            return Err(IngestClosed);
        }
        let group = self.group_of(&feedback);
        self.senders[group]
            .send(feedback)
            .map_err(|_| IngestClosed)?;
        self.submitted.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    /// Enqueue a whole batch, blocking while channels are full.
    ///
    /// Semantically identical to calling [`IngestPipeline::submit`] in a
    /// loop, but the `submitted` counter moves once — a `flush` racing a
    /// batch waits either for none of it or for everything enqueued so
    /// far, never for a torn count. Returns the number of reports
    /// accepted; on a closed pipeline mid-batch, the already-sent prefix
    /// stays accepted and the error reports how many made it.
    pub fn submit_batch(
        &self,
        batch: impl IntoIterator<Item = Feedback>,
    ) -> Result<u64, IngestClosed> {
        if self.senders.is_empty() {
            return Err(IngestClosed);
        }
        let mut accepted = 0u64;
        for feedback in batch {
            let group = self.group_of(&feedback);
            if self.senders[group].send(feedback).is_err() {
                self.submitted.fetch_add(accepted, Ordering::SeqCst);
                return Err(IngestClosed);
            }
            accepted += 1;
        }
        self.submitted.fetch_add(accepted, Ordering::SeqCst);
        Ok(accepted)
    }

    /// Reports accepted by [`IngestPipeline::submit`] so far.
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::SeqCst)
    }

    /// Reports the writers have applied to the store so far.
    pub fn applied(&self) -> u64 {
        self.progress.current()
    }

    /// Reports queued but not yet applied, across all groups.
    pub fn backlog(&self) -> usize {
        self.senders.iter().map(|s| s.len()).sum()
    }

    /// Block until everything submitted before this call is applied.
    ///
    /// With a journal attached this is also a **durability barrier**:
    /// every writer fsyncs each batch before applying it and applies it
    /// before advancing the counter this waits on, so on return every
    /// prior submission is on stable storage.
    pub fn flush(&self) {
        self.progress.wait_until(self.submitted());
    }
}

impl Drop for IngestPipeline {
    fn drop(&mut self) {
        // Disconnect every channel; each writer drains what is queued,
        // then exits, and we wait for all so no report is lost on
        // shutdown.
        self.senders.clear();
        for writer in self.writers.drain(..) {
            let _ = writer.join();
        }
    }
}

fn drain(
    store: &ShardedStore,
    receiver: &Receiver<Feedback>,
    batch_size: usize,
    progress: &Progress,
    journal: Option<&JournalHandle>,
    score_epochs: Option<&ScoreEpochs>,
    group: usize,
) {
    // Blocking recv for the first report of a batch, then opportunistic
    // try_recv to gather whatever else is already queued.
    while let Ok(first) = receiver.recv() {
        let mut batch = Vec::with_capacity(batch_size);
        batch.push(first);
        while batch.len() < batch_size {
            match receiver.try_recv() {
                Ok(feedback) => batch.push(feedback),
                Err(_) => break,
            }
        }
        let applied = batch.len() as u64;
        let subjects: Vec<_> = match score_epochs {
            Some(_) => batch.iter().map(|f| f.subject).collect(),
            None => Vec::new(),
        };
        let accepted = match journal {
            Some(handle) => {
                // Journal first (one write + one fsync for the whole
                // batch, on this group's log), apply second, both under
                // this group's commit lock. A fenced handle rejects the
                // batch: it is dropped here, unapplied — the fence is
                // observable before `progress` moves, so a flusher that
                // checks `fenced` after flushing cannot miss it.
                let records: Vec<JournalRecord> =
                    batch.iter().cloned().map(JournalRecord::Feedback).collect();
                handle
                    .commit(group, &records, || store.insert_batch(batch))
                    .is_ok()
            }
            None => {
                store.insert_batch(batch);
                true
            }
        };
        // Bump category score epochs only after the batch is in the
        // store: an epoch observer that rebuilds is then guaranteed to
        // see at least the feedback the epoch counts (never-stale rule),
        // and it happens before `progress` moves so `flush()` callers
        // always see their own invalidations.
        if accepted {
            if let Some(epochs) = score_epochs {
                for subject in subjects {
                    epochs.bump(subject);
                }
            }
        }
        // Progress advances even for rejected batches so `flush()` never
        // hangs on a fenced pipeline; the caller learns of the rejection
        // from the fence flag, not from a stuck barrier.
        progress.add(applied);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrep_core::id::{AgentId, ServiceId, SubjectId};
    use wsrep_core::time::Time;

    fn fb(rater: u64, service: u64) -> Feedback {
        Feedback::scored(
            AgentId::new(rater),
            ServiceId::new(service),
            0.5,
            Time::ZERO,
        )
    }

    #[test]
    fn flush_observes_every_submitted_report() {
        let store = Arc::new(ShardedStore::new(4));
        let pipeline = IngestPipeline::start(Arc::clone(&store), IngestConfig::default());
        for i in 0..500 {
            pipeline.submit(fb(i, i % 11)).unwrap();
        }
        pipeline.flush();
        assert_eq!(store.len(), 500);
        assert_eq!(pipeline.applied(), 500);
    }

    #[test]
    fn drop_drains_the_queue() {
        let store = Arc::new(ShardedStore::new(2));
        {
            let pipeline = IngestPipeline::start(Arc::clone(&store), IngestConfig::default());
            for i in 0..100 {
                pipeline.submit(fb(i, 3)).unwrap();
            }
        } // drop: disconnect + join
        assert_eq!(store.len(), 100);
        let subject: SubjectId = ServiceId::new(3).into();
        assert_eq!(store.epoch(subject), 100);
    }

    #[test]
    fn submit_batch_counts_and_flushes_like_individual_submits() {
        let store = Arc::new(ShardedStore::new(4));
        let pipeline = IngestPipeline::start(Arc::clone(&store), IngestConfig::default());
        let accepted = pipeline
            .submit_batch((0..300).map(|i| fb(i, i % 7)))
            .unwrap();
        assert_eq!(accepted, 300);
        assert_eq!(pipeline.submitted(), 300);
        pipeline.flush();
        assert_eq!(store.len(), 300);
    }

    #[test]
    fn tiny_channel_applies_backpressure_without_loss() {
        let store = Arc::new(ShardedStore::new(2));
        let config = IngestConfig {
            channel_capacity: 2,
            batch_size: 4,
        };
        let pipeline = IngestPipeline::start(Arc::clone(&store), config);
        for i in 0..200 {
            pipeline.submit(fb(i, i % 3)).unwrap();
        }
        pipeline.flush();
        assert_eq!(store.len(), 200);
    }

    #[test]
    fn multiple_writer_groups_preserve_per_subject_order() {
        let store = Arc::new(ShardedStore::new(8));
        let pipeline = IngestPipeline::start_with_journal(
            Arc::clone(&store),
            IngestConfig::default(),
            None,
            None,
            4,
        );
        // Interleave subjects; each subject's reports must stay in
        // submission order even though four writers apply them.
        for round in 0..200u64 {
            for service in 0..12u64 {
                pipeline
                    .submit(Feedback::scored(
                        AgentId::new(round),
                        ServiceId::new(service),
                        0.5,
                        Time::new(round),
                    ))
                    .unwrap();
            }
        }
        pipeline.flush();
        assert_eq!(store.len(), 200 * 12);
        for service in 0..12u64 {
            let subject: SubjectId = ServiceId::new(service).into();
            assert_eq!(store.epoch(subject), 200);
            let times: Vec<u64> = store.about(subject).iter().map(|f| f.at.round()).collect();
            let sorted = {
                let mut s = times.clone();
                s.sort_unstable();
                s
            };
            assert_eq!(times, sorted, "subject {service} order preserved");
        }
    }
}
