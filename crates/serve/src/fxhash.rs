//! A word-at-a-time multiply-xor hasher for the registry's hot maps.
//!
//! The read path probes two or three hash maps per query; the standard
//! library's SipHash costs more than the rest of the probe combined for
//! the 8–16 byte keys used here (`SubjectId`, `ServiceId`, category ids).
//! This is the Firefox/rustc "Fx" construction — `h = (h <<< 5 ^ word) ·
//! K` per word — which is not DoS-resistant but is 5–10× cheaper and
//! mixes well for the dense numeric ids this crate hashes. Nothing
//! outside the serve crate's internal maps uses it, so there is no
//! attacker-controlled key material to worry about: subjects and
//! categories come out of the registry's own id space.

use std::hash::{BuildHasherDefault, Hash, Hasher};

/// Multiplicative constant (the golden-ratio based one used by rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `std::collections::HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// The streaming state: one u64 folded word by word.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// One-shot hash of any `Hash` value — the shard routers use this.
#[inline]
pub fn hash_one<T: Hash>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrep_core::id::{ServiceId, SubjectId};

    #[test]
    fn equal_keys_hash_equal_and_shards_spread() {
        let a: SubjectId = ServiceId::new(7).into();
        let b: SubjectId = ServiceId::new(7).into();
        assert_eq!(hash_one(&a), hash_one(&b));

        // Dense ids must not all collapse into one shard of a
        // power-of-two split.
        let mut seen = std::collections::HashSet::new();
        for raw in 0..64u64 {
            let s: SubjectId = ServiceId::new(raw).into();
            seen.insert(hash_one(&s) % 16);
        }
        assert!(
            seen.len() >= 8,
            "64 dense ids landed in {} shards",
            seen.len()
        );
    }

    #[test]
    fn fx_map_behaves_like_a_map() {
        let mut map: FxHashMap<SubjectId, u64> = FxHashMap::default();
        for raw in 0..100u64 {
            map.insert(ServiceId::new(raw).into(), raw);
        }
        assert_eq!(map.len(), 100);
        assert_eq!(map.get(&ServiceId::new(42).into()), Some(&42));
    }
}
