//! The serve-side durability seam: commit locks around the journal.
//!
//! Everything that must be journaled — ingested feedback batches, listing
//! publishes and deregistrations — goes through [`JournalHandle`], which
//! pairs each append with the in-memory apply **while a commit lock is
//! held**. With one writer group that is the classic single mutex around
//! the [`Journal`]; with several ([`GroupSet`]), each group has its own
//! commit lock and fsyncs independently, and a shared allocator hands
//! out LSNs so cross-group order is defined. Either way the invariant
//! that makes checkpoints consistent holds: a checkpointer holding *all*
//! commit locks observes an `(LSN, state)` pair where the state is
//! exactly the effect of the first `LSN` journal records — no
//! applied-but-unjournaled record, no journaled-but-unapplied one.
//!
//! Listing mutations (publish/deregister) always commit through **group
//! 0**, so they keep a total order among themselves regardless of how
//! many feedback writers run.
//!
//! # Failure policy
//!
//! What journal I/O failure (disk full, volume gone, injected fault)
//! means is configurable per service via [`DurabilityPolicy`]:
//!
//! - [`DurabilityPolicy::Degrade`] (the default) keeps serving: the
//!   in-memory apply still happens and the handle stops journaling, so
//!   availability survives at the cost of durability. The log keeps a
//!   clean prefix — no interior gaps — and every failure is counted in
//!   [`JournalHealth::journal_errors`] with `degraded` latched true.
//! - [`DurabilityPolicy::ReadOnly`] fences writes: the failing batch is
//!   **rejected, not applied**, and every later mutation refuses with
//!   [`NotDurable`] while reads keep serving the last durable state.
//! - [`DurabilityPolicy::FailStop`] fences exactly like `ReadOnly` and
//!   additionally reports the node as fail-stopped, so a host process
//!   can exit rather than keep a lying registry reachable.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use wsrep_journal::faults::{Fault, IoOp, IoPolicy};
use wsrep_journal::{CompactReport, GroupSet, Journal, JournalRecord, JournalStats};

/// How the service responds to a journal I/O failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityPolicy {
    /// Keep serving and applying writes without the journal; durability
    /// is lost from the first failure on, visibly (`degraded`,
    /// `journal_errors`).
    #[default]
    Degrade,
    /// Fence writes after the first failure: reject every further
    /// mutation with [`NotDurable`], keep serving reads.
    ReadOnly,
    /// Fence writes and report fail-stop, so the host process can exit
    /// instead of serving at all.
    FailStop,
}

impl DurabilityPolicy {
    /// Stable wire encoding (shipped inside `WireStats`).
    pub fn as_u8(self) -> u8 {
        match self {
            DurabilityPolicy::Degrade => 0,
            DurabilityPolicy::ReadOnly => 1,
            DurabilityPolicy::FailStop => 2,
        }
    }

    /// Inverse of [`DurabilityPolicy::as_u8`].
    pub fn from_u8(value: u8) -> Option<DurabilityPolicy> {
        match value {
            0 => Some(DurabilityPolicy::Degrade),
            1 => Some(DurabilityPolicy::ReadOnly),
            2 => Some(DurabilityPolicy::FailStop),
            _ => None,
        }
    }

    /// Parse the operator-facing spelling (`degrade` / `read-only` /
    /// `fail-stop`), for CLI flags.
    pub fn parse(name: &str) -> Option<DurabilityPolicy> {
        match name {
            "degrade" => Some(DurabilityPolicy::Degrade),
            "read-only" | "readonly" => Some(DurabilityPolicy::ReadOnly),
            "fail-stop" | "failstop" => Some(DurabilityPolicy::FailStop),
            _ => None,
        }
    }

    /// The operator-facing spelling.
    pub fn name(self) -> &'static str {
        match self {
            DurabilityPolicy::Degrade => "degrade",
            DurabilityPolicy::ReadOnly => "read-only",
            DurabilityPolicy::FailStop => "fail-stop",
        }
    }
}

impl fmt::Display for DurabilityPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A mutation was rejected because the durability policy fenced writes
/// after a journal failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotDurable;

impl fmt::Display for NotDurable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "journal failed; durability policy fenced writes")
    }
}

impl std::error::Error for NotDurable {}

/// Journal health counters, surfaced through
/// [`ServiceStats`](crate::service::ServiceStats).
///
/// Like `ServiceStats`, multi-writer counters are **monotone but not a
/// consistent cut**: each writer group is sampled under its own commit
/// lock, so `commits` (summed across groups) and `durable_lsn` may
/// disagree by in-flight batches. `last_fsync_nanos` is the slowest
/// group's most recent fsync — the number an operator watching commit
/// latency cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalHealth {
    /// WAL segment files currently on disk, summed across writer groups.
    pub segments: u64,
    /// Bytes appended since the service started, summed across groups.
    pub bytes_appended: u64,
    /// Wall time of the most recent group-commit fsync; with several
    /// writer groups, the slowest group's most recent fsync.
    pub last_fsync_nanos: u64,
    /// Group commits (fsyncs) issued since the service started, summed
    /// across writer groups.
    pub commits: u64,
    /// The contiguous durable frontier — the watermark replication and
    /// staleness are measured in. With one writer this is one past the
    /// last record; with several it is the min over groups of each
    /// group's settled prefix.
    pub durable_lsn: u64,
    /// Entries replayed at startup (snapshot entries + WAL records).
    pub records_recovered: u64,
    /// Writer groups committing in parallel (1 = single commit lock).
    pub writer_groups: u64,
    /// Journal append failures since the service started (monotone).
    pub journal_errors: u64,
    /// The configured response to journal failure.
    pub policy: DurabilityPolicy,
    /// True once a failure degraded durability under
    /// [`DurabilityPolicy::Degrade`]: the service keeps serving, but
    /// writes since the first failure are not durable.
    pub degraded: bool,
    /// True once a failure fenced writes under
    /// [`DurabilityPolicy::ReadOnly`] / [`DurabilityPolicy::FailStop`]:
    /// every mutation since refuses with [`NotDurable`].
    pub fenced: bool,
}

/// The write-ahead log behind the handle: one commit lock, or one per
/// writer group.
#[derive(Debug)]
enum Wal {
    Single(Mutex<Journal>),
    Partitioned(GroupSet),
}

/// The commit-lock layer: serializes journal appends with their
/// in-memory applies and with checkpoint state capture, and enforces
/// the configured [`DurabilityPolicy`] on append failure.
#[derive(Debug)]
pub(crate) struct JournalHandle {
    wal: Wal,
    dir: PathBuf,
    records_recovered: u64,
    policy: DurabilityPolicy,
    io_policy: Option<Arc<dyn IoPolicy>>,
    journal_errors: AtomicU64,
    degraded: AtomicBool,
    fenced: AtomicBool,
}

/// One writer group's held commit lock, for multi-step commits
/// (deregister checks the listing table before appending).
pub(crate) struct CommitGuard<'a> {
    handle: &'a JournalHandle,
    journal: MutexGuard<'a, Journal>,
    group: usize,
}

impl CommitGuard<'_> {
    /// Append under this held commit lock, subject to the durability
    /// policy: `Err(NotDurable)` means the batch was **not** journaled
    /// and must not be applied; `Ok` means it was journaled — or that
    /// the policy is [`DurabilityPolicy::Degrade`] and durability was
    /// (already) visibly given up.
    pub(crate) fn append(&mut self, records: &[JournalRecord]) -> Result<(), NotDurable> {
        let handle = self.handle;
        if handle.fenced.load(Ordering::SeqCst) {
            return Err(NotDurable);
        }
        if handle.policy == DurabilityPolicy::Degrade && handle.degraded.load(Ordering::SeqCst) {
            // Sticky degrade: stop journaling entirely after the first
            // failure so the log keeps a clean prefix — resuming after
            // a gap would make later records replay out of a hole.
            return Ok(());
        }
        let result = match &handle.wal {
            Wal::Single(_) => self.journal.append_batch(records).map(|_| ()),
            Wal::Partitioned(set) => set
                .append_locked(self.group, &mut self.journal, records)
                .map(|_| ()),
        };
        match result {
            Ok(()) => Ok(()),
            Err(err) => {
                handle.journal_errors.fetch_add(1, Ordering::SeqCst);
                match handle.policy {
                    DurabilityPolicy::Degrade => {
                        if !handle.degraded.swap(true, Ordering::SeqCst) {
                            eprintln!(
                                "wsrep-serve: journal append failed; durability degraded: {err}"
                            );
                        }
                        Ok(())
                    }
                    DurabilityPolicy::ReadOnly | DurabilityPolicy::FailStop => {
                        if !handle.fenced.swap(true, Ordering::SeqCst) {
                            eprintln!(
                                "wsrep-serve: journal append failed; {} policy fenced writes: {err}",
                                handle.policy
                            );
                        }
                        Err(NotDurable)
                    }
                }
            }
        }
    }
}

impl JournalHandle {
    pub(crate) fn single(
        journal: Journal,
        records_recovered: u64,
        policy: DurabilityPolicy,
        io_policy: Option<Arc<dyn IoPolicy>>,
    ) -> Self {
        let dir = journal.dir().to_path_buf();
        JournalHandle {
            wal: Wal::Single(Mutex::new(journal)),
            dir,
            records_recovered,
            policy,
            io_policy,
            journal_errors: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
            fenced: AtomicBool::new(false),
        }
    }

    pub(crate) fn partitioned(
        set: GroupSet,
        records_recovered: u64,
        policy: DurabilityPolicy,
        io_policy: Option<Arc<dyn IoPolicy>>,
    ) -> Self {
        let dir = set.root().to_path_buf();
        JournalHandle {
            wal: Wal::Partitioned(set),
            dir,
            records_recovered,
            policy,
            io_policy,
            journal_errors: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
            fenced: AtomicBool::new(false),
        }
    }

    /// The journal root directory (snapshots live here; a partitioned
    /// log keeps its per-group segments in subdirectories).
    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured response to journal failure.
    pub(crate) fn policy(&self) -> DurabilityPolicy {
        self.policy
    }

    /// True once the policy fenced writes after a failure.
    pub(crate) fn fenced(&self) -> bool {
        self.fenced.load(Ordering::SeqCst)
    }

    /// Consult the installed fault-injection policy for a snapshot
    /// write — the checkpoint-side fault seam.
    pub(crate) fn consult_snapshot(&self) -> io::Result<()> {
        let Some(policy) = &self.io_policy else {
            return Ok(());
        };
        match policy.inject(IoOp::Snapshot) {
            None => Ok(()),
            Some(Fault::Delay(delay)) => {
                std::thread::sleep(delay);
                Ok(())
            }
            Some(fault) => Err(fault.into_error(IoOp::Snapshot)),
        }
    }

    /// Writer groups committing in parallel.
    pub(crate) fn writer_groups(&self) -> usize {
        match &self.wal {
            Wal::Single(_) => 1,
            Wal::Partitioned(set) => set.group_count(),
        }
    }

    /// Take one writer group's commit lock. Listing mutations use group
    /// 0; ingest writers use their own group.
    pub(crate) fn lock_group(&self, group: usize) -> CommitGuard<'_> {
        let journal = match &self.wal {
            Wal::Single(journal) => {
                debug_assert_eq!(group, 0, "single-writer journal only has group 0");
                journal.lock().unwrap_or_else(|e| e.into_inner())
            }
            Wal::Partitioned(set) => set.lock(group),
        };
        CommitGuard {
            handle: self,
            journal,
            group,
        }
    }

    /// Group-commit `records` to `group`, then run `apply` — both under
    /// that group's commit lock, so a concurrent checkpoint can never
    /// observe the store between a journal append and its apply (or vice
    /// versa). When the durability policy rejects the append
    /// (`Err(NotDurable)`), `apply` is **not** run.
    pub(crate) fn commit<R>(
        &self,
        group: usize,
        records: &[JournalRecord],
        apply: impl FnOnce() -> R,
    ) -> Result<R, NotDurable> {
        let mut guard = self.lock_group(group);
        guard.append(records)?;
        Ok(apply())
    }

    /// Hold **every** commit lock while running `capture`, and return the
    /// checkpoint LSN alongside its result. With all locks held no batch
    /// is in flight, so the allocator's next LSN (or the single writer's
    /// position) is a consistent cut: the captured state is exactly the
    /// effect of the first `lsn` records.
    pub(crate) fn freeze<R>(&self, capture: impl FnOnce() -> R) -> (u64, R) {
        match &self.wal {
            Wal::Single(journal) => {
                let journal = journal.lock().unwrap_or_else(|e| e.into_inner());
                let lsn = journal.next_lsn();
                let result = capture();
                drop(journal);
                (lsn, result)
            }
            Wal::Partitioned(set) => {
                // Writers each hold at most one group lock and never
                // acquire a second, so taking all of them in index order
                // cannot deadlock.
                let guards: Vec<_> = (0..set.group_count()).map(|g| set.lock(g)).collect();
                let lsn = set.allocator().next_lsn();
                let result = capture();
                drop(guards);
                (lsn, result)
            }
        }
    }

    /// Compact segments (every group's, plus any pre-partition root
    /// segments) and stale snapshots covered by `covered_lsn`.
    pub(crate) fn compact(&self, covered_lsn: u64) -> io::Result<CompactReport> {
        match &self.wal {
            Wal::Single(journal) => journal
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .compact(covered_lsn),
            Wal::Partitioned(set) => set.compact(covered_lsn),
        }
    }

    /// The contiguous durable frontier.
    pub(crate) fn durable_lsn(&self) -> u64 {
        match &self.wal {
            Wal::Single(journal) => journal.lock().unwrap_or_else(|e| e.into_inner()).next_lsn(),
            Wal::Partitioned(set) => set.durable_lsn(),
        }
    }

    pub(crate) fn health(&self) -> JournalHealth {
        let (stats, durable_lsn): (JournalStats, u64) = match &self.wal {
            Wal::Single(journal) => {
                let journal = journal.lock().unwrap_or_else(|e| e.into_inner());
                (journal.stats(), journal.next_lsn())
            }
            Wal::Partitioned(set) => (set.stats(), set.durable_lsn()),
        };
        JournalHealth {
            segments: stats.segments,
            bytes_appended: stats.bytes_appended,
            last_fsync_nanos: stats.last_fsync_nanos,
            commits: stats.commits,
            durable_lsn,
            records_recovered: self.records_recovered,
            writer_groups: self.writer_groups() as u64,
            journal_errors: self.journal_errors.load(Ordering::SeqCst),
            policy: self.policy,
            degraded: self.degraded.load(Ordering::SeqCst),
            fenced: self.fenced.load(Ordering::SeqCst),
        }
    }
}
