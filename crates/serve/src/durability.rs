//! The serve-side durability seam: one commit lock around the journal.
//!
//! Everything that must be journaled — ingested feedback batches, listing
//! publishes and deregistrations — goes through [`JournalHandle`], which
//! wraps the [`Journal`] in a mutex and pairs each append with the
//! in-memory apply **while the lock is held**. That single invariant is
//! what makes checkpoints consistent: a checkpointer taking the same lock
//! always observes an `(LSN, state)` pair where the state is exactly the
//! effect of the first `LSN` journal records — no applied-but-unjournaled
//! record, no journaled-but-unapplied one.
//!
//! Journal I/O failure (disk full, volume gone) does **not** take the
//! service down: the in-memory apply still happens, the failure is logged
//! once, and [`JournalHandle::health`] reports the handle as degraded so
//! operators can see that durability — not availability — was lost.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};
use wsrep_journal::{Journal, JournalRecord};

/// Journal health counters, surfaced through
/// [`ServiceStats`](crate::service::ServiceStats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalHealth {
    /// WAL segment files currently on disk.
    pub segments: u64,
    /// Bytes appended since the service started.
    pub bytes_appended: u64,
    /// Wall time of the most recent group-commit fsync.
    pub last_fsync_nanos: u64,
    /// Group commits (fsyncs) issued since the service started.
    pub commits: u64,
    /// One past the LSN of the last record in the log — the durable
    /// watermark replication watermarks and staleness are measured in.
    pub durable_lsn: u64,
    /// Entries replayed at startup (snapshot entries + WAL records).
    pub records_recovered: u64,
    /// True once any journal append has failed; the service keeps
    /// serving, but writes since the first failure are not durable.
    pub degraded: bool,
}

/// The commit lock: serializes journal appends with their in-memory
/// applies and with checkpoint state capture.
#[derive(Debug)]
pub(crate) struct JournalHandle {
    journal: Mutex<Journal>,
    records_recovered: u64,
    degraded: AtomicBool,
}

impl JournalHandle {
    pub(crate) fn new(journal: Journal, records_recovered: u64) -> Self {
        JournalHandle {
            journal: Mutex::new(journal),
            records_recovered,
            degraded: AtomicBool::new(false),
        }
    }

    /// Take the commit lock directly, for multi-step commits (deregister
    /// checks the map first) and checkpoint capture.
    pub(crate) fn lock(&self) -> MutexGuard<'_, Journal> {
        self.journal.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Append under an already-held commit lock. An I/O error degrades
    /// durability (logged once, visible in [`JournalHandle::health`])
    /// instead of failing the operation.
    pub(crate) fn append_locked(&self, journal: &mut Journal, records: &[JournalRecord]) {
        if let Err(err) = journal.append_batch(records) {
            if !self.degraded.swap(true, Ordering::SeqCst) {
                eprintln!("wsrep-serve: journal append failed; durability degraded: {err}");
            }
        }
    }

    /// Group-commit `records`, then run `apply` — both under the commit
    /// lock, so a concurrent checkpoint can never observe the store
    /// between a journal append and its apply (or vice versa).
    pub(crate) fn commit<R>(&self, records: &[JournalRecord], apply: impl FnOnce() -> R) -> R {
        let mut journal = self.lock();
        self.append_locked(&mut journal, records);
        apply()
    }

    pub(crate) fn health(&self) -> JournalHealth {
        let journal = self.lock();
        let stats = journal.stats();
        let durable_lsn = journal.next_lsn();
        drop(journal);
        JournalHealth {
            segments: stats.segments,
            bytes_appended: stats.bytes_appended,
            last_fsync_nanos: stats.last_fsync_nanos,
            commits: stats.commits,
            durable_lsn,
            records_recovered: self.records_recovered,
            degraded: self.degraded.load(Ordering::SeqCst),
        }
    }
}
