//! The serve-side durability seam: commit locks around the journal.
//!
//! Everything that must be journaled — ingested feedback batches, listing
//! publishes and deregistrations — goes through [`JournalHandle`], which
//! pairs each append with the in-memory apply **while a commit lock is
//! held**. With one writer group that is the classic single mutex around
//! the [`Journal`]; with several ([`GroupSet`]), each group has its own
//! commit lock and fsyncs independently, and a shared allocator hands
//! out LSNs so cross-group order is defined. Either way the invariant
//! that makes checkpoints consistent holds: a checkpointer holding *all*
//! commit locks observes an `(LSN, state)` pair where the state is
//! exactly the effect of the first `LSN` journal records — no
//! applied-but-unjournaled record, no journaled-but-unapplied one.
//!
//! Listing mutations (publish/deregister) always commit through **group
//! 0**, so they keep a total order among themselves regardless of how
//! many feedback writers run.
//!
//! Journal I/O failure (disk full, volume gone) does **not** take the
//! service down: the in-memory apply still happens, the failure is logged
//! once, and [`JournalHandle::health`] reports the handle as degraded so
//! operators can see that durability — not availability — was lost.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};
use wsrep_journal::{CompactReport, GroupSet, Journal, JournalRecord, JournalStats};

/// Journal health counters, surfaced through
/// [`ServiceStats`](crate::service::ServiceStats).
///
/// Like `ServiceStats`, multi-writer counters are **monotone but not a
/// consistent cut**: each writer group is sampled under its own commit
/// lock, so `commits` (summed across groups) and `durable_lsn` may
/// disagree by in-flight batches. `last_fsync_nanos` is the slowest
/// group's most recent fsync — the number an operator watching commit
/// latency cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalHealth {
    /// WAL segment files currently on disk, summed across writer groups.
    pub segments: u64,
    /// Bytes appended since the service started, summed across groups.
    pub bytes_appended: u64,
    /// Wall time of the most recent group-commit fsync; with several
    /// writer groups, the slowest group's most recent fsync.
    pub last_fsync_nanos: u64,
    /// Group commits (fsyncs) issued since the service started, summed
    /// across writer groups.
    pub commits: u64,
    /// The contiguous durable frontier — the watermark replication and
    /// staleness are measured in. With one writer this is one past the
    /// last record; with several it is the min over groups of each
    /// group's settled prefix.
    pub durable_lsn: u64,
    /// Entries replayed at startup (snapshot entries + WAL records).
    pub records_recovered: u64,
    /// Writer groups committing in parallel (1 = single commit lock).
    pub writer_groups: u64,
    /// True once any journal append has failed; the service keeps
    /// serving, but writes since the first failure are not durable.
    pub degraded: bool,
}

/// The write-ahead log behind the handle: one commit lock, or one per
/// writer group.
#[derive(Debug)]
enum Wal {
    Single(Mutex<Journal>),
    Partitioned(GroupSet),
}

/// The commit-lock layer: serializes journal appends with their
/// in-memory applies and with checkpoint state capture.
#[derive(Debug)]
pub(crate) struct JournalHandle {
    wal: Wal,
    dir: PathBuf,
    records_recovered: u64,
    degraded: AtomicBool,
}

/// One writer group's held commit lock, for multi-step commits
/// (deregister checks the listing table before appending).
pub(crate) struct CommitGuard<'a> {
    handle: &'a JournalHandle,
    journal: MutexGuard<'a, Journal>,
    group: usize,
}

impl CommitGuard<'_> {
    /// Append under this held commit lock. An I/O error degrades
    /// durability (logged once, visible in [`JournalHandle::health`])
    /// instead of failing the operation.
    pub(crate) fn append(&mut self, records: &[JournalRecord]) {
        let result = match &self.handle.wal {
            Wal::Single(_) => self.journal.append_batch(records).map(|_| ()),
            Wal::Partitioned(set) => set
                .append_locked(self.group, &mut self.journal, records)
                .map(|_| ()),
        };
        if let Err(err) = result {
            if !self.handle.degraded.swap(true, Ordering::SeqCst) {
                eprintln!("wsrep-serve: journal append failed; durability degraded: {err}");
            }
        }
    }
}

impl JournalHandle {
    pub(crate) fn single(journal: Journal, records_recovered: u64) -> Self {
        let dir = journal.dir().to_path_buf();
        JournalHandle {
            wal: Wal::Single(Mutex::new(journal)),
            dir,
            records_recovered,
            degraded: AtomicBool::new(false),
        }
    }

    pub(crate) fn partitioned(set: GroupSet, records_recovered: u64) -> Self {
        let dir = set.root().to_path_buf();
        JournalHandle {
            wal: Wal::Partitioned(set),
            dir,
            records_recovered,
            degraded: AtomicBool::new(false),
        }
    }

    /// The journal root directory (snapshots live here; a partitioned
    /// log keeps its per-group segments in subdirectories).
    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writer groups committing in parallel.
    pub(crate) fn writer_groups(&self) -> usize {
        match &self.wal {
            Wal::Single(_) => 1,
            Wal::Partitioned(set) => set.group_count(),
        }
    }

    /// Take one writer group's commit lock. Listing mutations use group
    /// 0; ingest writers use their own group.
    pub(crate) fn lock_group(&self, group: usize) -> CommitGuard<'_> {
        let journal = match &self.wal {
            Wal::Single(journal) => {
                debug_assert_eq!(group, 0, "single-writer journal only has group 0");
                journal.lock().unwrap_or_else(|e| e.into_inner())
            }
            Wal::Partitioned(set) => set.lock(group),
        };
        CommitGuard {
            handle: self,
            journal,
            group,
        }
    }

    /// Group-commit `records` to `group`, then run `apply` — both under
    /// that group's commit lock, so a concurrent checkpoint can never
    /// observe the store between a journal append and its apply (or vice
    /// versa).
    pub(crate) fn commit<R>(
        &self,
        group: usize,
        records: &[JournalRecord],
        apply: impl FnOnce() -> R,
    ) -> R {
        let mut guard = self.lock_group(group);
        guard.append(records);
        apply()
    }

    /// Hold **every** commit lock while running `capture`, and return the
    /// checkpoint LSN alongside its result. With all locks held no batch
    /// is in flight, so the allocator's next LSN (or the single writer's
    /// position) is a consistent cut: the captured state is exactly the
    /// effect of the first `lsn` records.
    pub(crate) fn freeze<R>(&self, capture: impl FnOnce() -> R) -> (u64, R) {
        match &self.wal {
            Wal::Single(journal) => {
                let journal = journal.lock().unwrap_or_else(|e| e.into_inner());
                let lsn = journal.next_lsn();
                let result = capture();
                drop(journal);
                (lsn, result)
            }
            Wal::Partitioned(set) => {
                // Writers each hold at most one group lock and never
                // acquire a second, so taking all of them in index order
                // cannot deadlock.
                let guards: Vec<_> = (0..set.group_count()).map(|g| set.lock(g)).collect();
                let lsn = set.allocator().next_lsn();
                let result = capture();
                drop(guards);
                (lsn, result)
            }
        }
    }

    /// Compact segments (every group's, plus any pre-partition root
    /// segments) and stale snapshots covered by `covered_lsn`.
    pub(crate) fn compact(&self, covered_lsn: u64) -> io::Result<CompactReport> {
        match &self.wal {
            Wal::Single(journal) => journal
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .compact(covered_lsn),
            Wal::Partitioned(set) => set.compact(covered_lsn),
        }
    }

    /// The contiguous durable frontier.
    pub(crate) fn durable_lsn(&self) -> u64 {
        match &self.wal {
            Wal::Single(journal) => journal.lock().unwrap_or_else(|e| e.into_inner()).next_lsn(),
            Wal::Partitioned(set) => set.durable_lsn(),
        }
    }

    pub(crate) fn health(&self) -> JournalHealth {
        let (stats, durable_lsn): (JournalStats, u64) = match &self.wal {
            Wal::Single(journal) => {
                let journal = journal.lock().unwrap_or_else(|e| e.into_inner());
                (journal.stats(), journal.next_lsn())
            }
            Wal::Partitioned(set) => (set.stats(), set.durable_lsn()),
        };
        JournalHealth {
            segments: stats.segments,
            bytes_appended: stats.bytes_appended,
            last_fsync_nanos: stats.last_fsync_nanos,
            commits: stats.commits,
            durable_lsn,
            records_recovered: self.records_recovered,
            writer_groups: self.writer_groups() as u64,
            degraded: self.degraded.load(Ordering::SeqCst),
        }
    }
}
