//! Epoch-validated score cache with a wait-free read path.
//!
//! Recomputing a reputation score replays the subject's whole feedback log
//! through a mechanism — linear work that the registry would otherwise
//! repeat on every query. The cache memoizes the result stamped with the
//! store epoch it was computed from; a query first compares epochs, so any
//! applied feedback invalidates exactly the subjects it touched (their
//! epoch moved).
//!
//! The cache is split into power-of-two shards, and each shard publishes
//! an immutable [`Arc`] snapshot of its map through a [`SnapshotCell`]. A
//! **hit is one pin + one probe** — no lock, no waiting on writers, no
//! refcount traffic on the shared `Arc`. A miss computes outside any lock,
//! then copies the shard's map, inserts, and swaps the snapshot in
//! atomically (copy-on-write). Concurrent queries may race to fill the
//! same entry, in which case both compute the same value (the epoch pins
//! the input log) and the stale-epoch write loses.
//!
//! Size accounting (`len`/`is_empty`) is served from relaxed atomic
//! counters maintained on insert — stats collection never touches the
//! shards.

use crate::fxhash::{self, FxHashMap};
use crate::snapshot::SnapshotCell;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wsrep_core::id::SubjectId;
use wsrep_core::trust::TrustEstimate;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    epoch: u64,
    estimate: Option<TrustEstimate>,
}

/// One cache shard: the published snapshot plus a writer-side mutex
/// serializing copy-on-write updates. Readers never touch the mutex.
#[derive(Debug, Default)]
struct CacheShard {
    snapshot: SnapshotCell<FxHashMap<SubjectId, Entry>>,
    write: Mutex<()>,
}

/// Concurrent subject → (epoch, score) map with hit/miss accounting and
/// wait-free reads.
#[derive(Debug)]
pub struct ScoreCache {
    shards: Box<[CacheShard]>,
    mask: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    len: AtomicU64,
}

impl Default for ScoreCache {
    fn default() -> Self {
        ScoreCache::with_shards(16)
    }
}

impl ScoreCache {
    /// Empty cache with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty cache over `shards` snapshot cells (rounded up to a power
    /// of two, at least one). More shards mean smaller copy-on-write
    /// clones per miss and less writer-side serialization.
    pub fn with_shards(shards: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        ScoreCache {
            shards: (0..count).map(|_| CacheShard::default()).collect(),
            mask: count as u64 - 1,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            len: AtomicU64::new(0),
        }
    }

    fn shard(&self, subject: SubjectId) -> &CacheShard {
        &self.shards[(fxhash::hash_one(&subject) & self.mask) as usize]
    }

    /// The cached estimate for `subject` if it was computed at exactly
    /// `epoch`; a stale or missing entry answers `None` (and counts as a
    /// miss only in [`ScoreCache::get_or_compute`]). Wait-free.
    pub fn get(&self, subject: SubjectId, epoch: u64) -> Option<Option<TrustEstimate>> {
        self.shard(subject).snapshot.read(|map| {
            map.get(&subject)
                .filter(|e| e.epoch == epoch)
                .map(|e| e.estimate)
        })
    }

    /// The estimate for `subject` at `epoch`, running `compute` on a miss
    /// and remembering its answer.
    pub fn get_or_compute(
        &self,
        subject: SubjectId,
        epoch: u64,
        compute: impl FnOnce() -> Option<TrustEstimate>,
    ) -> Option<TrustEstimate> {
        if let Some(cached) = self.get(subject, epoch) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return cached;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let estimate = compute();
        self.insert(subject, epoch, estimate);
        estimate
    }

    /// Remember `estimate` for `subject` at `epoch` by copy-on-write:
    /// clone the shard map, insert, swap the snapshot. Never clobbers a
    /// fresher entry written by a racing query that observed more applied
    /// feedback.
    fn insert(&self, subject: SubjectId, epoch: u64, estimate: Option<TrustEstimate>) {
        let shard = self.shard(subject);
        let _writer = shard.write.lock();
        let current = shard.snapshot.load();
        if current.get(&subject).is_some_and(|e| e.epoch > epoch) {
            return;
        }
        let mut next = (*current).clone();
        let fresh_key = next.insert(subject, Entry { epoch, estimate }).is_none();
        shard.snapshot.store(Arc::new(next));
        if fresh_key {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Queries answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Queries that had to recompute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Snapshots published across all shards (one per applied insert).
    pub fn swaps(&self) -> u64 {
        self.shards.iter().map(|s| s.snapshot.swaps()).sum()
    }

    /// Number of cached subjects, from a relaxed counter — never touches
    /// the shards, so stats collection cannot disturb the read path.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed) as usize
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrep_core::id::ServiceId;
    use wsrep_core::trust::TrustValue;

    fn subject(raw: u64) -> SubjectId {
        ServiceId::new(raw).into()
    }

    fn estimate(v: f64) -> Option<TrustEstimate> {
        Some(TrustEstimate::new(TrustValue::new(v), 1.0))
    }

    #[test]
    fn second_lookup_at_same_epoch_hits() {
        let cache = ScoreCache::new();
        let mut computed = 0;
        for _ in 0..3 {
            let got = cache.get_or_compute(subject(1), 5, || {
                computed += 1;
                estimate(0.8)
            });
            assert_eq!(got, estimate(0.8));
        }
        assert_eq!(computed, 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn epoch_bump_invalidates() {
        let cache = ScoreCache::new();
        cache.get_or_compute(subject(1), 1, || estimate(0.3));
        let fresh = cache.get_or_compute(subject(1), 2, || estimate(0.9));
        assert_eq!(fresh, estimate(0.9));
        assert_eq!(cache.get(subject(1), 1), None);
        assert_eq!(cache.get(subject(1), 2), Some(estimate(0.9)));
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn stale_write_does_not_clobber_fresher_entry() {
        let cache = ScoreCache::new();
        cache.get_or_compute(subject(1), 7, || estimate(0.7));
        // A racing query that computed from epoch 3 must not regress the
        // entry.
        cache.get_or_compute(subject(1), 3, || estimate(0.1));
        assert_eq!(cache.get(subject(1), 7), Some(estimate(0.7)));
    }

    #[test]
    fn caches_absence_of_evidence_too() {
        let cache = ScoreCache::new();
        let mut computed = 0;
        for _ in 0..2 {
            let got = cache.get_or_compute(subject(9), 0, || {
                computed += 1;
                None
            });
            assert_eq!(got, None);
        }
        assert_eq!(computed, 1);
    }

    #[test]
    fn len_counts_subjects_not_writes() {
        let cache = ScoreCache::with_shards(4);
        assert!(cache.is_empty());
        for raw in 0..10 {
            cache.get_or_compute(subject(raw), 1, || estimate(0.5));
        }
        assert_eq!(cache.len(), 10);
        // Re-inserting at a fresher epoch replaces, not grows.
        for raw in 0..10 {
            cache.get_or_compute(subject(raw), 2, || estimate(0.6));
        }
        assert_eq!(cache.len(), 10);
        assert_eq!(cache.swaps(), 20, "one snapshot swap per applied insert");
    }

    /// Readers race a writer refreshing entries: every read returns
    /// either the old or the new value for its epoch, never junk, and
    /// the reader side never blocks (bounded only by its own loop).
    #[test]
    fn concurrent_reads_and_inserts_stay_consistent() {
        let cache = std::sync::Arc::new(ScoreCache::with_shards(2));
        std::thread::scope(|scope| {
            for reader in 0..2 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..20_000u64 {
                        let s = subject((reader * 31 + i) % 8);
                        for epoch in [1, 2, 3] {
                            if let Some(Some(e)) = cache.get(s, epoch) {
                                assert!((0.0..=1.0).contains(&e.value.get()));
                            }
                        }
                    }
                });
            }
            let cache = std::sync::Arc::clone(&cache);
            scope.spawn(move || {
                for epoch in 1..=3u64 {
                    for raw in 0..8 {
                        cache.get_or_compute(subject(raw), epoch, || estimate(raw as f64 / 8.0));
                    }
                }
            });
        });
        assert_eq!(cache.len(), 8);
    }
}
