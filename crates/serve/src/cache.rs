//! Epoch-validated score cache.
//!
//! Recomputing a reputation score replays the subject's whole feedback log
//! through a mechanism — linear work that the registry would otherwise
//! repeat on every query. The cache memoizes the result stamped with the
//! store epoch it was computed from; a query first compares epochs, so a
//! hit is a read-lock and a map lookup, and any applied feedback
//! invalidates exactly the subjects it touched (their epoch moved).
//!
//! Scores are computed *outside* the cache lock: concurrent queries may
//! race to fill the same entry, in which case both compute the same value
//! (the epoch pins the input log) and the later write is a no-op.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use wsrep_core::id::SubjectId;
use wsrep_core::trust::TrustEstimate;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    epoch: u64,
    estimate: Option<TrustEstimate>,
}

/// Concurrent subject → (epoch, score) map with hit/miss accounting.
#[derive(Debug, Default)]
pub struct ScoreCache {
    entries: RwLock<HashMap<SubjectId, Entry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ScoreCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached estimate for `subject` if it was computed at exactly
    /// `epoch`; a stale or missing entry answers `None` (and counts as a
    /// miss only in [`ScoreCache::get_or_compute`]).
    pub fn get(&self, subject: SubjectId, epoch: u64) -> Option<Option<TrustEstimate>> {
        self.entries
            .read()
            .get(&subject)
            .filter(|e| e.epoch == epoch)
            .map(|e| e.estimate)
    }

    /// The estimate for `subject` at `epoch`, running `compute` on a miss
    /// and remembering its answer.
    pub fn get_or_compute(
        &self,
        subject: SubjectId,
        epoch: u64,
        compute: impl FnOnce() -> Option<TrustEstimate>,
    ) -> Option<TrustEstimate> {
        if let Some(cached) = self.get(subject, epoch) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return cached;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let estimate = compute();
        let mut entries = self.entries.write();
        let entry = entries.entry(subject).or_insert(Entry { epoch, estimate });
        // Never clobber a fresher entry written by a racing query that
        // observed more applied feedback.
        if entry.epoch <= epoch {
            *entry = Entry { epoch, estimate };
        }
        estimate
    }

    /// Queries answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Queries that had to recompute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached subjects.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrep_core::id::ServiceId;
    use wsrep_core::trust::TrustValue;

    fn subject(raw: u64) -> SubjectId {
        ServiceId::new(raw).into()
    }

    fn estimate(v: f64) -> Option<TrustEstimate> {
        Some(TrustEstimate::new(TrustValue::new(v), 1.0))
    }

    #[test]
    fn second_lookup_at_same_epoch_hits() {
        let cache = ScoreCache::new();
        let mut computed = 0;
        for _ in 0..3 {
            let got = cache.get_or_compute(subject(1), 5, || {
                computed += 1;
                estimate(0.8)
            });
            assert_eq!(got, estimate(0.8));
        }
        assert_eq!(computed, 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn epoch_bump_invalidates() {
        let cache = ScoreCache::new();
        cache.get_or_compute(subject(1), 1, || estimate(0.3));
        let fresh = cache.get_or_compute(subject(1), 2, || estimate(0.9));
        assert_eq!(fresh, estimate(0.9));
        assert_eq!(cache.get(subject(1), 1), None);
        assert_eq!(cache.get(subject(1), 2), Some(estimate(0.9)));
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn stale_write_does_not_clobber_fresher_entry() {
        let cache = ScoreCache::new();
        cache.get_or_compute(subject(1), 7, || estimate(0.7));
        // A racing query that computed from epoch 3 must not regress the
        // entry.
        cache.get_or_compute(subject(1), 3, || estimate(0.1));
        assert_eq!(cache.get(subject(1), 7), Some(estimate(0.7)));
    }

    #[test]
    fn caches_absence_of_evidence_too() {
        let cache = ScoreCache::new();
        let mut computed = 0;
        for _ in 0..2 {
            let got = cache.get_or_compute(subject(9), 0, || {
                computed += 1;
                None
            });
            assert_eq!(got, None);
        }
        assert_eq!(computed, 1);
    }
}
