//! Churn: nodes leaving and (re)joining — the dynamism that, per the
//! paper, makes the server-centric UDDI framework stale and motivates
//! peer-to-peer web services.

use rand::Rng;
use std::collections::BTreeSet;
use wsrep_core::id::AgentId;

/// A memoryless churn process over a fixed node population.
#[derive(Debug, Clone)]
pub struct ChurnModel {
    /// Per-round probability an online node goes offline.
    leave_prob: f64,
    /// Per-round probability an offline node comes back.
    rejoin_prob: f64,
    offline: BTreeSet<AgentId>,
}

impl ChurnModel {
    /// New model with given leave/rejoin probabilities.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `\[0, 1\]`.
    pub fn new(leave_prob: f64, rejoin_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&leave_prob), "leave_prob in [0,1]");
        assert!((0.0..=1.0).contains(&rejoin_prob), "rejoin_prob in [0,1]");
        ChurnModel {
            leave_prob,
            rejoin_prob,
            offline: BTreeSet::new(),
        }
    }

    /// No churn at all.
    pub fn none() -> Self {
        Self::new(0.0, 0.0)
    }

    /// Whether a node is currently offline.
    pub fn is_offline(&self, node: AgentId) -> bool {
        self.offline.contains(&node)
    }

    /// Currently offline nodes.
    pub fn offline(&self) -> impl Iterator<Item = AgentId> + '_ {
        self.offline.iter().copied()
    }

    /// Advance one round over `population`; returns `(left, rejoined)`.
    pub fn step<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        population: &[AgentId],
    ) -> (Vec<AgentId>, Vec<AgentId>) {
        let mut left = Vec::new();
        let mut rejoined = Vec::new();
        for &node in population {
            if self.offline.contains(&node) {
                if rng.gen::<f64>() < self.rejoin_prob {
                    self.offline.remove(&node);
                    rejoined.push(node);
                }
            } else if rng.gen::<f64>() < self.leave_prob {
                self.offline.insert(node);
                left.push(node);
            }
        }
        (left, rejoined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn population(n: u64) -> Vec<AgentId> {
        (0..n).map(AgentId::new).collect()
    }

    #[test]
    fn no_churn_never_changes_anything() {
        let mut c = ChurnModel::none();
        let mut rng = StdRng::seed_from_u64(1);
        let pop = population(20);
        for _ in 0..10 {
            let (left, rejoined) = c.step(&mut rng, &pop);
            assert!(left.is_empty() && rejoined.is_empty());
        }
    }

    #[test]
    fn heavy_churn_takes_nodes_offline() {
        let mut c = ChurnModel::new(0.5, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let pop = population(100);
        c.step(&mut rng, &pop);
        let off = c.offline().count();
        assert!(off > 20 && off < 80, "off={off}");
    }

    #[test]
    fn rejoining_brings_nodes_back() {
        let mut c = ChurnModel::new(1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let pop = population(10);
        let (left, _) = c.step(&mut rng, &pop);
        assert_eq!(left.len(), 10);
        let (_, rejoined) = c.step(&mut rng, &pop);
        assert_eq!(rejoined.len(), 10);
        assert_eq!(c.offline().count(), 0);
    }

    #[test]
    fn equilibrium_fraction_matches_rates() {
        // leave 0.1, rejoin 0.1 → expected offline fraction 0.5.
        let mut c = ChurnModel::new(0.1, 0.1);
        let mut rng = StdRng::seed_from_u64(4);
        let pop = population(500);
        for _ in 0..200 {
            c.step(&mut rng, &pop);
        }
        let frac = c.offline().count() as f64 / 500.0;
        assert!((frac - 0.5).abs() < 0.12, "frac={frac}");
    }

    #[test]
    #[should_panic(expected = "leave_prob in [0,1]")]
    fn invalid_probability_panics() {
        ChurnModel::new(1.2, 0.0);
    }
}
