//! The simulated message-passing network.
//!
//! A deliberately small transport: nodes are [`AgentId`]s, messages carry a
//! generic payload plus a byte size for bandwidth accounting, delivery
//! takes a fixed latency in rounds and may be lost, and nodes can be failed
//! and recovered (the single-point-of-failure experiments flip exactly
//! that switch on a centralized registry node).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use wsrep_core::id::AgentId;
use wsrep_core::time::Time;

/// A message in flight or delivered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<P> {
    /// Sender node.
    pub from: AgentId,
    /// Destination node.
    pub to: AgentId,
    /// Application payload.
    pub payload: P,
    /// Accounted wire size in bytes.
    pub size: usize,
}

/// Cumulative transport statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Messages handed to the network.
    pub sent: u64,
    /// Messages delivered into an inbox.
    pub delivered: u64,
    /// Messages dropped (loss or dead destination).
    pub dropped: u64,
    /// Bytes handed to the network.
    pub bytes_sent: u64,
}

/// An in-process network simulator with latency, loss and failures.
#[derive(Debug)]
pub struct SimNetwork<P> {
    nodes: BTreeSet<AgentId>,
    down: BTreeSet<AgentId>,
    inboxes: BTreeMap<AgentId, VecDeque<Envelope<P>>>,
    /// Messages scheduled for delivery at a future round.
    in_flight: BTreeMap<Time, Vec<Envelope<P>>>,
    latency: u64,
    loss: f64,
    now: Time,
    rng: StdRng,
    stats: NetStats,
}

impl<P> SimNetwork<P> {
    /// A network with the given delivery latency (rounds), loss probability
    /// and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is outside `\[0, 1\]`.
    pub fn new(latency: u64, loss: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be in [0,1]");
        SimNetwork {
            nodes: BTreeSet::new(),
            down: BTreeSet::new(),
            inboxes: BTreeMap::new(),
            in_flight: BTreeMap::new(),
            latency,
            loss,
            now: Time::ZERO,
            rng: StdRng::seed_from_u64(seed),
            stats: NetStats::default(),
        }
    }

    /// An ideal network: instant (next step), lossless.
    pub fn ideal(seed: u64) -> Self {
        Self::new(0, 0.0, seed)
    }

    /// Register a node (idempotent).
    pub fn add_node(&mut self, node: AgentId) {
        self.nodes.insert(node);
        self.inboxes.entry(node).or_default();
    }

    /// All registered nodes.
    pub fn nodes(&self) -> impl Iterator<Item = AgentId> + '_ {
        self.nodes.iter().copied()
    }

    /// Whether a node is currently alive.
    pub fn is_alive(&self, node: AgentId) -> bool {
        self.nodes.contains(&node) && !self.down.contains(&node)
    }

    /// Fail a node: it stops receiving; queued inbox content is lost.
    pub fn fail(&mut self, node: AgentId) {
        self.down.insert(node);
        if let Some(inbox) = self.inboxes.get_mut(&node) {
            inbox.clear();
        }
    }

    /// Recover a failed node.
    pub fn recover(&mut self, node: AgentId) {
        self.down.remove(&node);
    }

    /// Current simulation round.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Transport statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Send a message; it will arrive after the configured latency unless
    /// lost. Sending from or to a dead/unknown node drops immediately.
    pub fn send(&mut self, from: AgentId, to: AgentId, payload: P, size: usize) {
        self.stats.sent += 1;
        self.stats.bytes_sent += size as u64;
        if !self.is_alive(from) || !self.nodes.contains(&to) {
            self.stats.dropped += 1;
            return;
        }
        if self.loss > 0.0 && self.rng.gen::<f64>() < self.loss {
            self.stats.dropped += 1;
            return;
        }
        let due = self.now + self.latency;
        self.in_flight.entry(due).or_default().push(Envelope {
            from,
            to,
            payload,
            size,
        });
    }

    /// Advance one round, delivering everything due. Returns the number of
    /// messages delivered this step.
    pub fn step(&mut self) -> usize {
        let due: Vec<Time> = self
            .in_flight
            .keys()
            .copied()
            .filter(|&t| t <= self.now)
            .collect();
        let mut delivered = 0;
        for t in due {
            for env in self.in_flight.remove(&t).unwrap_or_default() {
                if self.is_alive(env.to) {
                    self.inboxes.entry(env.to).or_default().push_back(env);
                    self.stats.delivered += 1;
                    delivered += 1;
                } else {
                    self.stats.dropped += 1;
                }
            }
        }
        self.now += 1;
        delivered
    }

    /// Run steps until no message is in flight (or `max_steps` elapse).
    pub fn settle(&mut self, max_steps: usize) -> usize {
        let mut total = 0;
        for _ in 0..max_steps {
            total += self.step();
            if self.in_flight.is_empty() {
                break;
            }
        }
        total
    }

    /// Drain a node's inbox.
    pub fn drain_inbox(&mut self, node: AgentId) -> Vec<Envelope<P>> {
        self.inboxes
            .get_mut(&node)
            .map(|q| q.drain(..).collect())
            .unwrap_or_default()
    }

    /// Peek at a node's inbox length.
    pub fn inbox_len(&self, node: AgentId) -> usize {
        self.inboxes.get(&node).map(VecDeque::len).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u64) -> AgentId {
        AgentId::new(i)
    }

    fn net(latency: u64, loss: f64) -> SimNetwork<String> {
        let mut n = SimNetwork::new(latency, loss, 42);
        for i in 0..4 {
            n.add_node(a(i));
        }
        n
    }

    #[test]
    fn messages_arrive_after_latency() {
        let mut n = net(2, 0.0);
        n.send(a(0), a(1), "hi".into(), 2);
        assert_eq!(n.step(), 0); // t0: not due (due at t2)
        assert_eq!(n.step(), 0); // t1
        assert_eq!(n.step(), 1); // t2: delivered
        let inbox = n.drain_inbox(a(1));
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].payload, "hi");
    }

    #[test]
    fn ideal_network_delivers_next_step() {
        let mut n: SimNetwork<u32> = SimNetwork::ideal(1);
        n.add_node(a(0));
        n.add_node(a(1));
        n.send(a(0), a(1), 7, 4);
        assert_eq!(n.step(), 1);
        assert_eq!(n.drain_inbox(a(1))[0].payload, 7);
    }

    #[test]
    fn lossy_network_drops_some_messages() {
        let mut n = net(0, 0.5);
        for _ in 0..200 {
            n.send(a(0), a(1), "x".into(), 1);
        }
        n.settle(10);
        let s = n.stats();
        assert_eq!(s.sent, 200);
        assert!(s.dropped > 50 && s.dropped < 150, "dropped={}", s.dropped);
        assert_eq!(s.delivered + s.dropped, 200);
    }

    #[test]
    fn failed_node_loses_messages_and_inbox() {
        let mut n = net(1, 0.0);
        n.send(a(0), a(1), "early".into(), 1);
        n.step();
        n.step();
        assert_eq!(n.inbox_len(a(1)), 1);
        n.fail(a(1));
        assert_eq!(n.inbox_len(a(1)), 0, "inbox cleared on failure");
        n.send(a(0), a(1), "late".into(), 1);
        n.settle(5);
        assert_eq!(n.inbox_len(a(1)), 0);
        assert!(!n.is_alive(a(1)));
        n.recover(a(1));
        n.send(a(0), a(1), "after".into(), 1);
        n.settle(5);
        assert_eq!(n.inbox_len(a(1)), 1);
    }

    #[test]
    fn dead_sender_cannot_send() {
        let mut n = net(0, 0.0);
        n.fail(a(0));
        n.send(a(0), a(1), "x".into(), 1);
        n.settle(3);
        assert_eq!(n.stats().dropped, 1);
    }

    #[test]
    fn byte_accounting_sums_sizes() {
        let mut n = net(0, 0.0);
        n.send(a(0), a(1), "x".into(), 10);
        n.send(a(1), a(2), "y".into(), 32);
        assert_eq!(n.stats().bytes_sent, 42);
    }

    #[test]
    fn settle_stops_when_quiet() {
        let mut n = net(1, 0.0);
        n.send(a(0), a(1), "x".into(), 1);
        let delivered = n.settle(100);
        assert_eq!(delivered, 1);
        assert!(n.now().round() < 100, "stopped early once drained");
    }

    #[test]
    #[should_panic(expected = "loss must be in [0,1]")]
    fn invalid_loss_panics() {
        let _: SimNetwork<u8> = SimNetwork::new(0, 1.5, 0);
    }
}
