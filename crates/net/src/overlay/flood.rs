//! TTL-bounded flooding — the Gnutella-style query primitive that XRep
//! polling (Damiani et al.) rides on.

use crate::overlay::graph::NeighborGraph;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use wsrep_core::id::AgentId;

/// Result of one flood.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FloodOutcome {
    /// Nodes reached (excluding the source), with the hop count at which
    /// each was first reached.
    pub reached: BTreeMap<AgentId, usize>,
    /// Messages transmitted (every edge-crossing counts once).
    pub messages: u64,
}

/// Flood a query from `source` with the given TTL over `graph`. Each node
/// forwards the first copy it sees to all neighbors except the one it came
/// from; duplicate deliveries still cost a message (as in real flooding).
pub fn flood(graph: &NeighborGraph, source: AgentId, ttl: usize) -> FloodOutcome {
    let mut reached: BTreeMap<AgentId, usize> = BTreeMap::new();
    let mut messages = 0u64;
    if ttl == 0 {
        return FloodOutcome { reached, messages };
    }
    let mut forwarded: BTreeSet<AgentId> = BTreeSet::from([source]);
    let mut queue: VecDeque<(AgentId, AgentId, usize)> = VecDeque::new(); // (from, at, depth)
    for n in graph.neighbors(source) {
        messages += 1;
        queue.push_back((source, n, 1));
    }
    while let Some((from, at, depth)) = queue.pop_front() {
        reached.entry(at).or_insert(depth);
        if depth >= ttl || !forwarded.insert(at) {
            continue;
        }
        for n in graph.neighbors(at) {
            if n != from {
                // Duplicate deliveries still cost a message; the
                // `forwarded` check at dequeue stops re-forwarding.
                messages += 1;
                queue.push_back((at, n, depth + 1));
            }
        }
    }
    reached.remove(&source);
    FloodOutcome { reached, messages }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u64) -> AgentId {
        AgentId::new(i)
    }

    /// 0 - 1 - 2 - 3 line.
    fn line() -> NeighborGraph {
        let mut g = NeighborGraph::new();
        g.add_edge(a(0), a(1));
        g.add_edge(a(1), a(2));
        g.add_edge(a(2), a(3));
        g
    }

    #[test]
    fn ttl_limits_reach() {
        let g = line();
        let out = flood(&g, a(0), 2);
        assert!(out.reached.contains_key(&a(1)));
        assert!(out.reached.contains_key(&a(2)));
        assert!(!out.reached.contains_key(&a(3)));
        assert_eq!(out.reached[&a(1)], 1);
        assert_eq!(out.reached[&a(2)], 2);
    }

    #[test]
    fn full_ttl_reaches_everyone() {
        let g = line();
        let out = flood(&g, a(0), 10);
        assert_eq!(out.reached.len(), 3);
    }

    #[test]
    fn messages_grow_with_ttl() {
        let g = line();
        let short = flood(&g, a(0), 1);
        let long = flood(&g, a(0), 3);
        assert!(long.messages > short.messages);
        assert_eq!(short.messages, 1);
    }

    #[test]
    fn cycles_do_not_loop_forever() {
        let mut g = NeighborGraph::new();
        g.add_edge(a(0), a(1));
        g.add_edge(a(1), a(2));
        g.add_edge(a(2), a(0));
        let out = flood(&g, a(0), 10);
        assert_eq!(out.reached.len(), 2);
        assert!(out.messages < 20);
    }

    #[test]
    fn isolated_source_reaches_nobody() {
        let mut g = NeighborGraph::new();
        g.add_node(a(0));
        let out = flood(&g, a(0), 5);
        assert!(out.reached.is_empty());
        assert_eq!(out.messages, 0);
    }
}
