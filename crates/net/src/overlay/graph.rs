//! Undirected neighbor graphs for unstructured overlays.

use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};
use wsrep_core::id::AgentId;

/// An undirected neighbor graph.
#[derive(Debug, Clone, Default)]
pub struct NeighborGraph {
    adj: BTreeMap<AgentId, BTreeSet<AgentId>>,
}

impl NeighborGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node (idempotent).
    pub fn add_node(&mut self, node: AgentId) {
        self.adj.entry(node).or_default();
    }

    /// Add an undirected edge (adds missing endpoints).
    pub fn add_edge(&mut self, a: AgentId, b: AgentId) {
        if a == b {
            return;
        }
        self.adj.entry(a).or_default().insert(b);
        self.adj.entry(b).or_default().insert(a);
    }

    /// Remove a node and its edges.
    pub fn remove_node(&mut self, node: AgentId) {
        if let Some(neis) = self.adj.remove(&node) {
            for n in neis {
                if let Some(set) = self.adj.get_mut(&n) {
                    set.remove(&node);
                }
            }
        }
    }

    /// Neighbors of a node.
    pub fn neighbors(&self, node: AgentId) -> impl Iterator<Item = AgentId> + '_ {
        self.adj.get(&node).into_iter().flatten().copied()
    }

    /// All nodes.
    pub fn nodes(&self) -> impl Iterator<Item = AgentId> + '_ {
        self.adj.keys().copied()
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Edge count.
    pub fn edge_count(&self) -> usize {
        self.adj.values().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// Whether the graph is connected (trivially true when empty).
    pub fn is_connected(&self) -> bool {
        let Some(&start) = self.adj.keys().next() else {
            return true;
        };
        let mut seen = BTreeSet::from([start]);
        let mut stack = vec![start];
        while let Some(at) = stack.pop() {
            for n in self.neighbors(at) {
                if seen.insert(n) {
                    stack.push(n);
                }
            }
        }
        seen.len() == self.adj.len()
    }

    /// A connected random graph: a ring over `nodes` (guaranteeing
    /// connectivity) plus `extra_per_node` random shortcut edges each —
    /// the usual small-world construction for unstructured P2P overlays.
    pub fn random_connected<R: Rng + ?Sized>(
        rng: &mut R,
        nodes: &[AgentId],
        extra_per_node: usize,
    ) -> Self {
        let mut g = NeighborGraph::new();
        if nodes.is_empty() {
            return g;
        }
        let mut order: Vec<AgentId> = nodes.to_vec();
        order.shuffle(rng);
        for w in 0..order.len() {
            g.add_edge(order[w], order[(w + 1) % order.len()]);
        }
        if nodes.len() > 2 {
            for &n in nodes {
                for _ in 0..extra_per_node {
                    let other = nodes[rng.gen_range(0..nodes.len())];
                    g.add_edge(n, other);
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn a(i: u64) -> AgentId {
        AgentId::new(i)
    }

    #[test]
    fn edges_are_undirected() {
        let mut g = NeighborGraph::new();
        g.add_edge(a(0), a(1));
        assert!(g.neighbors(a(0)).any(|n| n == a(1)));
        assert!(g.neighbors(a(1)).any(|n| n == a(0)));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut g = NeighborGraph::new();
        g.add_edge(a(0), a(0));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn removal_cleans_both_sides() {
        let mut g = NeighborGraph::new();
        g.add_edge(a(0), a(1));
        g.add_edge(a(1), a(2));
        g.remove_node(a(1));
        assert_eq!(g.len(), 2);
        assert_eq!(g.neighbors(a(0)).count(), 0);
    }

    #[test]
    fn random_graph_is_connected() {
        let mut rng = StdRng::seed_from_u64(5);
        let nodes: Vec<AgentId> = (0..50).map(a).collect();
        let g = NeighborGraph::random_connected(&mut rng, &nodes, 2);
        assert!(g.is_connected());
        assert_eq!(g.len(), 50);
    }

    #[test]
    fn single_node_graph_is_connected() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = NeighborGraph::random_connected(&mut rng, &[a(0)], 2);
        assert!(g.is_connected());
        assert!(NeighborGraph::new().is_connected());
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut g = NeighborGraph::new();
        g.add_edge(a(0), a(1));
        g.add_node(a(9));
        assert!(!g.is_connected());
    }
}
