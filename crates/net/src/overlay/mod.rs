//! Overlay topologies and routing.
//!
//! * [`graph`] — undirected neighbor graphs (random / ring+shortcut
//!   generators) shared by flooding and gossip;
//! * [`flood`] — TTL-bounded flooding, Gnutella-style (the transport XRep
//!   polling rides on);
//! * [`gossip`] — push rumor spreading;
//! * [`chord`] — a Chord-like ring DHT with finger-table routing;
//! * [`pgrid`] — the P-Grid binary prefix trie used by Aberer–Despotovic
//!   and Vu et al. for decentralized reputation storage.

pub mod chord;
pub mod flood;
pub mod gossip;
pub mod graph;
pub mod pgrid;
