//! A Chord-like ring DHT with finger-table routing.
//!
//! Distributed EigenTrust stores each peer's trust vector at score
//! managers located via a DHT; this ring provides the `O(log n)` lookup
//! with hop counting so the experiments can report routing cost.

use std::collections::BTreeMap;
use wsrep_core::id::AgentId;

/// Identifier-space size: 64-bit ring.
const M: u32 = 64;

/// A Chord-like ring built over a static node set.
#[derive(Debug, Clone)]
pub struct ChordRing {
    /// key → node, sorted by key (the ring).
    ring: BTreeMap<u64, AgentId>,
    /// Finger tables: node key → list of (start, successor node key).
    fingers: BTreeMap<u64, Vec<u64>>,
}

/// Deterministic 64-bit mix (splitmix64) used as the consistent hash.
pub fn hash_key(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChordRing {
    /// Build a ring over the given nodes.
    pub fn new<I: IntoIterator<Item = AgentId>>(nodes: I) -> Self {
        let ring: BTreeMap<u64, AgentId> =
            nodes.into_iter().map(|n| (hash_key(n.raw()), n)).collect();
        let mut chord = ChordRing {
            ring,
            fingers: BTreeMap::new(),
        };
        chord.rebuild_fingers();
        chord
    }

    fn rebuild_fingers(&mut self) {
        let keys: Vec<u64> = self.ring.keys().copied().collect();
        self.fingers.clear();
        for &k in &keys {
            let mut table = Vec::with_capacity(M as usize);
            for i in 0..M {
                let start = k.wrapping_add(1u64.wrapping_shl(i));
                table.push(self.successor_key(start));
            }
            self.fingers.insert(k, table);
        }
    }

    /// The ring key of a node.
    pub fn node_key(&self, node: AgentId) -> u64 {
        hash_key(node.raw())
    }

    /// The node responsible for `key` (its successor on the ring).
    pub fn successor(&self, key: u64) -> Option<AgentId> {
        if self.ring.is_empty() {
            return None;
        }
        Some(self.ring[&self.successor_key(key)])
    }

    fn successor_key(&self, key: u64) -> u64 {
        *self
            .ring
            .range(key..)
            .next()
            .map(|(k, _)| k)
            .unwrap_or_else(|| self.ring.keys().next().expect("non-empty ring"))
    }

    /// Greedy finger routing from the ring's first node to the node
    /// responsible for `key`. Returns the node path including start and
    /// destination; `path.len() - 1` is the hop count.
    pub fn route(&self, key: u64) -> Vec<AgentId> {
        let Some(&start_node) = self.ring.values().next() else {
            return Vec::new();
        };
        self.route_from(start_node, key)
            .unwrap_or_else(|| vec![start_node])
    }

    /// Route from a specific node to the owner of `key`.
    pub fn route_from(&self, start: AgentId, key: u64) -> Option<Vec<AgentId>> {
        if self.ring.is_empty() {
            return None;
        }
        let target_key = self.successor_key(key);
        let mut at = self.node_key(start);
        if !self.ring.contains_key(&at) {
            return None;
        }
        let mut path = vec![self.ring[&at]];
        let mut hops = 0;
        while at != target_key && hops < 2 * M {
            hops += 1;
            let table = &self.fingers[&at];
            // Pick the farthest finger that does not overshoot the target
            // (clockwise distance).
            let mut best = self.successor_key(at.wrapping_add(1));
            let mut best_dist = clockwise(at, best);
            let target_dist = clockwise(at, target_key);
            for &f in table {
                let d = clockwise(at, f);
                if d <= target_dist && d > best_dist {
                    best = f;
                    best_dist = d;
                }
            }
            if best == at {
                break;
            }
            at = best;
            path.push(self.ring[&at]);
        }
        Some(path)
    }

    /// Number of nodes on the ring.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// All nodes on the ring in key order.
    pub fn nodes(&self) -> impl Iterator<Item = AgentId> + '_ {
        self.ring.values().copied()
    }
}

/// Clockwise distance from `a` to `b` on the 2^64 ring.
fn clockwise(a: u64, b: u64) -> u64 {
    b.wrapping_sub(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u64) -> AgentId {
        AgentId::new(i)
    }

    fn ring(n: u64) -> ChordRing {
        ChordRing::new((0..n).map(a))
    }

    #[test]
    fn successor_owns_keys_consistently() {
        let r = ring(16);
        for probe in [0u64, 42, u64::MAX / 2, u64::MAX] {
            let owner = r.successor(probe).unwrap();
            // Owner must be a ring member.
            assert!(r.nodes().any(|n| n == owner));
        }
    }

    #[test]
    fn node_key_routes_to_itself() {
        let r = ring(16);
        for i in 0..16 {
            let owner = r.successor(r.node_key(a(i))).unwrap();
            assert_eq!(owner, a(i));
        }
    }

    #[test]
    fn routing_terminates_at_the_owner() {
        let r = ring(64);
        for probe in [7u64, 999, u64::MAX - 3] {
            let owner = r.successor(probe).unwrap();
            let path = r.route_from(a(0), probe).unwrap();
            assert_eq!(*path.last().unwrap(), owner, "probe {probe}");
        }
    }

    #[test]
    fn hop_count_is_logarithmic() {
        let r = ring(256);
        let mut worst = 0usize;
        for probe in (0..100u64).map(|i| hash_key(i * 7919)) {
            let path = r.route_from(a(0), probe).unwrap();
            worst = worst.max(path.len() - 1);
        }
        // log2(256) = 8; allow slack for the greedy variant.
        assert!(worst <= 16, "worst hops = {worst}");
    }

    #[test]
    fn route_from_unknown_node_is_none() {
        let r = ring(8);
        assert!(r.route_from(a(999), 5).is_none());
    }

    #[test]
    fn empty_ring_behaves() {
        let r = ChordRing::new(std::iter::empty());
        assert!(r.is_empty());
        assert_eq!(r.successor(1), None);
        assert!(r.route(1).is_empty());
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        assert_eq!(hash_key(42), hash_key(42));
        let mut keys: Vec<u64> = (0..100).map(hash_key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 100);
    }
}
