//! Push gossip (rumor spreading) — how decentralized reputation updates
//! (e.g. Wang–Vassileva community opinions) disseminate without a center.

use crate::overlay::graph::NeighborGraph;
use rand::seq::IteratorRandom;
use rand::Rng;
use std::collections::BTreeSet;
use wsrep_core::id::AgentId;

/// Result of a gossip run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GossipOutcome {
    /// Nodes that know the rumor at the end (including the source).
    pub informed: BTreeSet<AgentId>,
    /// Rounds executed.
    pub rounds: usize,
    /// Messages transmitted.
    pub messages: u64,
}

/// Spread a rumor from `source`: each round, every informed node pushes to
/// `fanout` random neighbors. Stops when everyone knows it, nothing changed
/// for a full round, or `max_rounds` elapse.
pub fn gossip<R: Rng + ?Sized>(
    rng: &mut R,
    graph: &NeighborGraph,
    source: AgentId,
    fanout: usize,
    max_rounds: usize,
) -> GossipOutcome {
    let mut informed: BTreeSet<AgentId> = BTreeSet::from([source]);
    let mut messages = 0u64;
    let total = graph.len();
    let mut rounds = 0;
    for _ in 0..max_rounds {
        if informed.len() >= total {
            break;
        }
        rounds += 1;
        let mut newly: BTreeSet<AgentId> = BTreeSet::new();
        for &node in &informed {
            let targets = graph.neighbors(node).choose_multiple(rng, fanout);
            for t in targets {
                messages += 1;
                if !informed.contains(&t) {
                    newly.insert(t);
                }
            }
        }
        if newly.is_empty() {
            break;
        }
        informed.extend(newly);
    }
    GossipOutcome {
        informed,
        rounds,
        messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn a(i: u64) -> AgentId {
        AgentId::new(i)
    }

    fn random_graph(n: u64, seed: u64) -> NeighborGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let nodes: Vec<AgentId> = (0..n).map(a).collect();
        NeighborGraph::random_connected(&mut rng, &nodes, 2)
    }

    #[test]
    fn rumor_reaches_everyone_on_connected_graph() {
        let g = random_graph(60, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let out = gossip(&mut rng, &g, a(0), 3, 100);
        assert_eq!(out.informed.len(), 60);
    }

    #[test]
    fn spread_is_logarithmic_ish() {
        let g = random_graph(100, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let out = gossip(&mut rng, &g, a(0), 3, 100);
        assert!(out.rounds <= 20, "rounds={}", out.rounds);
    }

    #[test]
    fn higher_fanout_needs_fewer_rounds() {
        let g = random_graph(100, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let slow = gossip(&mut rng, &g, a(0), 1, 200);
        let fast = gossip(&mut rng, &g, a(0), 5, 200);
        assert!(fast.rounds <= slow.rounds);
    }

    #[test]
    fn isolated_source_stops_immediately() {
        let mut g = NeighborGraph::new();
        g.add_node(a(0));
        g.add_node(a(1));
        let mut rng = StdRng::seed_from_u64(13);
        let out = gossip(&mut rng, &g, a(0), 3, 10);
        assert_eq!(out.informed.len(), 1);
        assert_eq!(out.messages, 0);
    }
}
