//! P-Grid — the binary prefix trie of Aberer et al., the structure both
//! Aberer–Despotovic complaint storage and the Vu et al. decentralized QoS
//! registries are built on.
//!
//! Every peer is responsible for a binary key prefix; together the
//! prefixes partition the key space. Each peer keeps, for every bit of its
//! prefix, a reference to a peer on the *other* side of that split, which
//! makes greedy prefix-correcting routing resolve any key in at most
//! `prefix length` hops. The survey calls this structure "complicated and
//! hard to implement" and "involving a lot of communication" — claims
//! `exp_fig4_cost` and `exp_p2p` quantify with the hop counting here.

use std::collections::BTreeMap;
use wsrep_core::id::AgentId;

/// A static P-Grid over a peer set.
#[derive(Debug, Clone)]
pub struct PGrid {
    /// peer → its binary prefix (as a bit string of 0/1 chars).
    prefixes: BTreeMap<AgentId, String>,
    /// prefix → owning peer.
    by_prefix: BTreeMap<String, AgentId>,
    /// Routing tables: peer → per-level reference peer (one per bit of its
    /// prefix, pointing into the complementary subtree at that level).
    refs: BTreeMap<AgentId, Vec<AgentId>>,
    depth: usize,
}

/// A key in the binary key space: the first `depth` bits of a 64-bit hash.
pub fn key_bits(key: u64, depth: usize) -> String {
    (0..depth)
        .map(|i| {
            if key & (1u64 << (63 - i)) != 0 {
                '1'
            } else {
                '0'
            }
        })
        .collect()
}

impl PGrid {
    /// Build a balanced P-Grid over the peers: depth `⌈log2 n⌉`, peers
    /// assigned prefixes in sorted order (deterministic).
    pub fn new(peers: &[AgentId]) -> Self {
        let n = peers.len();
        let depth = if n <= 1 {
            0
        } else {
            (usize::BITS - (n - 1).leading_zeros()) as usize
        };
        let mut sorted = peers.to_vec();
        sorted.sort();
        let mut prefixes = BTreeMap::new();
        let mut by_prefix = BTreeMap::new();
        for (i, &peer) in sorted.iter().enumerate() {
            // Peer i owns the prefix = i in binary over `depth` bits.
            let prefix: String = (0..depth)
                .map(|b| {
                    if i & (1usize << (depth - 1 - b)) != 0 {
                        '1'
                    } else {
                        '0'
                    }
                })
                .collect();
            prefixes.insert(peer, prefix.clone());
            by_prefix.insert(prefix, peer);
        }
        let mut grid = PGrid {
            prefixes,
            by_prefix,
            refs: BTreeMap::new(),
            depth,
        };
        grid.build_refs(&sorted);
        grid
    }

    fn build_refs(&mut self, peers: &[AgentId]) {
        for &peer in peers {
            let prefix = self.prefixes[&peer].clone();
            let mut table = Vec::with_capacity(prefix.len());
            for level in 0..prefix.len() {
                // Complement bit `level`, keep earlier bits, find any peer
                // under that complementary prefix.
                let mut target: String = prefix[..level].to_string();
                let flipped = if &prefix[level..=level] == "0" {
                    '1'
                } else {
                    '0'
                };
                target.push(flipped);
                let reference = self
                    .by_prefix
                    .range(target.clone()..)
                    .find(|(p, _)| p.starts_with(&target))
                    .map(|(_, &peer)| peer)
                    .unwrap_or(peer);
                table.push(reference);
            }
            self.refs.insert(peer, table);
        }
    }

    /// The trie depth (prefix length).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The peer responsible for a key.
    pub fn responsible(&self, key: u64) -> Option<AgentId> {
        if self.by_prefix.is_empty() {
            return None;
        }
        let bits = key_bits(key, self.depth);
        // Exact prefix match, else the lexicographically nearest (handles
        // non-power-of-two populations where some prefixes are unassigned).
        if let Some(&p) = self.by_prefix.get(&bits) {
            return Some(p);
        }
        self.by_prefix
            .range(..=bits)
            .next_back()
            .or_else(|| self.by_prefix.iter().next())
            .map(|(_, &p)| p)
    }

    /// The prefix a peer is responsible for.
    pub fn prefix_of(&self, peer: AgentId) -> Option<&str> {
        self.prefixes.get(&peer).map(String::as_str)
    }

    /// Greedy prefix-correcting routing from `start` toward the owner of
    /// `key`. Returns the peer path (start included). At most `depth` hops
    /// on a balanced grid.
    pub fn route_from(&self, start: AgentId, key: u64) -> Option<Vec<AgentId>> {
        if !self.prefixes.contains_key(&start) {
            return None;
        }
        let target = self.responsible(key)?;
        let bits = key_bits(key, self.depth);
        let mut at = start;
        let mut path = vec![at];
        let mut guard = 0;
        while at != target && guard <= self.depth + 2 {
            guard += 1;
            let prefix = &self.prefixes[&at];
            // First bit where our prefix disagrees with the key.
            let mismatch = prefix.chars().zip(bits.chars()).position(|(a, b)| a != b);
            let Some(level) = mismatch else {
                break; // we own a prefix of the key: we are responsible
            };
            let next = self.refs[&at][level];
            if next == at {
                break; // no reference into that subtree (unbalanced grid)
            }
            at = next;
            path.push(at);
        }
        Some(path)
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }

    /// All peers.
    pub fn peers(&self) -> impl Iterator<Item = AgentId> + '_ {
        self.prefixes.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u64) -> AgentId {
        AgentId::new(i)
    }

    fn grid(n: u64) -> PGrid {
        let peers: Vec<AgentId> = (0..n).map(a).collect();
        PGrid::new(&peers)
    }

    #[test]
    fn prefixes_partition_the_key_space_for_powers_of_two() {
        let g = grid(8);
        assert_eq!(g.depth(), 3);
        let mut prefixes: Vec<&str> = g.peers().map(|p| g.prefix_of(p).unwrap()).collect();
        prefixes.sort();
        prefixes.dedup();
        assert_eq!(prefixes.len(), 8);
        assert!(prefixes.iter().all(|p| p.len() == 3));
    }

    #[test]
    fn responsibility_is_deterministic_and_total() {
        let g = grid(8);
        for key in [0u64, 1, u64::MAX, 0x8000_0000_0000_0000] {
            let p1 = g.responsible(key).unwrap();
            let p2 = g.responsible(key).unwrap();
            assert_eq!(p1, p2);
        }
    }

    #[test]
    fn routing_reaches_the_responsible_peer() {
        let g = grid(16);
        for i in 0..50u64 {
            let key = crate::overlay::chord::hash_key(i);
            let owner = g.responsible(key).unwrap();
            for start in [a(0), a(7), a(15)] {
                let path = g.route_from(start, key).unwrap();
                assert_eq!(*path.last().unwrap(), owner, "key {key} from {start}");
                assert!(path.len() - 1 <= g.depth(), "hops exceed depth");
            }
        }
    }

    #[test]
    fn non_power_of_two_populations_still_route() {
        let g = grid(11);
        for i in 0..30u64 {
            let key = crate::overlay::chord::hash_key(i * 31);
            let path = g.route_from(a(3), key).unwrap();
            assert!(!path.is_empty());
            assert!(path.len() - 1 <= g.depth() + 2);
        }
    }

    #[test]
    fn single_peer_owns_everything() {
        let g = grid(1);
        assert_eq!(g.depth(), 0);
        assert_eq!(g.responsible(12345), Some(a(0)));
        assert_eq!(g.route_from(a(0), 99).unwrap(), vec![a(0)]);
    }

    #[test]
    fn empty_grid_behaves() {
        let g = PGrid::new(&[]);
        assert!(g.is_empty());
        assert_eq!(g.responsible(5), None);
    }

    #[test]
    fn unknown_start_is_none() {
        let g = grid(4);
        assert!(g.route_from(a(99), 5).is_none());
    }

    #[test]
    fn key_bits_extracts_msb_first() {
        assert_eq!(key_bits(0, 3), "000");
        assert_eq!(key_bits(u64::MAX, 4), "1111");
        assert_eq!(key_bits(1u64 << 63, 2), "10");
    }
}
