//! # wsrep-net — simulated P2P overlays and decentralized protocols
//!
//! Section 4 of the paper contrasts centralized and decentralized trust
//! systems: decentralized ones must "cooperate and share the
//! responsibilities to manage reputation" and pay for it in messages and
//! complexity, while centralized registries are simpler but a single point
//! of failure. This crate is the substrate that makes those claims
//! measurable:
//!
//! * [`network`] — an in-process message-passing network with latency,
//!   loss, node failure and full message/byte accounting;
//! * [`overlay`] — topologies and routing: random graphs with
//!   [`overlay::flood`]ing and [`overlay::gossip`], a Chord-like DHT
//!   ([`overlay::chord`]) and the P-Grid binary trie
//!   ([`overlay::pgrid`]) that Vu et al. and Aberer–Despotovic build on;
//! * [`churn`] — join/leave dynamics;
//! * [`protocols`] — decentralized embodiments of the mechanisms whose
//!   *math* lives in `wsrep-core`: distributed EigenTrust, XRep-style
//!   polling, Yu–Singh referral search, and the Vu et al. decentralized
//!   QoS registry over P-Grid.
//!
//! ```
//! use wsrep_net::overlay::chord::ChordRing;
//!
//! let ring = ChordRing::new((0..16).map(wsrep_core::AgentId::new));
//! let path = ring.route(ring.node_key(wsrep_core::AgentId::new(3)));
//! assert!(!path.is_empty());
//! ```

pub mod churn;
pub mod network;
pub mod overlay;
pub mod protocols;

pub use network::{NetStats, SimNetwork};
