//! The Vu–Hauswirth–Aberer decentralized QoS registry over P-Grid.
//!
//! "They use some dedicated QoS registries to collect QoS feedbacks from
//! consumers. Although these QoS registries are organized in a P2P way,
//! they are based on a specially designed P-Grid structure. Each registry
//! is responsible for managing reputation for a part of service
//! providers." (Section 3.2 of the survey.) Reports about a service are
//! routed to the registry peer responsible for the service's key; queries
//! route the same way; each registry runs the Vu credibility computation
//! ([`wsrep_core::mechanisms::vu`]) over the reports it stores.

use crate::overlay::chord::hash_key;
use crate::overlay::pgrid::PGrid;
use std::collections::BTreeMap;
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ServiceId, SubjectId};
use wsrep_core::mechanisms::vu::VuMechanism;
use wsrep_core::trust::TrustEstimate;
use wsrep_core::ReputationMechanism;
use wsrep_qos::preference::Preferences;
use wsrep_qos::value::QosVector;

/// The decentralized QoS registry federation.
#[derive(Debug)]
pub struct PGridQosRegistry {
    grid: PGrid,
    registries: BTreeMap<AgentId, VuMechanism>,
    messages: u64,
}

impl PGridQosRegistry {
    /// Build over the given registry peers.
    pub fn new(registry_peers: &[AgentId]) -> Self {
        let grid = PGrid::new(registry_peers);
        let registries = registry_peers
            .iter()
            .map(|&p| (p, VuMechanism::new()))
            .collect();
        PGridQosRegistry {
            grid,
            registries,
            messages: 0,
        }
    }

    /// Total routing messages spent so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Reports stored per registry peer — the "share the responsibilities"
    /// claim made measurable: a balanced trie spreads the load.
    pub fn load(&self) -> Vec<(AgentId, usize)> {
        self.registries
            .iter()
            .map(|(&p, m)| (p, m.feedback_count()))
            .collect()
    }

    /// Number of registry peers.
    pub fn len(&self) -> usize {
        self.grid.len()
    }

    /// Whether there are no registries.
    pub fn is_empty(&self) -> bool {
        self.grid.is_empty()
    }

    fn service_key(service: ServiceId) -> u64 {
        hash_key(service.raw() ^ 0xDEAD_BEEF_CAFE_F00D)
    }

    /// The entry registry a consumer first contacts (by hash of its id).
    fn entry_peer(&self, who: AgentId) -> Option<AgentId> {
        let peers: Vec<AgentId> = self.grid.peers().collect();
        if peers.is_empty() {
            return None;
        }
        Some(peers[(hash_key(who.raw()) % peers.len() as u64) as usize])
    }

    /// The registry responsible for a service.
    pub fn responsible(&self, service: ServiceId) -> Option<AgentId> {
        self.grid.responsible(Self::service_key(service))
    }

    /// Route a consumer's QoS report to the responsible registry. Returns
    /// the number of routing hops, or `None` with no registries.
    pub fn submit_report(&mut self, report: &Feedback) -> Option<usize> {
        let service = report.subject.as_service()?;
        let entry = self.entry_peer(report.rater)?;
        let path = self.grid.route_from(entry, Self::service_key(service))?;
        let hops = path.len().saturating_sub(1) + 1; // + consumer → entry
        self.messages += hops as u64;
        let owner = *path.last()?;
        self.registries.get_mut(&owner)?.submit(report);
        Some(hops)
    }

    /// Feed a trusted monitoring agent's probe to the responsible registry
    /// (monitors know the grid and route directly).
    pub fn submit_trusted_probe(&mut self, service: ServiceId, observed: QosVector) -> Option<()> {
        let owner = self.responsible(service)?;
        self.messages += 1;
        self.registries
            .get_mut(&owner)?
            .submit_trusted(service, observed);
        Some(())
    }

    /// Query the reputation of a service on behalf of `observer` with the
    /// given preferences. Returns the estimate and the hops spent.
    pub fn query(
        &mut self,
        observer: AgentId,
        service: ServiceId,
        prefs: Option<&Preferences>,
    ) -> (Option<TrustEstimate>, usize) {
        let Some(entry) = self.entry_peer(observer) else {
            return (None, 0);
        };
        let Some(path) = self.grid.route_from(entry, Self::service_key(service)) else {
            return (None, 0);
        };
        let hops = path.len().saturating_sub(1) + 2; // there + answer back
        self.messages += hops as u64;
        let Some(owner) = path.last() else {
            return (None, hops);
        };
        let Some(registry) = self.registries.get_mut(owner) else {
            return (None, hops);
        };
        if let Some(p) = prefs {
            registry.set_profile(observer, p.clone());
            (
                registry.personalized(observer, SubjectId::Service(service)),
                hops,
            )
        } else {
            (registry.global(SubjectId::Service(service)), hops)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrep_core::time::Time;
    use wsrep_qos::metric::Metric;

    fn a(i: u64) -> AgentId {
        AgentId::new(i)
    }

    fn registry(n: u64) -> PGridQosRegistry {
        let peers: Vec<AgentId> = (100..100 + n).map(a).collect();
        PGridQosRegistry::new(&peers)
    }

    fn report(rater: u64, service: u64, rt: f64) -> Feedback {
        Feedback::scored(a(rater), ServiceId::new(service), 0.5, Time::ZERO)
            .with_observed(QosVector::from_pairs([(Metric::ResponseTime, rt)]))
    }

    #[test]
    fn reports_land_at_the_responsible_registry_and_answer_queries() {
        let mut reg = registry(8);
        for r in 0..5 {
            reg.submit_report(&report(r, 1, 100.0)).unwrap();
            reg.submit_report(&report(r, 2, 500.0)).unwrap();
        }
        let prefs = Preferences::uniform([Metric::ResponseTime]);
        let (fast, _) = reg.query(a(50), ServiceId::new(1), Some(&prefs));
        let (slow, _) = reg.query(a(50), ServiceId::new(2), Some(&prefs));
        // Each registry only sees its own services; both answer, and the
        // fast one is at least as good in its own frame.
        assert!(fast.is_some());
        assert!(slow.is_some());
    }

    #[test]
    fn same_service_always_routes_to_same_registry() {
        let mut reg = registry(8);
        let owner = reg.responsible(ServiceId::new(7)).unwrap();
        for r in 0..10 {
            reg.submit_report(&report(r, 7, 100.0));
        }
        assert_eq!(reg.responsible(ServiceId::new(7)), Some(owner));
        // All 10 reports are in that registry.
        let m = &reg.registries[&owner];
        assert_eq!(m.feedback_count(), 10);
    }

    #[test]
    fn hops_are_bounded_by_grid_depth() {
        let mut reg = registry(16);
        let hops = reg.submit_report(&report(0, 3, 100.0)).unwrap();
        assert!(hops <= 4 + 1 + 2, "hops={hops}");
    }

    #[test]
    fn trusted_probes_reach_the_registry() {
        let mut reg = registry(4);
        reg.submit_trusted_probe(
            ServiceId::new(1),
            QosVector::from_pairs([(Metric::ResponseTime, 100.0)]),
        )
        .unwrap();
        let (est, _) = reg.query(a(9), ServiceId::new(1), None);
        assert!(est.is_some());
    }

    #[test]
    fn load_reports_storage_per_registry() {
        let mut reg = registry(8);
        for svc in 0..40u64 {
            reg.submit_report(&report(0, svc, 100.0));
        }
        let load = reg.load();
        assert_eq!(load.len(), 8);
        let total: usize = load.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 40);
        // Hashing spreads the 40 services over the 8 registries: nobody
        // holds everything.
        let max = load.iter().map(|&(_, n)| n).max().unwrap();
        assert!(max < 40, "one registry hoards all reports");
    }

    #[test]
    fn message_accounting_accumulates() {
        let mut reg = registry(8);
        let before = reg.messages();
        reg.submit_report(&report(0, 1, 100.0));
        reg.query(a(2), ServiceId::new(1), None);
        assert!(reg.messages() > before);
    }

    #[test]
    fn empty_federation_answers_nothing() {
        let mut reg = PGridQosRegistry::new(&[]);
        assert!(reg.is_empty());
        assert_eq!(reg.submit_report(&report(0, 1, 1.0)), None);
        let (est, hops) = reg.query(a(0), ServiceId::new(1), None);
        assert_eq!(est, None);
        assert_eq!(hops, 0);
    }

    #[test]
    fn unreported_service_has_no_estimate() {
        let mut reg = registry(4);
        let (est, _) = reg.query(a(0), ServiceId::new(42), None);
        assert!(est.is_none());
    }
}
