//! XRep polling over flooding: the network embodiment of
//! [`wsrep_core::mechanisms::damiani`].
//!
//! The poller floods a `Poll(subject)` query with a TTL; every reached
//! peer that holds a local opinion answers with its vote, which travels
//! back along the flood path (one message per hop). The tally is then
//! weighted with the poller's learned voter credibilities.

use crate::overlay::flood::{flood, FloodOutcome};
use crate::overlay::graph::NeighborGraph;
use wsrep_core::id::{AgentId, SubjectId};
use wsrep_core::mechanisms::damiani::{DamianiMechanism, Vote};
use wsrep_core::trust::{evidence_confidence, TrustEstimate, TrustValue};

/// Result of one network poll.
#[derive(Debug, Clone, PartialEq)]
pub struct PollOutcome {
    /// The poller's resulting trust estimate, if anyone voted.
    pub estimate: Option<TrustEstimate>,
    /// Votes gathered as `(voter, vote, hops away)`.
    pub votes: Vec<(AgentId, Vote, usize)>,
    /// Total messages: flood + responses.
    pub messages: u64,
}

/// Run an XRep poll for `poller` about `subject` over `graph`, reading
/// opinions and credibilities from `tables` (the Damiani bookkeeping).
pub fn network_poll(
    graph: &NeighborGraph,
    tables: &DamianiMechanism,
    poller: AgentId,
    subject: SubjectId,
    ttl: usize,
) -> PollOutcome {
    let FloodOutcome { reached, messages } = flood(graph, poller, ttl);
    let mut votes = Vec::new();
    let mut response_messages = 0u64;
    let mut plus = 0.0;
    let mut minus = 0.0;
    for (&peer, &hops) in &reached {
        let Some(vote) = tables.vote_of(peer, subject) else {
            continue;
        };
        // The response travels back hop-by-hop.
        response_messages += hops as u64;
        let w = tables.voter_credibility(poller, peer);
        match vote {
            Vote::Plus => plus += w,
            Vote::Minus => minus += w,
        }
        votes.push((peer, vote, hops));
    }
    let estimate = if votes.is_empty() {
        None
    } else {
        Some(TrustEstimate::new(
            TrustValue::new(plus / (plus + minus)),
            evidence_confidence(votes.len(), 3.0),
        ))
    };
    PollOutcome {
        estimate,
        votes,
        messages: messages + response_messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrep_core::feedback::Feedback;
    use wsrep_core::id::ServiceId;
    use wsrep_core::time::Time;
    use wsrep_core::ReputationMechanism;

    fn a(i: u64) -> AgentId {
        AgentId::new(i)
    }

    fn s(i: u64) -> SubjectId {
        ServiceId::new(i).into()
    }

    /// Star topology around the poller with five opinionated peers.
    fn setup() -> (NeighborGraph, DamianiMechanism) {
        let mut g = NeighborGraph::new();
        for i in 1..=5 {
            g.add_edge(a(0), a(i));
        }
        let mut tables = DamianiMechanism::new();
        for i in 1..=4 {
            tables.submit(&Feedback::scored(a(i), ServiceId::new(9), 0.9, Time::ZERO));
        }
        tables.submit(&Feedback::scored(a(5), ServiceId::new(9), 0.1, Time::ZERO));
        (g, tables)
    }

    #[test]
    fn poll_collects_votes_and_counts_messages() {
        let (g, tables) = setup();
        let out = network_poll(&g, &tables, a(0), s(9), 2);
        assert_eq!(out.votes.len(), 5);
        // 5 query messages + 5 one-hop responses.
        assert_eq!(out.messages, 10);
        let est = out.estimate.unwrap();
        assert!(est.value.get() > 0.7);
    }

    #[test]
    fn ttl_zero_reaches_nobody() {
        let (g, tables) = setup();
        let out = network_poll(&g, &tables, a(0), s(9), 0);
        assert!(out.votes.is_empty());
        assert_eq!(out.estimate, None);
    }

    #[test]
    fn deeper_voters_cost_more_response_messages() {
        // Line: 0 - 1 - 2, only peer 2 has an opinion.
        let mut g = NeighborGraph::new();
        g.add_edge(a(0), a(1));
        g.add_edge(a(1), a(2));
        let mut tables = DamianiMechanism::new();
        tables.submit(&Feedback::scored(a(2), ServiceId::new(9), 0.9, Time::ZERO));
        let out = network_poll(&g, &tables, a(0), s(9), 3);
        assert_eq!(out.votes, vec![(a(2), Vote::Plus, 2)]);
        // 2 flood messages forward + 2 hops back.
        assert_eq!(out.messages, 4);
    }

    #[test]
    fn credibility_weighting_applies_at_the_poller() {
        let (g, mut tables) = setup();
        // The poller has learned that peers 1..4 always lie.
        for i in 1..=4 {
            for _ in 0..10 {
                tables.judge_vote(a(0), a(i), Vote::Plus, false);
            }
            for _ in 0..10 {
                // Peer 5 voted Minus and the outcome really was bad: agreed.
                tables.judge_vote(a(0), a(5), Vote::Minus, false);
            }
        }
        let out = network_poll(&g, &tables, a(0), s(9), 2);
        let est = out.estimate.unwrap();
        assert!(est.value.get() < 0.5, "liars discounted: {}", est.value);
    }
}
