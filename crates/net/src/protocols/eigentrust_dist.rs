//! Distributed EigenTrust: the power iteration of
//! [`wsrep_core::mechanisms::eigentrust`] executed as actual messages.
//!
//! Each round, every peer `i` sends each peer `j` it locally trusts a
//! *trust share* `c_ij · t_i`; receivers sum their incoming shares into
//! their next trust value (blended with the pre-trust distribution). The
//! message count per round is the number of non-zero local-trust entries —
//! exactly the communication cost the centralized variant avoids.

use crate::network::SimNetwork;
use std::collections::BTreeMap;
use wsrep_core::id::AgentId;

/// One trust-share message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrustShare(pub f64);

/// Result of a distributed EigenTrust run.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedOutcome {
    /// Converged global trust per peer (sums to ~1 over live peers).
    pub trust: BTreeMap<AgentId, f64>,
    /// Iterations executed.
    pub rounds: usize,
    /// Messages sent during the run.
    pub messages: u64,
}

/// The distributed EigenTrust protocol driver.
#[derive(Debug, Clone)]
pub struct DistributedEigenTrust {
    /// Normalized local trust rows `c_i`.
    rows: BTreeMap<AgentId, BTreeMap<AgentId, f64>>,
    pre_trusted: Vec<AgentId>,
    alpha: f64,
    epsilon: f64,
    max_rounds: usize,
}

impl DistributedEigenTrust {
    /// Build from normalized local-trust rows and a pre-trusted set.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `\[0, 1\]` or `pre_trusted` is empty.
    pub fn new(
        rows: BTreeMap<AgentId, BTreeMap<AgentId, f64>>,
        pre_trusted: Vec<AgentId>,
        alpha: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        assert!(
            !pre_trusted.is_empty(),
            "need at least one pre-trusted peer"
        );
        DistributedEigenTrust {
            rows,
            pre_trusted,
            alpha,
            epsilon: 1e-6,
            max_rounds: 100,
        }
    }

    /// All peers known to the protocol (row owners and rated peers).
    pub fn peers(&self) -> Vec<AgentId> {
        let mut ps: Vec<AgentId> = self
            .rows
            .iter()
            .flat_map(|(i, row)| std::iter::once(*i).chain(row.keys().copied()))
            .chain(self.pre_trusted.iter().copied())
            .collect();
        ps.sort();
        ps.dedup();
        ps
    }

    /// Run the protocol over `net`. Dead peers neither send nor receive;
    /// their trust mass effectively redistributes via the pre-trust vector.
    pub fn run(&self, net: &mut SimNetwork<TrustShare>) -> DistributedOutcome {
        let peers = self.peers();
        for &p in &peers {
            net.add_node(p);
        }
        let live: Vec<AgentId> = peers.iter().copied().filter(|&p| net.is_alive(p)).collect();
        let n_live = live.len().max(1);
        let p_mass: BTreeMap<AgentId, f64> = {
            let live_pre: Vec<AgentId> = self
                .pre_trusted
                .iter()
                .copied()
                .filter(|&p| net.is_alive(p))
                .collect();
            if live_pre.is_empty() {
                live.iter().map(|&p| (p, 1.0 / n_live as f64)).collect()
            } else {
                let k = live_pre.len() as f64;
                live_pre.into_iter().map(|p| (p, 1.0 / k)).collect()
            }
        };
        let mut t: BTreeMap<AgentId, f64> = live
            .iter()
            .map(|&p| (p, p_mass.get(&p).copied().unwrap_or(0.0)))
            .collect();
        let start_sent = net.stats().sent;
        let mut rounds = 0;
        for _ in 0..self.max_rounds {
            rounds += 1;
            // Send shares.
            for &i in &live {
                let ti = t[&i];
                let row = self.rows.get(&i);
                let has_links = row.map(|r| !r.is_empty()).unwrap_or(false);
                if has_links {
                    for (&j, &c) in row.unwrap() {
                        net.send(i, j, TrustShare(c * ti), 16);
                    }
                } else {
                    // Dangling peer: defer to the pre-trust distribution.
                    for (&j, &pj) in &p_mass {
                        net.send(i, j, TrustShare(pj * ti), 16);
                    }
                }
            }
            net.settle(64);
            // Receive and update.
            let mut next: BTreeMap<AgentId, f64> = BTreeMap::new();
            for &j in &live {
                let incoming: f64 = net.drain_inbox(j).iter().map(|e| e.payload.0).sum();
                let pj = p_mass.get(&j).copied().unwrap_or(0.0);
                next.insert(j, (1.0 - self.alpha) * incoming + self.alpha * pj);
            }
            // Renormalize over live peers (messages to dead peers vanish).
            let total: f64 = next.values().sum();
            if total > 0.0 {
                for v in next.values_mut() {
                    *v /= total;
                }
            }
            let delta: f64 = live.iter().map(|p| (t[p] - next[p]).abs()).sum();
            t = next;
            if delta < self.epsilon {
                break;
            }
        }
        DistributedOutcome {
            trust: t,
            rounds,
            messages: net.stats().sent - start_sent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrep_core::feedback::Feedback;
    use wsrep_core::id::SubjectId;
    use wsrep_core::mechanisms::eigentrust::EigenTrustMechanism;
    use wsrep_core::time::Time;
    use wsrep_core::ReputationMechanism;

    fn a(i: u64) -> AgentId {
        AgentId::new(i)
    }

    /// Local-trust rows for 5 good peers praising each other and snubbing
    /// peer 5.
    fn rows() -> BTreeMap<AgentId, BTreeMap<AgentId, f64>> {
        let mut rows = BTreeMap::new();
        for i in 0..5u64 {
            let mut row = BTreeMap::new();
            for j in 0..5u64 {
                if i != j {
                    row.insert(a(j), 0.25);
                }
            }
            rows.insert(a(i), row);
        }
        rows.insert(a(5), BTreeMap::new()); // the snubbed peer, dangling
        rows
    }

    #[test]
    fn distributed_run_matches_centralized_ordering() {
        let det = DistributedEigenTrust::new(rows(), vec![a(0)], 0.15);
        let mut net = SimNetwork::ideal(7);
        let out = det.run(&mut net);
        let bad = out.trust[&a(5)];
        for i in 0..5 {
            assert!(out.trust[&a(i)] > bad);
        }
        let total: f64 = out.trust.values().sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!(out.messages > 0);
    }

    #[test]
    fn agrees_with_the_centralized_computation() {
        // Feed the same ratings into the centralized mechanism and compare
        // rankings.
        let mut central = EigenTrustMechanism::new();
        central.pre_trust(a(0));
        for i in 0..5u64 {
            for j in 0..5u64 {
                if i != j {
                    central.submit(&Feedback::scored(a(i), a(j), 0.9, Time::ZERO));
                }
            }
            central.submit(&Feedback::scored(a(i), a(5), 0.1, Time::ZERO));
        }
        let mut central_rows = BTreeMap::new();
        for i in 0..6u64 {
            central_rows.insert(
                a(i),
                central
                    .local_trust(SubjectId::Agent(a(i)))
                    .into_iter()
                    .filter_map(|(s, v)| s.as_agent().map(|ag| (ag, v)))
                    .collect::<BTreeMap<_, _>>(),
            );
        }
        let det = DistributedEigenTrust::new(central_rows, vec![a(0)], 0.15);
        let mut net = SimNetwork::ideal(9);
        let dist = det.run(&mut net);
        let central_trust = central.global_trust();
        // Rankings agree: peer 5 last in both.
        let central_bad = central_trust[&SubjectId::Agent(a(5))];
        assert!(central_trust
            .iter()
            .all(|(&s, &v)| s == SubjectId::Agent(a(5)) || v >= central_bad));
        let dist_bad = dist.trust[&a(5)];
        assert!(dist.trust.iter().all(|(&p, &v)| p == a(5) || v >= dist_bad));
        // Values close (both solve the same fixed point).
        for i in 0..6u64 {
            let c = central_trust[&SubjectId::Agent(a(i))];
            let d = dist.trust[&a(i)];
            assert!((c - d).abs() < 0.05, "peer {i}: central={c} dist={d}");
        }
    }

    #[test]
    fn message_cost_scales_with_edges_and_rounds() {
        let det = DistributedEigenTrust::new(rows(), vec![a(0)], 0.15);
        let mut net = SimNetwork::ideal(3);
        let out = det.run(&mut net);
        // 5 peers × 4 links + 1 dangling × |p| per round.
        let per_round = 5 * 4 + 1;
        assert_eq!(out.messages, (per_round * out.rounds) as u64);
    }

    #[test]
    fn dead_peers_are_excluded() {
        let det = DistributedEigenTrust::new(rows(), vec![a(0)], 0.15);
        let mut net = SimNetwork::ideal(11);
        for p in det.peers() {
            net.add_node(p);
        }
        net.fail(a(3));
        let out = det.run(&mut net);
        assert!(!out.trust.contains_key(&a(3)));
        let total: f64 = out.trust.values().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn lossy_network_still_converges_roughly() {
        let det = DistributedEigenTrust::new(rows(), vec![a(0)], 0.15);
        let mut net = SimNetwork::new(0, 0.05, 5);
        let out = det.run(&mut net);
        let bad = out.trust[&a(5)];
        let good_total: f64 = (0..5).map(|i| out.trust[&a(i)]).sum();
        assert!(good_total > bad * 4.0);
    }

    #[test]
    #[should_panic(expected = "need at least one pre-trusted peer")]
    fn empty_pre_trust_panics() {
        DistributedEigenTrust::new(BTreeMap::new(), vec![], 0.15);
    }
}
