//! Decentralized protocol embodiments of the surveyed mechanisms.
//!
//! The *math* of each mechanism lives in `wsrep-core`; these modules run it
//! as message-passing protocols over the simulated substrate so the
//! experiments can report the communication cost the paper attributes to
//! decentralization:
//!
//! * [`eigentrust_dist`] — EigenTrust's power iteration as per-round trust
//!   share messages between peers;
//! * [`poll`] — XRep (Damiani et al.) polling over TTL flooding;
//! * [`referral`] — Yu–Singh witness location through referral chains;
//! * [`pgrid_rep`] — the Vu et al. decentralized QoS registries over a
//!   P-Grid, with report and query routing.

pub mod eigentrust_dist;
pub mod pgrid_rep;
pub mod poll;
pub mod referral;
