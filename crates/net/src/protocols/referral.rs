//! Yu–Singh witness location through referral chains.
//!
//! An agent that lacks first-hand evidence about a subject asks its
//! acquaintances; each either *testifies* (it has evidence) or *refers*
//! the query to its own acquaintances, up to a depth bound. The survey
//! classifies Yu & Singh as decentralized/personalized precisely because
//! the witness set — and therefore the answer — depends on where in the
//! acquaintance network the asker sits.

use crate::overlay::graph::NeighborGraph;
use std::collections::{BTreeSet, VecDeque};
use wsrep_core::id::AgentId;

/// Result of a referral search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReferralOutcome {
    /// Witnesses found, with the referral depth at which each was reached.
    pub witnesses: Vec<(AgentId, usize)>,
    /// Messages exchanged (queries + referrals + testimonies).
    pub messages: u64,
}

/// Search for witnesses about a subject from `asker`, where `has_evidence`
/// says whether a given agent can testify. Stops at `max_depth` or after
/// `enough` witnesses are found.
pub fn find_witnesses<F>(
    graph: &NeighborGraph,
    asker: AgentId,
    max_depth: usize,
    enough: usize,
    has_evidence: F,
) -> ReferralOutcome
where
    F: Fn(AgentId) -> bool,
{
    let mut witnesses = Vec::new();
    let mut messages = 0u64;
    let mut visited: BTreeSet<AgentId> = BTreeSet::from([asker]);
    let mut queue: VecDeque<(AgentId, usize)> = VecDeque::from([(asker, 0)]);
    while let Some((at, depth)) = queue.pop_front() {
        if depth >= max_depth || witnesses.len() >= enough {
            continue;
        }
        for n in graph.neighbors(at) {
            if !visited.insert(n) {
                continue;
            }
            messages += 1; // the query/referral hop
            if has_evidence(n) {
                messages += 1; // the testimony reply
                witnesses.push((n, depth + 1));
                if witnesses.len() >= enough {
                    break;
                }
            } else {
                queue.push_back((n, depth + 1));
            }
        }
    }
    ReferralOutcome {
        witnesses,
        messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u64) -> AgentId {
        AgentId::new(i)
    }

    /// Chain 0-1-2-3-4 where only 3 and 4 hold evidence.
    fn chain() -> NeighborGraph {
        let mut g = NeighborGraph::new();
        for i in 0..4 {
            g.add_edge(a(i), a(i + 1));
        }
        g
    }

    #[test]
    fn witnesses_found_through_referrals() {
        let g = chain();
        let out = find_witnesses(&g, a(0), 5, 10, |p| p == a(3) || p == a(4));
        assert_eq!(out.witnesses, vec![(a(3), 3)]);
        // 4 never reached: 3 testifies and does not refer onward.
        assert!(out.messages >= 4);
    }

    #[test]
    fn depth_bound_limits_search() {
        let g = chain();
        let out = find_witnesses(&g, a(0), 2, 10, |p| p == a(3));
        assert!(out.witnesses.is_empty());
    }

    #[test]
    fn enough_witnesses_stops_early() {
        // Star: everyone adjacent to the asker has evidence.
        let mut g = NeighborGraph::new();
        for i in 1..10 {
            g.add_edge(a(0), a(i));
        }
        let out = find_witnesses(&g, a(0), 3, 2, |_| true);
        assert_eq!(out.witnesses.len(), 2);
        assert!(out.messages <= 6);
    }

    #[test]
    fn witnesses_do_not_refer_onward() {
        // 0 - 1(witness) - 2(witness): 2 unreachable because 1 testifies.
        let mut g = NeighborGraph::new();
        g.add_edge(a(0), a(1));
        g.add_edge(a(1), a(2));
        let out = find_witnesses(&g, a(0), 5, 10, |p| p != a(0));
        assert_eq!(out.witnesses, vec![(a(1), 1)]);
    }

    #[test]
    fn isolated_asker_finds_nothing() {
        let mut g = NeighborGraph::new();
        g.add_node(a(0));
        let out = find_witnesses(&g, a(0), 3, 5, |_| true);
        assert!(out.witnesses.is_empty());
        assert_eq!(out.messages, 0);
    }
}
