//! In-process cluster integration: a primary and two replicas on
//! loopback. Covers catch-up from a cold log, following the live tail,
//! bounded-staleness stats over the wire, the read-only contract, and a
//! replica restart resuming from its own journal.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use wsrep_cluster::{Primary, PrimaryConfig, Replica, ReplicaConfig};
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ProviderId, ServiceId};
use wsrep_core::time::Time;
use wsrep_qos::metric::Metric;
use wsrep_qos::preference::Preferences;
use wsrep_qos::value::QosVector;
use wsrep_serve::ReputationService;
use wsrep_server::{Client, ClientError, ErrorCode, ReplRole, RetryPolicy};
use wsrep_sim::registry::Listing;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wsrep-cluster-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn listing(service: u64, category: u32) -> Listing {
    Listing {
        service: ServiceId::new(service),
        provider: ProviderId::new(service),
        category,
        advertised: QosVector::from_pairs([(Metric::Price, 2.0), (Metric::Accuracy, 0.9)]),
    }
}

fn feedback(rater: u64, service: u64, score: f64, at: u64) -> Feedback {
    Feedback::scored(
        AgentId::new(rater),
        ServiceId::new(service),
        score,
        Time::new(at),
    )
}

fn journaled_service(dir: &PathBuf) -> Arc<ReputationService> {
    Arc::new(
        ReputationService::builder()
            .shards(4)
            .journal(dir)
            .try_build()
            .expect("journaled service"),
    )
}

fn replica_config(id: u64) -> ReplicaConfig {
    ReplicaConfig {
        shards: 4,
        replica_id: id,
        poll_interval: Duration::from_millis(5),
        reconnect: RetryPolicy {
            base: Duration::from_millis(20),
            cap: Duration::from_millis(100),
            ..RetryPolicy::unbounded()
        },
        ..ReplicaConfig::default()
    }
}

/// Poll until the replica's applied watermark reaches `lsn` (or panic
/// after `secs` seconds).
fn await_catch_up(replica: &Replica, lsn: u64, secs: u64) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        let stats = replica.replication_stats();
        if stats.local_durable_lsn >= lsn {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "replica stuck at LSN {} waiting for {lsn}",
            stats.local_durable_lsn
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn replicas_catch_up_then_follow_the_live_tail() {
    let primary_dir = temp_dir("tail-primary");
    let service = journaled_service(&primary_dir);
    let primary = Primary::start(
        Arc::clone(&service),
        "127.0.0.1:0",
        PrimaryConfig::default(),
    )
    .expect("primary");
    let primary_addr = primary.local_addr().to_string();

    // History written *before* any replica exists: catch-up path.
    service.publish(listing(1, 0)).expect("publish");
    service.publish(listing(2, 0)).expect("publish");
    for i in 0..64u64 {
        service
            .ingest(feedback(i, 1 + (i % 2), 0.3 + (i as f64 % 7.0) / 10.0, i))
            .expect("ingest");
    }
    service.flush();
    let after_history = service.durable_lsn().expect("journaled");

    let dir_a = temp_dir("tail-replica-a");
    let dir_b = temp_dir("tail-replica-b");
    let replica_a = Replica::start(&primary_addr[..], "127.0.0.1:0", &dir_a, replica_config(1))
        .expect("replica a");
    let replica_b = Replica::start(&primary_addr[..], "127.0.0.1:0", &dir_b, replica_config(2))
        .expect("replica b");
    await_catch_up(&replica_a, after_history, 10);
    await_catch_up(&replica_b, after_history, 10);

    // Live tail: records shipped while the replicas are attached.
    for i in 64..96u64 {
        service
            .ingest(feedback(i, 1 + (i % 2), 0.8, i))
            .expect("ingest tail");
    }
    service.flush();
    let after_tail = service.durable_lsn().expect("journaled");
    await_catch_up(&replica_a, after_tail, 10);
    await_catch_up(&replica_b, after_tail, 10);

    // Every replica's read surface answers exactly like the primary.
    let prefs = Preferences::default();
    for replica in [&replica_a, &replica_b] {
        for subject in [ServiceId::new(1), ServiceId::new(2)] {
            let ours = service.score(subject.into()).expect("primary score");
            let theirs = replica
                .service()
                .score(subject.into())
                .expect("replica score");
            assert!(
                (ours.value.get() - theirs.value.get()).abs() < 1e-9,
                "replica diverged on {subject:?}: {} vs {}",
                ours.value.get(),
                theirs.value.get()
            );
        }
        let ours = service.top_k(0, &prefs, 2);
        let theirs = replica.service().top_k(0, &prefs, 2);
        assert_eq!(ours.len(), theirs.len());
        for (a, b) in ours.iter().zip(theirs.iter()) {
            assert_eq!(a.service, b.service, "top-k order diverged");
        }
    }

    // Staleness is visible over the wire: the replica's Stats response
    // carries role, watermarks, and (caught-up) zero lag.
    let mut client = Client::connect(&replica_a.local_addr().to_string()[..]).expect("connect");
    let stats = client.stats().expect("stats");
    let repl = stats.replication.expect("replica advertises replication");
    assert_eq!(repl.role, ReplRole::Replica);
    assert!(repl.connected, "link is up");
    assert_eq!(repl.local_durable_lsn, after_tail);
    assert_eq!(repl.lag, 0, "caught up ⇒ zero staleness");

    // The primary's side counts its followers.
    let mut client = Client::connect(&primary_addr[..]).expect("connect primary");
    let stats = client.stats().expect("primary stats");
    let repl = stats.replication.expect("primary advertises replication");
    assert_eq!(repl.role, ReplRole::Primary);
    assert_eq!(repl.replicas, 2, "both replicas heartbeated recently");

    replica_a.join();
    replica_b.join();
    primary.shutdown();
    primary.join();
    for dir in [primary_dir, dir_a, dir_b] {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn a_partitioned_primary_ships_a_dense_merged_stream() {
    let primary_dir = temp_dir("part-primary");
    // Four writer groups: the primary's journal is partitioned over
    // group-NNN/ subdirectories and replication reads it through the
    // merged ship cursor. The replica stays single-log and re-journals
    // the shipped stream sequentially, so its LSNs must still equal the
    // primary's.
    let service = Arc::new(
        ReputationService::builder()
            .shards(4)
            .writer_groups(4)
            .journal(&primary_dir)
            .try_build()
            .expect("partitioned journaled service"),
    );
    let primary = Primary::start(
        Arc::clone(&service),
        "127.0.0.1:0",
        PrimaryConfig::default(),
    )
    .expect("primary");
    let primary_addr = primary.local_addr().to_string();

    service.publish(listing(1, 0)).expect("publish");
    service.publish(listing(2, 0)).expect("publish");
    for i in 0..96u64 {
        service
            .ingest(feedback(i, 1 + (i % 2), 0.3 + (i as f64 % 7.0) / 10.0, i))
            .expect("ingest");
    }
    service.flush();
    let after_history = service.durable_lsn().expect("journaled");
    assert_eq!(after_history, 98, "crash-free watermark covers everything");

    let dir = temp_dir("part-replica");
    let replica =
        Replica::start(&primary_addr[..], "127.0.0.1:0", &dir, replica_config(1)).expect("replica");
    await_catch_up(&replica, after_history, 10);

    // Live tail shipped while attached, still merged across groups.
    for i in 96..128u64 {
        service
            .ingest(feedback(i, 1 + (i % 2), 0.8, i))
            .expect("ingest tail");
    }
    service.flush();
    let after_tail = service.durable_lsn().expect("journaled");
    await_catch_up(&replica, after_tail, 10);

    for subject in [ServiceId::new(1), ServiceId::new(2)] {
        let ours = service.score(subject.into()).expect("primary score");
        let theirs = replica
            .service()
            .score(subject.into())
            .expect("replica score");
        assert!(
            (ours.value.get() - theirs.value.get()).abs() < 1e-9,
            "replica diverged on {subject:?}"
        );
    }
    assert_eq!(
        replica.replication_stats().local_durable_lsn,
        after_tail,
        "replica LSNs equal primary LSNs across the merged stream"
    );

    replica.join();
    primary.shutdown();
    primary.join();
    for dir in [primary_dir, dir] {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn replicas_reject_writes_with_a_typed_error() {
    let primary_dir = temp_dir("ro-primary");
    let service = journaled_service(&primary_dir);
    let primary = Primary::start(
        Arc::clone(&service),
        "127.0.0.1:0",
        PrimaryConfig::default(),
    )
    .expect("primary");
    let dir = temp_dir("ro-replica");
    let replica = Replica::start(
        primary.local_addr().to_string(),
        "127.0.0.1:0",
        &dir,
        replica_config(1),
    )
    .expect("replica");

    let mut client = Client::connect(&replica.local_addr().to_string()[..]).expect("connect");
    for result in [
        client.publish(listing(9, 0)).map(|_| ()),
        client.ingest(vec![feedback(1, 9, 0.5, 1)]).map(|_| ()),
        client.deregister(ServiceId::new(9)).map(|_| ()),
    ] {
        match result {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::ReadOnly),
            other => panic!("write on a replica must fail ReadOnly, got {other:?}"),
        }
    }
    // Reads still work.
    client.ping().expect("ping");
    assert!(client
        .score(ServiceId::new(9).into())
        .expect("score")
        .is_none());

    replica.join();
    primary.shutdown();
    primary.join();
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_restarted_replica_recovers_its_own_journal_before_reconnecting() {
    let primary_dir = temp_dir("restart-primary");
    let service = journaled_service(&primary_dir);
    let primary = Primary::start(
        Arc::clone(&service),
        "127.0.0.1:0",
        PrimaryConfig::default(),
    )
    .expect("primary");
    let primary_addr = primary.local_addr().to_string();

    service.publish(listing(5, 0)).expect("publish");
    for i in 0..32u64 {
        service.ingest(feedback(i, 5, 0.7, i)).expect("ingest");
    }
    service.flush();
    let durable = service.durable_lsn().expect("journaled");

    let dir = temp_dir("restart-replica");
    let replica =
        Replica::start(&primary_addr[..], "127.0.0.1:0", &dir, replica_config(1)).expect("replica");
    await_catch_up(&replica, durable, 10);
    let expected = replica
        .service()
        .score(ServiceId::new(5).into())
        .expect("score before restart");
    drop(replica); // stop pulling, release the journal dir

    // Restart pointed at a dead address: everything it serves now came
    // from its own journal, not from the primary.
    let reborn = Replica::start(
        "127.0.0.1:1", // nothing listens here
        "127.0.0.1:0",
        &dir,
        replica_config(1),
    )
    .expect("reborn replica");
    let stats = reborn.replication_stats();
    assert_eq!(
        stats.local_durable_lsn, durable,
        "own journal carries the applied prefix across restarts"
    );
    let recovered = reborn
        .service()
        .score(ServiceId::new(5).into())
        .expect("score after restart");
    assert!((expected.value.get() - recovered.value.get()).abs() < 1e-9);
    assert!(!stats.connected);

    reborn.join();
    primary.shutdown();
    primary.join();
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&dir);
}
