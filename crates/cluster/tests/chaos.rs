//! The chaos harness: disk failpoints composed with link faults.
//!
//! These tests drive a real journaled primary through a [`FlakyProxy`]
//! (dropping, splitting and corrupting TCP traffic) while the journal's
//! [`IoPolicy`] seam injects disk faults underneath, and then hold the
//! registry to its durability contracts:
//!
//! - every **acked** (flushed, journal-healthy) write is present after
//!   recovery — retries through the flaky link never double-apply and
//!   never lose an acknowledged report;
//! - a `Degrade` node that hit disk faults says so: nonzero
//!   `journal_errors` and the `degraded` flag in its shipped stats;
//! - `ReadOnly` / `FailStop` nodes refuse (or exit) instead of acking
//!   writes they cannot make durable — nothing non-durable is ever
//!   acked, so there is nothing to lose;
//! - a replica fed corrupted replication frames drops the link,
//!   reconnects, and re-pulls from its watermark without applying any
//!   partial batch.
//!
//! Every test asserts its fault counters are nonzero — a chaos run that
//! injected nothing proved nothing.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use wsrep_cluster::{Primary, PrimaryConfig, Replica, ReplicaConfig};
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ProviderId, ServiceId};
use wsrep_core::time::Time;
use wsrep_journal::{Fault, FaultScript, IoOp, IoPolicy};
use wsrep_qos::metric::Metric;
use wsrep_qos::value::QosVector;
use wsrep_serve::{DurabilityPolicy, ReputationService};
use wsrep_server::{
    ChaosConfig, Client, ClientError, ErrorCode, FlakyProxy, RetryPolicy, RetryingClient,
    ServerConfig,
};
use wsrep_sim::registry::Listing;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "wsrep-chaos-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn listing(service: u64, category: u32) -> Listing {
    Listing {
        service: ServiceId::new(service),
        provider: ProviderId::new(service),
        category,
        advertised: QosVector::from_pairs([(Metric::Price, 2.0), (Metric::Accuracy, 0.8)]),
    }
}

fn feedback(rater: u64, service: u64, score: f64, at: u64) -> Feedback {
    Feedback::scored(
        AgentId::new(rater),
        ServiceId::new(service),
        score,
        Time::new(at),
    )
}

fn retry_fast() -> RetryPolicy {
    RetryPolicy {
        base: Duration::from_millis(1),
        cap: Duration::from_millis(10),
        multiplier: 2.0,
        max_attempts: 60,
        deadline: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Link chaos only, disk healthy: after ingesting through a proxy
    /// that keeps severing and splitting the stream, every acked batch
    /// is applied exactly once — and still all there when the node is
    /// torn down and recovered from its journal.
    #[test]
    fn acked_writes_survive_link_chaos_and_recovery(
        seed in 0u64..1_000,
        drop_every in 5u64..12,
        batches in 6u64..14,
        batch_size in 3u64..9,
    ) {
        let dir = temp_dir(&format!("acked-{seed}-{drop_every}"));
        let service = Arc::new(
            ReputationService::builder()
                .shards(2)
                .journal(&dir)
                .build(),
        );
        let primary = Primary::start(
            Arc::clone(&service),
            "127.0.0.1:0",
            PrimaryConfig::default(),
        )
        .expect("primary");
        let mut proxy = FlakyProxy::start(
            primary.local_addr(),
            ChaosConfig {
                seed,
                drop_conn_every: Some(drop_every),
                split_chunks: true,
                delay_every: Some(9),
                delay: Duration::from_millis(1),
                ..ChaosConfig::default()
            },
        )
        .expect("proxy");

        let mut client = RetryingClient::new(proxy.addr().to_string(), retry_fast())
            .with_producer(seed.wrapping_mul(31).wrapping_add(7));
        client.set_read_timeout(Some(Duration::from_secs(2)));
        client.publish(listing(1, 0)).expect("publish");
        for b in 0..batches {
            let batch: Vec<Feedback> = (0..batch_size)
                .map(|i| feedback(b * batch_size + i, 1, 0.7, b * batch_size + i))
                .collect();
            let accepted = client.ingest(batch).expect("keyed ingest");
            prop_assert_eq!(accepted, batch_size);
        }
        // The ack barrier: after this, every batch above is durable.
        client.flush().expect("flush");

        let expected = batches * batch_size;
        prop_assert_eq!(service.store().len() as u64, expected,
            "retried batches must apply exactly once");
        let counters = proxy.counters();
        prop_assert!(counters.dropped_conns > 0,
            "chaos schedule never dropped a connection — nothing was proved");
        proxy.stop();
        primary.shutdown();
        primary.join();
        drop(service);

        // Recovery: replay snapshot + WAL into a fresh service.
        let recovered = ReputationService::builder()
            .shards(2)
            .recover_from(&dir)
            .try_build()
            .expect("recover");
        recovered.flush();
        prop_assert_eq!(recovered.store().len() as u64, expected,
            "acked writes lost across recovery");
        prop_assert!(recovered.listing(ServiceId::new(1)).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Disk and link chaos on a `Degrade` node: the service keeps
    /// acking (availability over durability), applies exactly once, and
    /// reports the damage through nonzero `journal_errors` + the
    /// `degraded` flag in its shipped stats.
    #[test]
    fn degrade_node_reports_faults_and_applies_exactly_once(
        seed in 0u64..1_000,
        drop_every in 6u64..12,
        fault_after in 0u64..3,
        batches in 5u64..10,
    ) {
        let dir = temp_dir(&format!("degrade-{seed}-{fault_after}"));
        let script = Arc::new(FaultScript::new());
        // One injected append error, `fault_after` commits in: the
        // degrade latch must hold from that point on.
        script.push_after(IoOp::Append, fault_after, Fault::enospc());
        let service = Arc::new(
            ReputationService::builder()
                .shards(2)
                .journal(&dir)
                .durability_policy(DurabilityPolicy::Degrade)
                .io_policy(Arc::clone(&script) as Arc<dyn IoPolicy>)
                .build(),
        );
        let primary = Primary::start(
            Arc::clone(&service),
            "127.0.0.1:0",
            PrimaryConfig::default(),
        )
        .expect("primary");
        let mut proxy = FlakyProxy::start(
            primary.local_addr(),
            ChaosConfig {
                seed,
                drop_conn_every: Some(drop_every),
                split_chunks: true,
                ..ChaosConfig::default()
            },
        )
        .expect("proxy");

        let mut client = RetryingClient::new(proxy.addr().to_string(), retry_fast())
            .with_producer(seed.wrapping_mul(131).wrapping_add(3));
        client.set_read_timeout(Some(Duration::from_secs(2)));
        client.publish(listing(1, 0)).expect("publish");
        const BATCH: u64 = 4;
        for b in 0..batches {
            let batch: Vec<Feedback> = (0..BATCH)
                .map(|i| feedback(b * BATCH + i, 1, 0.6, b * BATCH + i))
                .collect();
            let accepted = client.ingest(batch).expect("keyed ingest");
            prop_assert_eq!(accepted, BATCH);
        }
        client.flush().expect("flush");

        prop_assert_eq!(service.store().len() as u64, batches * BATCH);
        prop_assert!(script.counters().total() > 0, "disk fault never fired");
        let health = service.stats().journal.expect("journaled");
        prop_assert!(health.degraded, "degrade latch not set after a fault");
        prop_assert!(health.journal_errors > 0,
            "journal_errors counter must be nonzero on a degraded node");
        prop_assert!(!health.fenced, "degrade must not fence");

        // The degraded signal crosses the wire too (v3 stats block).
        let mut direct = Client::connect(primary.local_addr()).expect("direct");
        let wire = direct.stats().expect("stats");
        let wire_health = wire.service.journal.expect("journaled");
        prop_assert!(wire_health.degraded);
        prop_assert!(wire_health.journal_errors > 0);
        prop_assert_eq!(wire_health.policy, DurabilityPolicy::Degrade);

        proxy.stop();
        primary.shutdown();
        primary.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A `ReadOnly` node under the same chaos never acks a non-durable
    /// write: once the disk fault lands, every mutation is refused with
    /// `NotDurable`, nothing is applied past the fence, and recovery
    /// finds exactly the writes that were acked before the fault.
    #[test]
    fn read_only_node_refuses_rather_than_lies(
        seed in 0u64..1_000,
        fault_after in 1u64..4,
    ) {
        let dir = temp_dir(&format!("fence-{seed}-{fault_after}"));
        let script = Arc::new(FaultScript::new());
        script.push_after(IoOp::Append, fault_after, Fault::enospc());
        let service = Arc::new(
            ReputationService::builder()
                .shards(2)
                .journal(&dir)
                .durability_policy(DurabilityPolicy::ReadOnly)
                .io_policy(Arc::clone(&script) as Arc<dyn IoPolicy>)
                .build(),
        );
        let primary = Primary::start(
            Arc::clone(&service),
            "127.0.0.1:0",
            PrimaryConfig::default(),
        )
        .expect("primary");
        let mut proxy = FlakyProxy::start(
            primary.local_addr(),
            ChaosConfig {
                seed,
                split_chunks: true,
                ..ChaosConfig::default()
            },
        )
        .expect("proxy");

        // Mutations one at a time (no retries: a NotDurable refusal is
        // final, not transport noise). The first `fault_after` commits
        // land; everything after the fault must be refused.
        let mut client = Client::connect(proxy.addr()).expect("connect");
        let mut acked: u64 = 0;
        let mut refused: u64 = 0;
        for s in 0..6u64 {
            match client.publish(listing(s, 0)) {
                Ok(_) => acked += 1,
                Err(ClientError::Server { code, .. }) => {
                    prop_assert_eq!(code, ErrorCode::NotDurable);
                    refused += 1;
                }
                Err(other) => return Err(TestCaseError::fail(format!("unexpected: {other}"))),
            }
        }
        prop_assert_eq!(acked, fault_after, "exactly the pre-fault writes ack");
        prop_assert_eq!(refused, 6 - fault_after);
        prop_assert!(service.durability_fenced());
        let health = service.stats().journal.expect("journaled");
        prop_assert!(health.fenced);
        prop_assert!(health.journal_errors > 0);

        proxy.stop();
        primary.shutdown();
        primary.join();
        drop(service);

        // Recovery sees every acked write and nothing else: the fence
        // kept the applied state equal to the durable state.
        let recovered = ReputationService::builder()
            .shards(2)
            .recover_from(&dir)
            .try_build()
            .expect("recover");
        let listed = (0..6u64)
            .filter(|&s| recovered.listing(ServiceId::new(s)).is_some())
            .count() as u64;
        prop_assert_eq!(listed, acked, "recovered state must equal the acked prefix");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Satellite (d): a replica whose replication link corrupts frames
/// drops the link, reconnects, and re-pulls from its durable watermark
/// — partial or mangled `ReplBatch`es are never applied, and the
/// replica still converges to the primary's durable LSN.
#[test]
fn replica_recovers_from_replication_link_corruption() {
    let primary_dir = temp_dir("repl-corrupt-primary");
    let replica_dir = temp_dir("repl-corrupt-replica");
    let service = Arc::new(
        ReputationService::builder()
            .shards(2)
            .journal(&primary_dir)
            .build(),
    );
    let primary = Primary::start(
        Arc::clone(&service),
        "127.0.0.1:0",
        PrimaryConfig::default(),
    )
    .expect("primary");

    // The replica reaches the primary only through a proxy that flips a
    // byte in every 5th server->client chunk — CRC-broken ReplBatch
    // frames on a schedule.
    let mut proxy = FlakyProxy::start(
        primary.local_addr(),
        ChaosConfig {
            seed: 11,
            corrupt_downstream_every: Some(5),
            ..ChaosConfig::default()
        },
    )
    .expect("proxy");

    service.publish(listing(1, 0)).expect("publish");
    for i in 0..80u64 {
        service
            .ingest(feedback(i, 1, 0.4 + (i % 5) as f64 / 10.0, i))
            .expect("ingest");
    }
    service.flush();
    let durable = service.durable_lsn().expect("journaled");

    let replica = Replica::start(
        proxy.addr().to_string(),
        "127.0.0.1:0",
        &replica_dir,
        ReplicaConfig {
            server: ServerConfig::default(),
            shards: 2,
            replica_id: 9,
            poll_interval: Duration::from_millis(2),
            read_timeout: Duration::from_millis(500),
            reconnect: RetryPolicy {
                base: Duration::from_millis(5),
                cap: Duration::from_millis(40),
                ..RetryPolicy::unbounded()
            },
            max_batch_records: 16,
        },
    )
    .expect("replica");

    // Convergence despite the corruption schedule: the replica keeps
    // dropping poisoned links and re-pulling from its watermark.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = replica.replication_stats();
        if stats.local_durable_lsn >= durable {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replica never converged through the corrupting link \
             (local {} < primary {durable})",
            stats.local_durable_lsn
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        proxy.counters().corrupted_chunks > 0,
        "the corruption schedule never fired — nothing was proved"
    );

    // The replicated state matches the primary exactly: no partial
    // batch was ever applied.
    let subject = ServiceId::new(1).into();
    let primary_score = service.score(subject).expect("primary evidence");
    let replica_score = replica.service().score(subject).expect("replica evidence");
    assert!(
        (primary_score.value.get() - replica_score.value.get()).abs() < 1e-9,
        "replica diverged from primary through the corrupting link"
    );
    assert_eq!(
        replica.service().store().len(),
        service.store().len(),
        "replica applied a partial batch"
    );

    replica.join();
    proxy.stop();
    primary.shutdown();
    primary.join();
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&replica_dir);
}

/// A `FailStop` primary under a disk fault begins its drain instead of
/// serving non-durable acks; a client sees the `NotDurable` refusal and
/// the server exits.
#[test]
fn fail_stop_primary_exits_under_disk_faults() {
    let dir = temp_dir("failstop-cluster");
    let script = Arc::new(FaultScript::new());
    script.push(IoOp::Append, Fault::enospc());
    let service = Arc::new(
        ReputationService::builder()
            .shards(2)
            .journal(&dir)
            .durability_policy(DurabilityPolicy::FailStop)
            .io_policy(Arc::clone(&script) as Arc<dyn IoPolicy>)
            .build(),
    );
    let primary = Primary::start(
        Arc::clone(&service),
        "127.0.0.1:0",
        PrimaryConfig::default(),
    )
    .expect("primary");

    let mut client = Client::connect(primary.local_addr()).expect("connect");
    let err = client.publish(listing(1, 0)).expect_err("fenced");
    assert!(matches!(
        err,
        ClientError::Server {
            code: ErrorCode::NotDurable,
            ..
        }
    ));
    assert!(
        primary.is_shutting_down(),
        "fail-stop must begin the drain on the first fence"
    );
    primary.join();
    let _ = std::fs::remove_dir_all(&dir);
}
