//! Kill-the-primary failover: SIGKILL the real `wsrep-cluster primary`
//! binary mid-ingest, promote the in-process replica that was trailing
//! it, and prove the promoted node's state equals a sequential replay of
//! its own journal — the twin check — at (at least) the last LSN the
//! primary ever acknowledged to a client.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use wsrep_cluster::{verify_against_sequential_replay, Replica, ReplicaConfig};
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ProviderId, ServiceId};
use wsrep_core::time::Time;
use wsrep_qos::metric::Metric;
use wsrep_qos::value::QosVector;
use wsrep_server::{Client, RetryPolicy};
use wsrep_sim::registry::Listing;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wsrep-failover-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn spawn_primary(dir: &Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_wsrep-cluster"))
        .arg("primary")
        .arg("--listen")
        .arg("127.0.0.1:0")
        .arg(format!("--journal={}", dir.display()))
        .arg("--shards=4")
        .arg("--workers=2")
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn wsrep-cluster primary");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listen line");
    let addr = line
        .trim()
        .strip_prefix("wsrep-cluster primary listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .to_string();
    (child, addr)
}

fn listing(service: u64, category: u32) -> Listing {
    Listing {
        service: ServiceId::new(service),
        provider: ProviderId::new(service),
        category,
        advertised: QosVector::from_pairs([(Metric::Price, 2.0), (Metric::Accuracy, 0.9)]),
    }
}

fn feedback(rater: u64, service: u64, score: f64, at: u64) -> Feedback {
    Feedback::scored(
        AgentId::new(rater),
        ServiceId::new(service),
        score,
        Time::new(at),
    )
}

#[test]
fn sigkilled_primary_fails_over_to_a_promoted_replica_equal_to_sequential_replay() {
    let primary_dir = temp_dir("primary");
    let (mut child, primary_addr) = spawn_primary(&primary_dir);

    let replica_dir = temp_dir("replica");
    let mut replica = Replica::start(
        &primary_addr[..],
        "127.0.0.1:0",
        &replica_dir,
        ReplicaConfig {
            shards: 4,
            replica_id: 7,
            poll_interval: Duration::from_millis(2),
            reconnect: RetryPolicy {
                base: Duration::from_millis(20),
                cap: Duration::from_millis(100),
                ..RetryPolicy::unbounded()
            },
            read_timeout: Duration::from_millis(500),
            ..ReplicaConfig::default()
        },
    )
    .expect("replica");

    // Ingest waves against the primary, flushing (= acking) after each.
    // The kill lands between waves, so some unflushed records may be in
    // flight — exactly the crash shape the acked-prefix contract covers.
    let mut client = Client::connect(&primary_addr[..]).expect("connect primary");
    client.publish(listing(1, 0)).expect("publish");
    client.publish(listing(2, 0)).expect("publish");
    let mut acked_lsn = 0u64;
    for wave in 0..6u64 {
        let batch: Vec<Feedback> = (0..32)
            .map(|i| {
                let n = wave * 32 + i;
                feedback(n, 1 + (n % 2), 0.2 + ((n % 8) as f64) / 10.0, n)
            })
            .collect();
        client.ingest(batch).expect("ingest wave");
        client.flush().expect("flush wave");
        let stats = client.stats().expect("stats");
        acked_lsn = stats
            .service
            .journal
            .expect("primary is journaled")
            .durable_lsn;
    }
    // Replication is asynchronous: a record is only guaranteed on the
    // replica once its watermark passed it. Wait for exactly that —
    // which is what a deployment watching `min_replica_lsn` would do —
    // before considering the acked history safe to fail over.
    let deadline = Instant::now() + Duration::from_secs(10);
    while replica.replication_stats().local_durable_lsn < acked_lsn {
        assert!(
            Instant::now() < deadline,
            "replica never reached the acked watermark {acked_lsn}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // One more unflushed wave in flight when the kill lands.
    let _ = client.ingest(
        (0..32)
            .map(|i| feedback(900 + i, 1, 0.5, 900 + i))
            .collect(),
    );

    // A real crash: no drain, no shutdown handshake, no final fsync.
    child.kill().expect("SIGKILL primary");
    child.wait().expect("reap");
    drop(client);

    // The replica notices the dead link, then gets promoted.
    let deadline = Instant::now() + Duration::from_secs(10);
    while replica.replication_stats().connected {
        assert!(Instant::now() < deadline, "replica never saw the link drop");
        std::thread::sleep(Duration::from_millis(10));
    }
    let promoted_lsn = replica.promote();
    assert!(
        promoted_lsn >= acked_lsn,
        "promoted at LSN {promoted_lsn}, but the primary acked {acked_lsn}"
    );

    // The twin check: promoted state == one-record-at-a-time replay of
    // the promoted node's own journal.
    let report =
        verify_against_sequential_replay(replica.service(), &replica_dir).expect("twin replay");
    assert_eq!(
        report.replayed_lsn, promoted_lsn,
        "twin replays the whole log"
    );
    assert!(report.subjects >= 2, "both subjects have evidence");
    assert!(
        report.equal(),
        "promoted replica diverged from sequential replay: {:?}",
        report.mismatched
    );

    // The promoted node is a writable primary-role node now.
    let stats = replica.replication_stats();
    assert_eq!(stats.role, wsrep_server::ReplRole::Primary);
    let mut client = Client::connect(&replica.local_addr().to_string()[..]).expect("connect");
    client
        .publish(listing(3, 0))
        .expect("promoted accepts publish");
    client
        .ingest(vec![feedback(5000, 3, 0.9, 5000)])
        .expect("promoted accepts ingest");
    client.flush().expect("promoted flushes");
    assert!(client
        .score(ServiceId::new(3).into())
        .expect("score")
        .is_some());

    replica.join();
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&replica_dir);
}
