//! A promoted node trails nobody: after promotion, new writes advance
//! the local watermark and the reported replication lag must stay 0
//! (the gauge must not keep measuring against the dead primary's
//! frozen LSN).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use wsrep_cluster::{Primary, PrimaryConfig, Replica, ReplicaConfig};
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ServiceId};
use wsrep_core::time::Time;
use wsrep_serve::ReputationService;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wsrep-scratch-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn promoted_lag_is_zero_after_new_writes() {
    let pdir = temp_dir("p");
    let rdir = temp_dir("r");
    let service = Arc::new(
        ReputationService::builder()
            .shards(2)
            .journal(&pdir)
            .try_build()
            .unwrap(),
    );
    service
        .ingest(Feedback::scored(
            AgentId::new(1),
            ServiceId::new(1),
            0.5,
            Time::new(1),
        ))
        .unwrap();
    service.flush();
    let primary = Primary::start(service, "127.0.0.1:0", PrimaryConfig::default()).unwrap();
    let mut replica = Replica::start(
        &primary.local_addr().to_string()[..],
        "127.0.0.1:0",
        &rdir,
        ReplicaConfig {
            poll_interval: Duration::from_millis(2),
            ..ReplicaConfig::default()
        },
    )
    .unwrap();
    while replica.replication_stats().local_durable_lsn < 1 {
        std::thread::sleep(Duration::from_millis(5));
    }
    primary.shutdown();
    primary.join();
    while replica.replication_stats().connected {
        std::thread::sleep(Duration::from_millis(5));
    }
    replica.promote();
    // New writes after promotion advance local; lag must stay 0.
    replica
        .service()
        .ingest(Feedback::scored(
            AgentId::new(2),
            ServiceId::new(1),
            0.7,
            Time::new(2),
        ))
        .unwrap();
    replica.service().flush();
    let stats = replica.replication_stats();
    eprintln!("stats = {stats:?}");
    assert_eq!(stats.lag, 0, "promoted node trails nobody: {stats:?}");
    replica.join();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}
