//! The promotion proof: a sequential-replay twin.
//!
//! A promoted replica claims its state equals "replay the log one record
//! at a time, in order". This module checks that claim the blunt way: it
//! re-reads the node's own journal from LSN 0 with a
//! [`ShipCursor`](wsrep_journal::ShipCursor), folds every record into a
//! **fresh, non-journaled, unsharded-pipeline** service using only the
//! public one-at-a-time API, and compares scores subject by subject.
//! Because the twin shares none of the replication machinery (no
//! batching, no `apply_replicated`, no shipping), agreement here is
//! evidence the whole pipeline preserved the paper's per-subject fold
//! order — not just that two copies of the same code agree.

use std::collections::BTreeSet;
use std::io;
use std::path::Path;
use wsrep_core::id::SubjectId;
use wsrep_journal::{JournalRecord, ShipCursor};
use wsrep_serve::ReputationService;

/// What the twin replay found.
#[derive(Debug, Clone, PartialEq)]
pub struct TwinReport {
    /// Records replayed from the journal.
    pub records: u64,
    /// One past the last replayed LSN.
    pub replayed_lsn: u64,
    /// Distinct feedback subjects compared.
    pub subjects: usize,
    /// Subjects whose scores differ beyond tolerance (empty = equal).
    pub mismatched: Vec<SubjectId>,
}

impl TwinReport {
    /// True when every compared subject agreed within tolerance.
    pub fn equal(&self) -> bool {
        self.mismatched.is_empty()
    }
}

/// Replay `journal_dir` sequentially into a fresh in-memory service and
/// compare every feedback subject's score against `service`. Scores must
/// agree within `1e-9` (the recovery tests' tolerance).
pub fn verify_against_sequential_replay(
    service: &ReputationService,
    journal_dir: &Path,
) -> io::Result<TwinReport> {
    let twin = ReputationService::builder().shards(1).build();
    let mut cursor = ShipCursor::open(journal_dir, 0)?;
    let mut records = 0u64;
    let mut subjects: BTreeSet<SubjectId> = BTreeSet::new();
    loop {
        let batch = cursor.next_batch(4096)?;
        if batch.records.is_empty() {
            break;
        }
        for record in batch.records {
            records += 1;
            match record {
                JournalRecord::Feedback(report) => {
                    subjects.insert(report.subject);
                    let _ = twin.ingest(report);
                }
                JournalRecord::Publish(listing) => {
                    // Barrier first, so the listing lands after every
                    // report already ingested — the journal's order.
                    twin.flush();
                    twin.publish(listing)
                        .expect("non-journaled twin cannot fence publishes");
                }
                JournalRecord::Deregister(id) => {
                    twin.flush();
                    let _ = twin.deregister(id);
                }
            }
        }
    }
    twin.flush();

    let mut mismatched = Vec::new();
    for &subject in &subjects {
        let ours = service.score(subject);
        let twins = twin.score(subject);
        let agree = match (ours, twins) {
            (None, None) => true,
            (Some(a), Some(b)) => {
                (a.value.get() - b.value.get()).abs() < 1e-9
                    && (a.confidence - b.confidence).abs() < 1e-9
            }
            _ => false,
        };
        if !agree {
            mismatched.push(subject);
        }
    }
    Ok(TwinReport {
        records,
        replayed_lsn: cursor.next_lsn(),
        subjects: subjects.len(),
        mismatched,
    })
}
