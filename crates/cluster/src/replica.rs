//! The replica: a read-only registry trailing the primary's log.
//!
//! [`Replica::start`] builds its **own journaled** service (recovering
//! from its directory, so a restarted replica resumes where it left
//! off), serves the full wait-free read surface in read-only mode, and
//! runs a pull loop: `ReplPull` from its local durable LSN, apply
//! through [`ReputationService::apply_replicated`], heartbeat the
//! applied watermark back.
//!
//! Because `apply_replicated` journals the stream in exactly shipped
//! order, the replica's **local LSNs equal the primary's** — which is
//! what makes [`Replica::promote`] sound: the promoted node's own log
//! is byte-for-byte a prefix-equal stand-in for the primary's, verified
//! by the sequential-replay twin in [`crate::twin`].

use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wsrep_serve::{ReplicateError, ReputationService};
use wsrep_server::{
    Backoff, Client, ReplicationGauge, ReplicationHooks, ReplicationStats, RetryPolicy, Server,
    ServerConfig,
};

/// Tuning for a [`Replica`].
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Reactor tuning for the replica's own read-only server.
    pub server: ServerConfig,
    /// Store shards for the replica's service.
    pub shards: usize,
    /// Identifies this replica in heartbeats (and the primary's
    /// watermark table).
    pub replica_id: u64,
    /// How long to sleep when a pull comes back empty (the staleness
    /// floor while the link is idle).
    pub poll_interval: Duration,
    /// Read timeout on the replication connection — bounds how long a
    /// dead primary can keep the pull loop blocked.
    pub read_timeout: Duration,
    /// Reconnect schedule after the link drops: jittered exponential
    /// backoff (see [`RetryPolicy`]), reset after every successful
    /// pull. Jitter matters here — a fleet of replicas orphaned by one
    /// primary restart must not stampede back in lockstep.
    pub reconnect: RetryPolicy,
    /// Records requested per pull.
    pub max_batch_records: u32,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            server: ServerConfig::default(),
            shards: 8,
            replica_id: 1,
            poll_interval: Duration::from_millis(20),
            read_timeout: Duration::from_secs(1),
            reconnect: RetryPolicy {
                base: Duration::from_millis(100),
                cap: Duration::from_secs(2),
                ..RetryPolicy::unbounded()
            },
            max_batch_records: 4096,
        }
    }
}

/// State shared between the replica and its pull loop.
struct ReplShared {
    service: Arc<ReputationService>,
    gauge: Arc<ReplicationGauge>,
    stop: AtomicBool,
    /// Last successful exchange with the primary.
    last_contact: Mutex<Instant>,
}

impl ReplShared {
    fn touch(&self) {
        *self.last_contact.lock().unwrap_or_else(|e| e.into_inner()) = Instant::now();
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Sleep `total` in short slices so a stop request is honored fast.
    fn interruptible_sleep(&self, total: Duration) {
        let slice = Duration::from_millis(10);
        let mut left = total;
        while !left.is_zero() && !self.stopped() {
            let nap = left.min(slice);
            std::thread::sleep(nap);
            left -= nap;
        }
    }
}

/// A read-only node trailing a primary, promotable on its failure.
pub struct Replica {
    /// `Some` until [`Replica::join`] consumes it (`Server::join` takes
    /// ownership, and `Replica` needs a `Drop` impl for the pull loop).
    server: Option<Server>,
    service: Arc<ReputationService>,
    shared: Arc<ReplShared>,
    puller: Option<JoinHandle<()>>,
    journal_dir: PathBuf,
}

impl Replica {
    /// Recover (or create) a journaled service at `journal_dir`, serve it
    /// read-only on `listen`, and start pulling from `primary_addr`.
    pub fn start(
        primary_addr: impl Into<String>,
        listen: impl ToSocketAddrs,
        journal_dir: impl Into<PathBuf>,
        config: ReplicaConfig,
    ) -> io::Result<Replica> {
        let journal_dir = journal_dir.into();
        let service = Arc::new(
            ReputationService::builder()
                .shards(config.shards)
                .recover_from(&journal_dir)
                .try_build()?,
        );
        let gauge = Arc::new(ReplicationGauge::replica());
        gauge.set_local(service.durable_lsn().unwrap_or(0));
        let hooks = ReplicationHooks {
            replicator: None,
            gauge: Some(Arc::clone(&gauge)),
            read_only: true,
        };
        let server =
            Server::start_with_replication(Arc::clone(&service), listen, config.server, hooks)?;
        let shared = Arc::new(ReplShared {
            service: Arc::clone(&service),
            gauge,
            stop: AtomicBool::new(false),
            last_contact: Mutex::new(Instant::now()),
        });
        let primary_addr = primary_addr.into();
        let loop_shared = Arc::clone(&shared);
        let puller = std::thread::Builder::new()
            .name("wsrep-repl-pull".to_string())
            .spawn(move || pull_loop(&loop_shared, &primary_addr, &config))?;
        Ok(Replica {
            server: Some(server),
            service,
            shared,
            puller: Some(puller),
            journal_dir,
        })
    }

    fn server(&self) -> &Server {
        self.server.as_ref().expect("server taken only by join")
    }

    /// The bound address of the replica's own read-only server.
    pub fn local_addr(&self) -> SocketAddr {
        self.server().local_addr()
    }

    /// The replica's service — reads here see the replicated state.
    pub fn service(&self) -> &Arc<ReputationService> {
        &self.service
    }

    /// The replica's own journal directory.
    pub fn journal_dir(&self) -> &PathBuf {
        &self.journal_dir
    }

    /// Replication watermarks as of now; `lag` is the bounded-staleness
    /// distance to the primary's last observed durable LSN.
    pub fn replication_stats(&self) -> ReplicationStats {
        self.shared
            .gauge
            .set_local(self.service.durable_lsn().unwrap_or(0));
        self.shared.gauge.snapshot()
    }

    /// How long since the last successful exchange with the primary —
    /// the signal a failover policy watches.
    pub fn primary_silence(&self) -> Duration {
        self.shared
            .last_contact
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .elapsed()
    }

    /// Promote this replica to a writable primary-role node: stop the
    /// pull loop, flush, and lift read-only. Returns the durable LSN the
    /// node is promoted at — equal to the primary's LSN for every record
    /// the primary ever acknowledged to this replica's applied prefix.
    pub fn promote(&mut self) -> u64 {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(puller) = self.puller.take() {
            let _ = puller.join();
        }
        self.service.flush();
        let durable = self.service.durable_lsn().unwrap_or(0);
        self.shared.gauge.set_local(durable);
        self.shared.gauge.set_remote(durable);
        self.shared.gauge.promote();
        self.server().set_read_only(false);
        durable
    }

    /// Whether a shutdown has been requested (locally or over the wire).
    pub fn is_shutting_down(&self) -> bool {
        self.server().is_shutting_down()
    }

    /// Begin a graceful drain of the replica's own server.
    pub fn shutdown(&self) {
        self.server().shutdown();
    }

    /// Stop pulling, drain the server, and return once everything exited.
    pub fn join(mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(puller) = self.puller.take() {
            let _ = puller.join();
        }
        if let Some(server) = self.server.take() {
            server.shutdown();
            server.join();
        }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        // The pull loop holds this node's journal open for appends; it
        // must be gone before anyone reuses the directory.
        self.shared.stop.store(true, Ordering::Release);
        if let Some(puller) = self.puller.take() {
            let _ = puller.join();
        }
    }
}

/// The replication loop: connect, pull from the local watermark, apply,
/// heartbeat; reconnect with jittered exponential backoff when the link
/// drops (reset after every successful pull, so a healthy link always
/// reconnects from the base delay).
///
/// Any pull that times out abandons the connection rather than reading
/// again: a timed-out [`Client`] is poisoned mid-frame, and the next
/// `recv` on it could pair the late response with the wrong request.
/// Reconnecting and re-pulling from the local durable watermark is
/// always safe — the stream is idempotent below the watermark.
fn pull_loop(shared: &ReplShared, primary_addr: &str, config: &ReplicaConfig) {
    let mut backoff = Backoff::new(config.reconnect, config.replica_id);
    while !shared.stopped() {
        let mut client = match Client::connect(primary_addr) {
            Ok(client) => client,
            Err(_) => {
                shared.gauge.set_connected(false);
                shared.interruptible_sleep(backoff.next_delay());
                continue;
            }
        };
        if client.set_read_timeout(Some(config.read_timeout)).is_err() {
            shared.interruptible_sleep(backoff.next_delay());
            continue;
        }
        shared.gauge.set_connected(true);
        shared.touch();

        while !shared.stopped() {
            let local = shared.service.durable_lsn().unwrap_or(0);
            shared.gauge.set_local(local);
            let batch = match client.repl_pull(local, config.max_batch_records) {
                Ok(batch) => batch,
                Err(err) => {
                    if !shared.stopped() {
                        eprintln!("wsrep-cluster: replica pull failed: {err}");
                    }
                    shared.gauge.set_connected(false);
                    break;
                }
            };
            shared.touch();
            backoff.reset();
            shared.gauge.set_remote(batch.durable_lsn);

            if batch.records.is_empty() {
                if client.repl_heartbeat(config.replica_id, local).is_err() {
                    shared.gauge.set_connected(false);
                    break;
                }
                shared.touch();
                shared.interruptible_sleep(config.poll_interval);
                continue;
            }
            if batch.first_lsn != local {
                // The primary answered from a different position than we
                // asked for — a diverged or rewound log. Refuse to apply.
                eprintln!(
                    "wsrep-cluster: replica at LSN {local} got a batch starting at {}; \
                     refusing to apply a diverged stream",
                    batch.first_lsn
                );
                shared.gauge.set_connected(false);
                break;
            }
            match shared.service.apply_replicated(batch.records) {
                Ok(_) => {}
                // Ingest pipeline closed: this service is shutting down.
                Err(ReplicateError::Closed) => return,
                // This replica's own journal failed and its durability
                // policy fences writes. Re-pulling would just fence
                // again — stop replicating rather than silently fall
                // behind while claiming to trail the primary.
                Err(ReplicateError::NotDurable) => {
                    eprintln!(
                        "wsrep-cluster: replica journal fenced by its durability policy; \
                         stopping the pull loop"
                    );
                    shared.gauge.set_connected(false);
                    return;
                }
            }
            let applied = shared.service.durable_lsn().unwrap_or(0);
            shared.gauge.set_local(applied);
            if client.repl_heartbeat(config.replica_id, applied).is_err() {
                shared.gauge.set_connected(false);
                break;
            }
            shared.touch();
        }
        if !shared.stopped() {
            shared.interruptible_sleep(backoff.next_delay());
        }
    }
}
