//! The primary: a journaled registry that also ships its log.
//!
//! [`Primary::start`] wraps a journaled
//! [`ReputationService`](wsrep_serve::ReputationService) in a
//! [`Server`](wsrep_server::Server) with a [`Replicator`] plugged in, so
//! the same reactor that serves clients also serves
//! `ReplPull`/`ReplHeartbeat` from replicas. Shipping is **pull-based**:
//! the replica is just another pipelined client, which keeps the
//! protocol's FIFO contract and costs the primary nothing when no
//! replica is attached.
//!
//! A pull may ship records that are written but not yet fsynced. That is
//! safe: such records were never acknowledged to any client (the `Flush`
//! barrier is what acknowledges), so a follower that applied them is
//! merely *ahead of* the acknowledged prefix, never divergent from it.

use crate::watermark::WatermarkTable;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use wsrep_journal::ShipCursor;
use wsrep_serve::ReputationService;
use wsrep_server::{
    ReplBatch, ReplError, ReplWatermark, ReplicationGauge, ReplicationHooks, ReplicationStats,
    Replicator, Server, ServerConfig, ServerStats,
};

/// Tuning for a [`Primary`].
#[derive(Debug, Clone)]
pub struct PrimaryConfig {
    /// Reactor tuning, passed through to the server.
    pub server: ServerConfig,
    /// Hard cap on records per `ReplPull` response, whatever the replica
    /// asks for (bounds response frames well under the frame size limit).
    pub max_batch_records: u32,
    /// A replica that has not heartbeated for this long no longer counts
    /// toward the follower watermark.
    pub replica_ttl: Duration,
}

impl Default for PrimaryConfig {
    fn default() -> Self {
        PrimaryConfig {
            server: ServerConfig::default(),
            max_batch_records: 4096,
            replica_ttl: Duration::from_secs(10),
        }
    }
}

/// How many ship cursors to keep warm. One per steadily-pulling replica
/// is plenty; the cache only avoids a re-locate scan per pull.
const CURSOR_CACHE: usize = 8;

struct PrimaryState {
    service: Arc<ReputationService>,
    journal_dir: PathBuf,
    cursors: Mutex<Vec<ShipCursor>>,
    watermarks: WatermarkTable,
    gauge: Arc<ReplicationGauge>,
    max_batch_records: u32,
    replica_ttl: Duration,
}

impl Replicator for PrimaryState {
    fn pull(&self, from_lsn: u64, max_records: u32) -> Result<ReplBatch, ReplError> {
        let durable_lsn = self.service.durable_lsn().unwrap_or(0);
        self.gauge.set_local(durable_lsn);
        // Take a cached cursor positioned at from_lsn, or open one. The
        // cursor leaves the lock while it reads the log, so concurrent
        // pulls from different replicas don't serialize on file I/O.
        let cached = {
            let mut cursors = self.cursors.lock().unwrap_or_else(|e| e.into_inner());
            cursors
                .iter()
                .position(|cursor| cursor.next_lsn() == from_lsn)
                .map(|at| cursors.remove(at))
        };
        let mut cursor = match cached {
            Some(cursor) => cursor,
            None => ShipCursor::open(&self.journal_dir, from_lsn).map_err(|err| {
                ReplError(match err.kind() {
                    io::ErrorKind::NotFound => format!(
                        "LSN {from_lsn} precedes the oldest retained segment; \
                         re-seed the replica from a snapshot: {err}"
                    ),
                    _ => format!("cannot position log cursor at LSN {from_lsn}: {err}"),
                })
            })?,
        };
        let max = max_records.min(self.max_batch_records).max(1);
        let batch = cursor
            .next_batch(max as usize)
            .map_err(|err| ReplError(format!("log read at LSN {from_lsn} failed: {err}")))?;
        let mut cursors = self.cursors.lock().unwrap_or_else(|e| e.into_inner());
        if cursors.len() >= CURSOR_CACHE {
            cursors.remove(0);
        }
        cursors.push(cursor);
        drop(cursors);
        Ok(ReplBatch {
            first_lsn: batch.first_lsn,
            records: batch.records,
            durable_lsn,
        })
    }

    fn heartbeat(&self, replica: u64, durable_lsn: u64) -> ReplWatermark {
        self.watermarks.observe(replica, durable_lsn);
        let local = self.service.durable_lsn().unwrap_or(0);
        let (replicas, min) = self.watermarks.snapshot(self.replica_ttl);
        // With no live follower the primary trails nobody: lag 0.
        let min_replica_lsn = min.unwrap_or(local);
        self.gauge.set_local(local);
        self.gauge.set_remote(min_replica_lsn);
        self.gauge.set_replicas(replicas);
        ReplWatermark {
            durable_lsn: local,
            replicas,
            min_replica_lsn,
        }
    }
}

/// A serving node that ships its journal to pulling replicas.
pub struct Primary {
    server: Server,
    service: Arc<ReputationService>,
    gauge: Arc<ReplicationGauge>,
}

impl Primary {
    /// Serve `service` on `addr` with log shipping attached. Errors with
    /// [`io::ErrorKind::InvalidInput`] if the service has no journal —
    /// there is no log to ship without one.
    pub fn start(
        service: Arc<ReputationService>,
        addr: impl ToSocketAddrs,
        config: PrimaryConfig,
    ) -> io::Result<Primary> {
        let journal_dir = service.journal_dir().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "a primary requires a journaled service (no log to ship)",
            )
        })?;
        let gauge = Arc::new(ReplicationGauge::primary());
        let state = Arc::new(PrimaryState {
            service: Arc::clone(&service),
            journal_dir,
            cursors: Mutex::new(Vec::new()),
            watermarks: WatermarkTable::new(),
            gauge: Arc::clone(&gauge),
            max_batch_records: config.max_batch_records,
            replica_ttl: config.replica_ttl,
        });
        let hooks = ReplicationHooks {
            replicator: Some(state as Arc<dyn Replicator>),
            gauge: Some(Arc::clone(&gauge)),
            read_only: false,
        };
        let server = Server::start_with_replication(service.clone(), addr, config.server, hooks)?;
        Ok(Primary {
            server,
            service,
            gauge,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The service this primary serves and ships.
    pub fn service(&self) -> &Arc<ReputationService> {
        &self.service
    }

    /// Reactor counters.
    pub fn server_stats(&self) -> ServerStats {
        self.server.server_stats()
    }

    /// Replication watermarks as of now.
    pub fn replication_stats(&self) -> ReplicationStats {
        self.gauge
            .set_local(self.service.durable_lsn().unwrap_or(0));
        self.gauge.snapshot()
    }

    /// Whether a shutdown has been requested (locally or over the wire).
    pub fn is_shutting_down(&self) -> bool {
        self.server.is_shutting_down()
    }

    /// Begin a graceful drain.
    pub fn shutdown(&self) {
        self.server.shutdown();
    }

    /// Drain and stop; returns once every connection closed.
    pub fn join(self) {
        self.server.join();
    }
}
