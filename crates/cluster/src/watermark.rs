//! The primary's view of its followers: who heartbeated, how far along.
//!
//! Each [`crate::Replica`] reports its applied LSN with every heartbeat;
//! the table keeps the latest mark per replica id and ages entries out
//! after a TTL, so a follower that died silently stops holding the
//! `min_replica_lsn` watermark down. The snapshot is advisory — it feeds
//! stats and the wire [`ReplWatermark`](wsrep_server::ReplWatermark)
//! response, not any correctness decision (replication here is async;
//! the primary never waits for acks).

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
struct ReplicaMark {
    durable_lsn: u64,
    last_seen: Instant,
}

/// Latest heartbeat per replica id, TTL-aged.
#[derive(Debug, Default)]
pub struct WatermarkTable {
    marks: Mutex<HashMap<u64, ReplicaMark>>,
}

impl WatermarkTable {
    pub fn new() -> Self {
        WatermarkTable::default()
    }

    /// Record a heartbeat from `replica` claiming `durable_lsn` applied.
    pub fn observe(&self, replica: u64, durable_lsn: u64) {
        let mut marks = self.marks.lock().unwrap_or_else(|e| e.into_inner());
        marks.insert(
            replica,
            ReplicaMark {
                durable_lsn,
                last_seen: Instant::now(),
            },
        );
    }

    /// `(live replica count, slowest live replica's LSN)`. Entries older
    /// than `ttl` are dropped; `None` when no replica is live.
    pub fn snapshot(&self, ttl: Duration) -> (u32, Option<u64>) {
        let mut marks = self.marks.lock().unwrap_or_else(|e| e.into_inner());
        let now = Instant::now();
        marks.retain(|_, mark| now.duration_since(mark.last_seen) < ttl);
        let min = marks.values().map(|mark| mark.durable_lsn).min();
        (marks.len() as u32, min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowest_live_replica_holds_the_watermark() {
        let table = WatermarkTable::new();
        assert_eq!(table.snapshot(Duration::from_secs(1)), (0, None));

        table.observe(1, 100);
        table.observe(2, 80);
        assert_eq!(table.snapshot(Duration::from_secs(60)), (2, Some(80)));

        // A replica catching up moves the watermark forward.
        table.observe(2, 120);
        assert_eq!(table.snapshot(Duration::from_secs(60)), (2, Some(100)));

        // A zero TTL ages everyone out.
        assert_eq!(table.snapshot(Duration::ZERO), (0, None));
    }
}
