//! # wsrep-cluster — log-shipping replication for the registry
//!
//! The paper's selection loop assumes the reputation registry is *there*
//! — always answering, close to the querying consumer. One journaled
//! server gives durability; this crate adds **availability and read
//! scale** without giving up the single-writer scoring discipline that
//! makes recovery deterministic:
//!
//! - a [`Primary`] is an ordinary journaled server that additionally
//!   answers the replication opcode family (`ReplPull` /
//!   `ReplHeartbeat`), shipping sealed WAL segments and the live tail
//!   straight off its own log via
//!   [`ShipCursor`](wsrep_journal::ShipCursor);
//! - a [`Replica`] trails the primary **pull-based**, applies records
//!   through [`apply_replicated`](wsrep_serve::ReputationService::apply_replicated)
//!   into its own journaled service, and serves the full wait-free read
//!   surface (`Score` / `TopK` / `Stats`) read-only at a
//!   **bounded-staleness watermark** — its lag in LSNs is visible in
//!   every `Stats` response;
//! - failover is [`Replica::promote`]: stop pulling, flush, lift
//!   read-only. The replica journals the shipped stream at the
//!   primary's own LSNs, so the promoted node's log is a prefix-equal
//!   stand-in for the dead primary's — checked, not assumed, by the
//!   [`twin`] module's sequential replay.
//!
//! Replication is asynchronous: the primary never waits for a replica,
//! and a record is only *guaranteed* replicated once a replica's
//! watermark passed it. What can never happen is divergence — every
//! shipped record was (or will be, barring primary disk loss before its
//! next fsync) part of the primary's acknowledged history, in the same
//! order.

pub mod primary;
pub mod replica;
pub mod twin;
pub mod watermark;

pub use primary::{Primary, PrimaryConfig};
pub use replica::{Replica, ReplicaConfig};
pub use twin::{verify_against_sequential_replay, TwinReport};
pub use watermark::WatermarkTable;
