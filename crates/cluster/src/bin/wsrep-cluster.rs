//! wsrep-cluster — run one node of a replicated registry.
//!
//! ```text
//! wsrep-cluster primary --journal=DIR [--listen ADDR] [--recover=DIR]
//!                       [--shards N] [--workers N]
//! wsrep-cluster replica --primary ADDR --journal=DIR [--listen ADDR]
//!                       [--id N] [--shards N] [--workers N]
//!                       [--promote-on-disconnect SECS]
//! ```
//!
//! Both roles print their bound address as the first (flushed) stdout
//! line — `wsrep-cluster primary listening on 127.0.0.1:40519` — so
//! callers binding port 0 can parse it.
//!
//! A replica started with `--promote-on-disconnect SECS` watches the
//! replication link; once the primary has been silent that long, the
//! replica promotes itself, verifies its state against a sequential
//! replay of its own journal (the twin check), prints one JSON line —
//!
//! ```text
//! {"promoted":true,"twin_equal":true,"durable_lsn":64,...}
//! ```
//!
//! — and keeps serving, now accepting writes. Either role exits 0 after
//! a `Shutdown` request drains it.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;
use wsrep_cluster::{
    verify_against_sequential_replay, Primary, PrimaryConfig, Replica, ReplicaConfig,
};
use wsrep_serve::ReputationService;
use wsrep_server::ServerConfig;

fn usage() -> ! {
    eprintln!(
        "usage: wsrep-cluster primary --journal=DIR [--listen ADDR] [--recover=DIR] [--shards N] [--workers N]\n\
            \x20      wsrep-cluster replica --primary ADDR --journal=DIR [--listen ADDR] [--id N] [--shards N] [--workers N] [--promote-on-disconnect SECS]"
    );
    exit(2)
}

struct Args {
    listen: String,
    journal: Option<PathBuf>,
    recover: bool,
    shards: usize,
    workers: usize,
    primary: Option<String>,
    replica_id: u64,
    promote_after: Option<Duration>,
}

fn parse_args(mut args: std::env::Args) -> Args {
    let mut parsed = Args {
        listen: "127.0.0.1:0".to_string(),
        journal: None,
        recover: false,
        shards: 8,
        workers: 4,
        primary: None,
        replica_id: 1,
        promote_after: None,
    };
    while let Some(arg) = args.next() {
        let mut flag_value = |name: &str| -> String {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        if let Some(value) = arg.strip_prefix("--listen=") {
            parsed.listen = value.to_string();
        } else if arg == "--listen" {
            parsed.listen = flag_value("--listen");
        } else if let Some(dir) = arg.strip_prefix("--journal=") {
            parsed.journal = Some(PathBuf::from(dir));
        } else if arg == "--journal" {
            parsed.journal = Some(PathBuf::from(flag_value("--journal")));
        } else if let Some(dir) = arg.strip_prefix("--recover=") {
            parsed.journal = Some(PathBuf::from(dir));
            parsed.recover = true;
        } else if let Some(value) = arg.strip_prefix("--shards=") {
            parsed.shards = value.parse().expect("--shards expects a number");
        } else if arg == "--shards" {
            parsed.shards = flag_value("--shards").parse().expect("--shards: number");
        } else if let Some(value) = arg.strip_prefix("--workers=") {
            parsed.workers = value.parse().expect("--workers expects a number");
        } else if arg == "--workers" {
            parsed.workers = flag_value("--workers").parse().expect("--workers: number");
        } else if let Some(value) = arg.strip_prefix("--primary=") {
            parsed.primary = Some(value.to_string());
        } else if arg == "--primary" {
            parsed.primary = Some(flag_value("--primary"));
        } else if let Some(value) = arg.strip_prefix("--id=") {
            parsed.replica_id = value.parse().expect("--id expects a number");
        } else if arg == "--id" {
            parsed.replica_id = flag_value("--id").parse().expect("--id: number");
        } else if let Some(value) = arg.strip_prefix("--promote-on-disconnect=") {
            let secs: f64 = value.parse().expect("--promote-on-disconnect: seconds");
            parsed.promote_after = Some(Duration::from_secs_f64(secs));
        } else if arg == "--promote-on-disconnect" {
            let secs: f64 = flag_value("--promote-on-disconnect")
                .parse()
                .expect("--promote-on-disconnect: seconds");
            parsed.promote_after = Some(Duration::from_secs_f64(secs));
        } else {
            eprintln!("unknown argument: {arg}");
            usage();
        }
    }
    parsed
}

fn announce(role: &str, addr: std::net::SocketAddr) {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let _ = writeln!(out, "wsrep-cluster {role} listening on {addr}");
    let _ = out.flush();
}

fn run_primary(args: Args) -> i32 {
    let Some(dir) = &args.journal else {
        eprintln!("wsrep-cluster primary: --journal=DIR (or --recover=DIR) is required");
        return 2;
    };
    let mut builder = ReputationService::builder().shards(args.shards);
    builder = if args.recover {
        builder.recover_from(dir)
    } else {
        builder.journal(dir)
    };
    let service = Arc::new(match builder.try_build() {
        Ok(service) => service,
        Err(err) => {
            eprintln!("wsrep-cluster primary: failed to open journal: {err}");
            return 1;
        }
    });
    let config = PrimaryConfig {
        server: ServerConfig {
            workers: args.workers.max(1),
            ..ServerConfig::default()
        },
        ..PrimaryConfig::default()
    };
    let primary = match Primary::start(Arc::clone(&service), &args.listen[..], config) {
        Ok(primary) => primary,
        Err(err) => {
            eprintln!(
                "wsrep-cluster primary: failed to bind {}: {err}",
                args.listen
            );
            return 1;
        }
    };
    announce("primary", primary.local_addr());

    while !primary.is_shutting_down() {
        std::thread::sleep(Duration::from_millis(50));
    }
    let repl = primary.replication_stats();
    primary.join();
    let stats = service.stats();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let _ = writeln!(
        out,
        "{{\"shutdown\":\"clean\",\"role\":\"primary\",\"durable_lsn\":{},\"replicas\":{},\"min_replica_lsn\":{},\"feedback_applied\":{}}}",
        repl.local_durable_lsn, repl.replicas, repl.remote_durable_lsn, stats.feedback,
    );
    0
}

fn run_replica(args: Args) -> i32 {
    let Some(primary_addr) = args.primary.clone() else {
        eprintln!("wsrep-cluster replica: --primary ADDR is required");
        return 2;
    };
    let Some(dir) = args.journal.clone() else {
        eprintln!("wsrep-cluster replica: --journal=DIR is required");
        return 2;
    };
    let config = ReplicaConfig {
        server: ServerConfig {
            workers: args.workers.max(1),
            ..ServerConfig::default()
        },
        shards: args.shards,
        replica_id: args.replica_id,
        ..ReplicaConfig::default()
    };
    let mut replica = match Replica::start(primary_addr, &args.listen[..], &dir, config) {
        Ok(replica) => replica,
        Err(err) => {
            eprintln!("wsrep-cluster replica: failed to start: {err}");
            return 1;
        }
    };
    announce("replica", replica.local_addr());

    let mut promoted = false;
    while !replica.is_shutting_down() {
        if !promoted {
            if let Some(after) = args.promote_after {
                let stats = replica.replication_stats();
                if !stats.connected && replica.primary_silence() >= after {
                    let durable_lsn = replica.promote();
                    promoted = true;
                    let twin = verify_against_sequential_replay(replica.service(), &dir);
                    let stdout = std::io::stdout();
                    let mut out = stdout.lock();
                    match twin {
                        Ok(report) => {
                            let _ = writeln!(
                                out,
                                "{{\"promoted\":true,\"twin_equal\":{},\"durable_lsn\":{},\"records\":{},\"subjects\":{}}}",
                                report.equal(),
                                durable_lsn,
                                report.records,
                                report.subjects,
                            );
                        }
                        Err(err) => {
                            let _ = writeln!(
                                out,
                                "{{\"promoted\":true,\"twin_equal\":false,\"durable_lsn\":{durable_lsn},\"twin_error\":\"{err}\"}}",
                            );
                        }
                    }
                    let _ = out.flush();
                }
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let repl = replica.replication_stats();
    let feedback = replica.service().stats().feedback;
    replica.join();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let _ = writeln!(
        out,
        "{{\"shutdown\":\"clean\",\"role\":\"{}\",\"durable_lsn\":{},\"lag\":{},\"feedback_applied\":{}}}",
        if promoted { "promoted" } else { "replica" },
        repl.local_durable_lsn,
        repl.lag,
        feedback,
    );
    0
}

fn main() {
    let mut args = std::env::args();
    let _argv0 = args.next();
    let role = args.next().unwrap_or_else(|| usage());
    let parsed = parse_args(args);
    let code = match role.as_str() {
        "primary" => run_primary(parsed),
        "replica" => run_replica(parsed),
        _ => {
            eprintln!("unknown role: {role}");
            usage()
        }
    };
    exit(code);
}
