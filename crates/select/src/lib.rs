//! # wsrep-select — web-service selection strategies and evaluation
//!
//! The selection problem the whole survey is about: "a service consumer
//! faces a dilemma in having to make a choice from a bunch of services
//! offering the same function". This crate provides:
//!
//! * [`strategy`] — interchangeable selection strategies: random (the
//!   paper's "blind choice"), advertised-QoS (gameable), SLA-backed, and
//!   reputation-backed strategies wrapping any
//!   [`wsrep_core::ReputationMechanism`];
//! * [`bootstrap`] — Section 5's provider-level reputation: new services
//!   seeded from their provider's track record;
//! * [`eval`] — the market loop: consumers select, invoke, experience,
//!   report; outputs utility / regret / hit-rate / cost metrics;
//! * [`report`] — markdown table rendering for the experiment binaries;
//! * [`served`] — a strategy backed by the concurrent
//!   [`wsrep_serve::ReputationService`] registry, so the served stack is
//!   raceable against the in-process strategies in the same market.

pub mod bootstrap;
pub mod eval;
pub mod report;
pub mod served;
pub mod strategy;

pub use eval::{Market, MarketConfig, MarketReport};
pub use served::ServedSelect;
pub use strategy::SelectionStrategy;
