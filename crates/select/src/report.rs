//! Markdown table rendering for the experiment binaries.

/// A simple markdown table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; short rows are padded, long rows truncated to the
    /// header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as a GitHub-flavored markdown table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, &w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        out.push_str(&fmt_row(&sep, &widths));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Format a float with 3 decimals for table cells.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Print an experiment section header.
pub fn section(title: &str) {
    println!("\n## {title}\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "22"]);
        let text = t.render();
        assert!(text.contains("| name  | value |"));
        assert!(text.contains("| alpha | 1     |"));
        assert!(text.lines().count() == 4);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["only"]);
        assert_eq!(t.len(), 1);
        let text = t.render();
        assert!(text.contains("only"));
    }

    #[test]
    fn formatters_behave() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(pct(0.5), "50.0%");
    }
}
