//! The market evaluation loop.
//!
//! Each round: every consumer searches the registry, the strategy chooses
//! a service, the consumer invokes it, experiences the latent quality,
//! and files (possibly dishonest) feedback, which flows to the central
//! QoS store and to the strategy. The report carries the survey's
//! comparison currencies: achieved utility, regret against the oracle,
//! top-choice hit rate, and information-source costs.

use crate::strategy::{Candidate, SelectionContext, SelectionStrategy, SlaSelect};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wsrep_core::id::AgentId;
use wsrep_sim::world::World;

/// Knobs of a market run.
#[derive(Debug, Clone)]
pub struct MarketConfig {
    /// Rounds to simulate.
    pub rounds: u64,
    /// RNG seed for the strategy/selection randomness.
    pub seed: u64,
    /// Round at which the central registry fails, if any.
    pub registry_fails_at: Option<u64>,
    /// Round at which it recovers, if it failed.
    pub registry_recovers_at: Option<u64>,
}

impl MarketConfig {
    /// `rounds` rounds with a fixed seed and a healthy registry.
    pub fn new(rounds: u64, seed: u64) -> Self {
        MarketConfig {
            rounds,
            seed,
            registry_fails_at: None,
            registry_recovers_at: None,
        }
    }
}

/// Aggregated outcome of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MarketReport {
    /// Mean expected utility of the chosen services (ground truth).
    pub mean_utility: f64,
    /// Mean regret: oracle-best expected utility minus achieved.
    pub mean_regret: f64,
    /// Fraction of choices that were the oracle-best service.
    pub hit_rate: f64,
    /// Selections made.
    pub selections: u64,
    /// Selections that found no candidates (registry down, no cache).
    pub starved: u64,
    /// SLA accounting if the strategy used SLAs.
    pub negotiation_paid: f64,
    /// Penalties collected from violating providers.
    pub penalties_collected: f64,
    /// Mean utility over the *last quarter* of the run (post-learning).
    pub settled_utility: f64,
}

/// The market driver binding a [`World`] to a strategy.
#[derive(Debug)]
pub struct Market {
    world: World,
    config: MarketConfig,
}

impl Market {
    /// Build a market over a generated world.
    pub fn new(world: World, config: MarketConfig) -> Self {
        Market { world, config }
    }

    /// Access the underlying world (e.g. for oracle statistics).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Run the loop with the given strategy, consuming the market.
    pub fn run(mut self, strategy: &mut dyn SelectionStrategy) -> MarketReport {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut report = MarketReport::default();
        let mut utility_sum = 0.0;
        let mut regret_sum = 0.0;
        let mut hits = 0u64;
        let mut tail_utility = 0.0;
        let mut tail_n = 0u64;
        let tail_start = self.config.rounds - self.config.rounds / 4;

        // Candidate cache survives registry failures (consumers remember).
        let mut cached: Vec<Candidate> = Vec::new();

        for round in 0..self.config.rounds {
            if Some(round) == self.config.registry_fails_at {
                self.world.registry.fail();
            }
            if Some(round) == self.config.registry_recovers_at {
                self.world.registry.recover();
            }
            let registry_up = self.world.registry.is_up();
            let candidates: Vec<Candidate> = match self.world.registry.search(0) {
                Some(listings) => {
                    let fresh: Vec<Candidate> = listings
                        .into_iter()
                        .map(|l| Candidate {
                            service: l.service,
                            provider: l.provider,
                            advertised: l.advertised.clone(),
                        })
                        .collect();
                    cached = fresh.clone();
                    fresh
                }
                None => cached.clone(),
            };

            for idx in 0..self.world.consumers.len() {
                let consumer = self.world.consumers[idx].clone();
                let ctx = SelectionContext {
                    consumer: &consumer,
                    candidates: &candidates,
                    now: self.world.now(),
                    registry_up,
                };
                let Some(choice) = strategy.choose(&ctx, &mut rng) else {
                    report.starved += 1;
                    continue;
                };
                let candidate = candidates[choice].clone();
                let Some((observed, feedback)) =
                    self.world.invoke_and_report(idx, candidate.service)
                else {
                    report.starved += 1;
                    continue;
                };
                // Ground-truth accounting.
                let achieved = self.world.expected_utility(&consumer, candidate.service);
                let oracle = self
                    .world
                    .oracle_best(&consumer)
                    .map(|s| self.world.expected_utility(&consumer, s))
                    .unwrap_or(achieved);
                utility_sum += achieved;
                regret_sum += (oracle - achieved).max(0.0);
                if (oracle - achieved).abs() < 1e-12 {
                    hits += 1;
                }
                if round >= tail_start {
                    tail_utility += achieved;
                    tail_n += 1;
                }
                report.selections += 1;

                // Feedback flows to the central store (when up) and the
                // strategy.
                if registry_up {
                    self.world
                        .registry
                        .accept_feedback(feedback.clone())
                        .expect("registry state is fixed within a round");
                    strategy.observe(&feedback);
                } else if strategy.centralization()
                    == wsrep_core::typology::Centralization::Decentralized
                {
                    // Decentralized knowledge doesn't need the registry.
                    strategy.observe(&feedback);
                }
                let _ = observed;
            }
            self.world.step();
            strategy.refresh(self.world.now());
        }
        if report.selections > 0 {
            report.mean_utility = utility_sum / report.selections as f64;
            report.mean_regret = regret_sum / report.selections as f64;
            report.hit_rate = hits as f64 / report.selections as f64;
        }
        if tail_n > 0 {
            report.settled_utility = tail_utility / tail_n as f64;
        }
        report
    }

    /// Run with an [`SlaSelect`] strategy, wiring SLA settlement into each
    /// invocation (the generic loop cannot see observations, so SLAs get
    /// their own runner).
    pub fn run_sla(mut self, strategy: &mut SlaSelect) -> MarketReport {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut report = MarketReport::default();
        let mut utility_sum = 0.0;
        let mut regret_sum = 0.0;
        let mut hits = 0u64;
        let mut tail_utility = 0.0;
        let mut tail_n = 0u64;
        let tail_start = self.config.rounds - self.config.rounds / 4;

        for _round in 0..self.config.rounds {
            let candidates: Vec<Candidate> = self
                .world
                .registry
                .search(0)
                .map(|ls| {
                    ls.into_iter()
                        .map(|l| Candidate {
                            service: l.service,
                            provider: l.provider,
                            advertised: l.advertised.clone(),
                        })
                        .collect()
                })
                .unwrap_or_default();
            for idx in 0..self.world.consumers.len() {
                let consumer = self.world.consumers[idx].clone();
                let ctx = SelectionContext {
                    consumer: &consumer,
                    candidates: &candidates,
                    now: self.world.now(),
                    registry_up: true,
                };
                let Some(choice) = strategy.choose(&ctx, &mut rng) else {
                    report.starved += 1;
                    continue;
                };
                let candidate = candidates[choice].clone();
                let Some((observed, _feedback)) =
                    self.world.invoke_and_report(idx, candidate.service)
                else {
                    continue;
                };
                strategy.settle(consumer.id, &candidate, &observed);
                let achieved = self.world.expected_utility(&consumer, candidate.service);
                let oracle = self
                    .world
                    .oracle_best(&consumer)
                    .map(|s| self.world.expected_utility(&consumer, s))
                    .unwrap_or(achieved);
                utility_sum += achieved;
                regret_sum += (oracle - achieved).max(0.0);
                if (oracle - achieved).abs() < 1e-12 {
                    hits += 1;
                }
                if _round >= tail_start {
                    tail_utility += achieved;
                    tail_n += 1;
                }
                report.selections += 1;
            }
            self.world.step();
        }
        if report.selections > 0 {
            report.mean_utility = utility_sum / report.selections as f64;
            report.mean_regret = regret_sum / report.selections as f64;
            report.hit_rate = hits as f64 / report.selections as f64;
        }
        if tail_n > 0 {
            report.settled_utility = tail_utility / tail_n as f64;
        }
        report.negotiation_paid = strategy.negotiation_paid;
        report.penalties_collected = strategy.penalties_collected;
        report
    }
}

/// Convenience used by many tests and experiments: an `AgentId` for the
/// virtual "market analyst" observer.
pub fn analyst() -> AgentId {
    AgentId::new(u64::MAX)
}

/// Run one market per seed on worker threads (scoped via crossbeam, so the
/// closures may borrow), returning the reports in seed order. The
/// experiment binaries average over seeds; markets are independent, so
/// this is embarrassingly parallel.
///
/// `build` receives the seed and returns the `(world, config, strategy)`
/// triple for that run.
pub fn run_seeds_parallel<F>(seeds: &[u64], build: F) -> Vec<MarketReport>
where
    F: Fn(u64) -> (World, MarketConfig, Box<dyn SelectionStrategy + Send>) + Sync,
{
    let mut out: Vec<Option<MarketReport>> = seeds.iter().map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        for (slot, &seed) in out.iter_mut().zip(seeds) {
            let build = &build;
            scope.spawn(move |_| {
                let (world, config, mut strategy) = build(seed);
                *slot = Some(Market::new(world, config).run(strategy.as_mut()));
            });
        }
    })
    .expect("market worker panicked");
    out.into_iter()
        .map(|r| r.expect("worker filled slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{AdvertisedQos, RandomSelect, ReputationSelect};
    use wsrep_core::mechanisms::beta::BetaMechanism;
    use wsrep_sim::world::WorldConfig;

    fn run_with(strategy: &mut dyn SelectionStrategy, seed: u64, rounds: u64) -> MarketReport {
        let world = World::generate(WorldConfig::small(seed));
        Market::new(world, MarketConfig::new(rounds, seed)).run(strategy)
    }

    #[test]
    fn reputation_beats_random_in_an_honest_market() {
        let mut random = RandomSelect;
        let mut rep = ReputationSelect::new(Box::new(BetaMechanism::new()));
        let base = run_with(&mut random, 11, 40);
        let smart = run_with(&mut rep, 11, 40);
        assert!(
            smart.settled_utility > base.settled_utility + 0.05,
            "reputation {} vs random {}",
            smart.settled_utility,
            base.settled_utility
        );
        assert!(smart.mean_regret < base.mean_regret);
    }

    #[test]
    fn honest_advertisements_are_informative() {
        let mut random = RandomSelect;
        let mut adv = AdvertisedQos;
        let base = run_with(&mut random, 13, 20);
        let informed = run_with(&mut adv, 13, 20);
        assert!(informed.mean_utility > base.mean_utility);
    }

    #[test]
    fn exaggerated_advertisements_mislead_the_advertised_strategy() {
        // With saturated claims every exaggerator advertises the same
        // perfect vector, so the advertised strategy locks onto an
        // arbitrary exaggerator whose true quality is a lottery draw.
        // A single seed therefore proves nothing either way — compare the
        // strategies on their *average* settled utility over several
        // worlds. Homogeneous preferences isolate the gameability
        // question from personalization (beta reputation is global).
        let seeds = [17u64, 18, 19, 23, 29];
        let mut lied_to = 0.0;
        let mut informed = 0.0;
        for &seed in &seeds {
            let mut cfg = WorldConfig::small(seed);
            cfg.preference_heterogeneity = 0.0;
            cfg.exaggerating_fraction = 0.5;
            cfg.exaggeration_amount = 1.0; // claims saturate: zero information
            let world = World::generate(cfg.clone());
            let mut adv = AdvertisedQos;
            lied_to += Market::new(world, MarketConfig::new(60, seed))
                .run(&mut adv)
                .settled_utility;

            let mut rep = ReputationSelect::new(Box::new(BetaMechanism::new()));
            let world2 = World::generate(cfg);
            informed += Market::new(world2, MarketConfig::new(60, seed))
                .run(&mut rep)
                .settled_utility;
        }
        assert!(
            informed >= lied_to,
            "feedback-based {} vs gameable {} (mean over {} seeds)",
            informed / seeds.len() as f64,
            lied_to / seeds.len() as f64,
            seeds.len()
        );
    }

    #[test]
    fn registry_failure_starves_nobody_but_blinds_centralized() {
        let world = World::generate(WorldConfig::small(19));
        let mut rep = ReputationSelect::new(Box::new(BetaMechanism::new()));
        let mut config = MarketConfig::new(30, 19);
        config.registry_fails_at = Some(15);
        let report = Market::new(world, config).run(&mut rep);
        // The cache keeps candidates flowing.
        assert_eq!(report.starved, 0);
        assert!(report.selections > 0);
    }

    #[test]
    fn sla_runner_accounts_costs() {
        let mut cfg = WorldConfig::small(23);
        cfg.exaggerating_fraction = 0.5;
        cfg.exaggeration_amount = 0.6;
        let world = World::generate(cfg);
        let mut strat = SlaSelect::new();
        let report = Market::new(world, MarketConfig::new(15, 23)).run_sla(&mut strat);
        assert!(report.negotiation_paid > 0.0);
        assert!(
            report.penalties_collected > 0.0,
            "exaggerators must violate their SLAs"
        );
    }

    #[test]
    fn reports_are_deterministic_for_a_seed() {
        let mut a = RandomSelect;
        let mut b = RandomSelect;
        assert_eq!(run_with(&mut a, 29, 10), run_with(&mut b, 29, 10));
    }

    #[test]
    fn parallel_seed_runs_match_serial_ones() {
        use crate::strategy::ReputationSelect;
        let seeds = [7u64, 11, 13];
        let parallel = run_seeds_parallel(&seeds, |seed| {
            let mut cfg = WorldConfig::small(seed);
            cfg.preference_heterogeneity = 0.0;
            (
                World::generate(cfg),
                MarketConfig::new(15, seed),
                Box::new(ReputationSelect::new(Box::new(BetaMechanism::new())))
                    as Box<dyn SelectionStrategy + Send>,
            )
        });
        for (i, &seed) in seeds.iter().enumerate() {
            let mut cfg = WorldConfig::small(seed);
            cfg.preference_heterogeneity = 0.0;
            let mut strat = ReputationSelect::new(Box::new(BetaMechanism::new()));
            let serial =
                Market::new(World::generate(cfg), MarketConfig::new(15, seed)).run(&mut strat);
            assert_eq!(parallel[i], serial, "seed {seed}");
        }
    }
}
