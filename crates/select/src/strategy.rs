//! Selection strategies.
//!
//! Section 2 of the paper enumerates how consumers cope today: random
//! ("blind") choice, trusting provider-advertised QoS, negotiating SLAs,
//! third-party monitoring, and feedback-based trust & reputation. Each is
//! a [`SelectionStrategy`] here so the experiments can race them.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeMap;
use std::fmt;
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ProviderId, ServiceId};
use wsrep_core::mechanism::ReputationMechanism;
use wsrep_core::time::Time;
use wsrep_core::typology::Centralization;
use wsrep_qos::normalize::NormalizationMatrix;
use wsrep_qos::sla::Sla;
use wsrep_qos::value::QosVector;
use wsrep_sim::consumer::Consumer;

/// A candidate offer in a selection round.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The service offered.
    pub service: ServiceId,
    /// Its provider.
    pub provider: ProviderId,
    /// The provider's QoS claim.
    pub advertised: QosVector,
}

/// Everything a strategy sees when asked to choose.
#[derive(Debug)]
pub struct SelectionContext<'a> {
    /// The consumer choosing.
    pub consumer: &'a Consumer,
    /// Candidate services (empty when the registry is down and no cache
    /// exists).
    pub candidates: &'a [Candidate],
    /// Current round.
    pub now: Time,
    /// Whether the central registry (and any centralized reputation
    /// store) is reachable this round.
    pub registry_up: bool,
}

/// A web-service selection strategy.
pub trait SelectionStrategy: fmt::Debug {
    /// Name for experiment tables.
    fn name(&self) -> String;

    /// Where this strategy's knowledge lives — centralized strategies go
    /// blind when the registry fails (Figure 4's single-point-of-failure
    /// claim), decentralized ones keep answering.
    fn centralization(&self) -> Centralization {
        Centralization::Centralized
    }

    /// Pick a candidate (index into `ctx.candidates`).
    fn choose(&mut self, ctx: &SelectionContext<'_>, rng: &mut StdRng) -> Option<usize>;

    /// Learn from a filed feedback report (the central collection path:
    /// every report reaches the strategy unless the registry is down).
    fn observe(&mut self, feedback: &Feedback) {
        let _ = feedback;
    }

    /// Advance internal clocks / fixed points once per round.
    fn refresh(&mut self, now: Time) {
        let _ = now;
    }
}

/// The paper's "blind choice": uniform random.
#[derive(Debug, Default)]
pub struct RandomSelect;

impl SelectionStrategy for RandomSelect {
    fn name(&self) -> String {
        "random".into()
    }

    fn centralization(&self) -> Centralization {
        // Random needs nothing; treat as decentralized (never blinded).
        Centralization::Decentralized
    }

    fn choose(&mut self, ctx: &SelectionContext<'_>, rng: &mut StdRng) -> Option<usize> {
        if ctx.candidates.is_empty() {
            None
        } else {
            Some(rng.gen_range(0..ctx.candidates.len()))
        }
    }
}

/// Trust the providers' advertisements: normalize the advertised vectors
/// and take the best under the consumer's preferences. Exactly as gameable
/// as the paper says.
#[derive(Debug, Default)]
pub struct AdvertisedQos;

impl SelectionStrategy for AdvertisedQos {
    fn name(&self) -> String {
        "advertised".into()
    }

    fn choose(&mut self, ctx: &SelectionContext<'_>, _rng: &mut StdRng) -> Option<usize> {
        if ctx.candidates.is_empty() {
            return None;
        }
        let vectors: Vec<QosVector> = ctx
            .candidates
            .iter()
            .map(|c| c.advertised.clone())
            .collect();
        let mut metrics: Vec<_> = vectors.iter().flat_map(|v| v.metrics()).collect();
        metrics.sort();
        metrics.dedup();
        let matrix = NormalizationMatrix::new(&vectors, &metrics);
        matrix.best(&ctx.consumer.prefs)
    }
}

/// Advertised QoS hardened with SLAs: providers whose services violate
/// their (advertisement-derived) SLA too often are blacklisted, and the
/// violation penalties / negotiation costs are accounted.
#[derive(Debug)]
pub struct SlaSelect {
    /// Violation *rate* above which a provider is avoided. Jittery but
    /// honest deliveries violate occasionally; exaggerators violate almost
    /// every time, so a rate threshold separates them.
    max_violation_rate: f64,
    /// Settlements required before the rate is trusted.
    min_settlements: u32,
    /// SLA slack against the advertisement.
    slack: f64,
    /// Negotiation cost charged per new agreement.
    negotiation_cost: f64,
    /// Penalty per violated obligation.
    penalty: f64,
    /// Per provider: (violations, settlements).
    violations: BTreeMap<ProviderId, (u32, u32)>,
    agreements: BTreeMap<(AgentId, ServiceId), Sla>,
    /// Accounting: total negotiation cost paid and penalties collected.
    pub negotiation_paid: f64,
    /// Penalties collected from providers.
    pub penalties_collected: f64,
    inner: AdvertisedQos,
}

impl SlaSelect {
    /// Defaults: blacklist above 50% violation rate after 6 settlements,
    /// 30% slack, cost 1, penalty 1.
    pub fn new() -> Self {
        SlaSelect {
            max_violation_rate: 0.5,
            min_settlements: 6,
            slack: 0.3,
            negotiation_cost: 1.0,
            penalty: 1.0,
            violations: BTreeMap::new(),
            agreements: BTreeMap::new(),
            negotiation_paid: 0.0,
            penalties_collected: 0.0,
            inner: AdvertisedQos,
        }
    }

    /// Check an observation against the consumer's agreement for the
    /// service, updating violation and penalty accounting.
    pub fn settle(&mut self, consumer: AgentId, candidate: &Candidate, observed: &QosVector) {
        let sla = self
            .agreements
            .entry((consumer, candidate.service))
            .or_insert_with(|| {
                self.negotiation_paid += self.negotiation_cost;
                Sla::from_advertised(
                    &candidate.advertised,
                    self.slack,
                    self.penalty,
                    self.negotiation_cost,
                )
            });
        let outcome = sla.check(observed);
        let e = self.violations.entry(candidate.provider).or_insert((0, 0));
        e.1 += 1;
        if !outcome.compliant() {
            self.penalties_collected += outcome.penalty;
            e.0 += 1;
        }
    }

    /// Whether a provider is currently blacklisted.
    pub fn blacklisted(&self, provider: ProviderId) -> bool {
        self.violations
            .get(&provider)
            .map(|&(v, n)| {
                n >= self.min_settlements && v as f64 / n as f64 > self.max_violation_rate
            })
            .unwrap_or(false)
    }
}

impl Default for SlaSelect {
    fn default() -> Self {
        Self::new()
    }
}

impl SelectionStrategy for SlaSelect {
    fn name(&self) -> String {
        "sla".into()
    }

    fn choose(&mut self, ctx: &SelectionContext<'_>, rng: &mut StdRng) -> Option<usize> {
        let allowed: Vec<usize> = ctx
            .candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| !self.blacklisted(c.provider))
            .map(|(i, _)| i)
            .collect();
        if allowed.is_empty() {
            // Everyone blacklisted: fall back to the full set.
            return self.inner.choose(ctx, rng);
        }
        let subset: Vec<Candidate> = allowed.iter().map(|&i| ctx.candidates[i].clone()).collect();
        let sub_ctx = SelectionContext {
            consumer: ctx.consumer,
            candidates: &subset,
            now: ctx.now,
            registry_up: ctx.registry_up,
        };
        self.inner.choose(&sub_ctx, rng).map(|j| allowed[j])
    }
}

/// A reputation-backed strategy wrapping any mechanism: ε-greedy over the
/// mechanism's personalized estimates, learning from all filed feedback.
pub struct ReputationSelect {
    mechanism: Box<dyn ReputationMechanism>,
    /// Exploration rate.
    epsilon: f64,
    /// Prior trust assigned to candidates the mechanism knows nothing
    /// about. The neutral 0.5 is newcomer-friendly but makes identity
    /// switching (whitewashing) profitable; a skeptical prior below the
    /// market's typical reputation removes that profit at the price of
    /// slower discovery of genuinely new services.
    default_trust: f64,
    label: String,
}

impl fmt::Debug for ReputationSelect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReputationSelect")
            .field("mechanism", &self.label)
            .field("epsilon", &self.epsilon)
            .finish()
    }
}

impl ReputationSelect {
    /// Wrap a mechanism with 10% exploration.
    pub fn new(mechanism: Box<dyn ReputationMechanism>) -> Self {
        let label = mechanism.info().key.to_string();
        ReputationSelect {
            mechanism,
            epsilon: 0.1,
            default_trust: 0.5,
            label,
        }
    }

    /// Change the exploration rate (builder style).
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon.clamp(0.0, 1.0);
        self
    }

    /// Change the prior for unknown candidates (builder style). See the
    /// field docs: low values are whitewash-resistant but slow to adopt
    /// genuine newcomers.
    pub fn with_default_trust(mut self, prior: f64) -> Self {
        self.default_trust = prior.clamp(0.0, 1.0);
        self
    }

    /// Access the wrapped mechanism.
    pub fn mechanism(&self) -> &dyn ReputationMechanism {
        self.mechanism.as_ref()
    }
}

impl SelectionStrategy for ReputationSelect {
    fn name(&self) -> String {
        format!("rep:{}", self.label)
    }

    fn centralization(&self) -> Centralization {
        self.mechanism.info().centralization
    }

    fn choose(&mut self, ctx: &SelectionContext<'_>, rng: &mut StdRng) -> Option<usize> {
        if ctx.candidates.is_empty() {
            return None;
        }
        // A centralized mechanism is unreachable while the registry is
        // down: blind choice (the single point of failure).
        if !ctx.registry_up && self.centralization() == Centralization::Centralized {
            return Some(rng.gen_range(0..ctx.candidates.len()));
        }
        if rng.gen::<f64>() < self.epsilon {
            return Some(rng.gen_range(0..ctx.candidates.len()));
        }
        let mut best: Option<(usize, f64)> = None;
        let mut order: Vec<usize> = (0..ctx.candidates.len()).collect();
        order.shuffle(rng); // random tie-breaking among unknowns
        for i in order {
            let c = &ctx.candidates[i];
            let est = self
                .mechanism
                .personalized(ctx.consumer.id, c.service.into())
                .map(|e| e.value.get())
                .unwrap_or(self.default_trust);
            if best.map(|(_, b)| est > b).unwrap_or(true) {
                best = Some((i, est));
            }
        }
        best.map(|(i, _)| i)
    }

    fn observe(&mut self, feedback: &Feedback) {
        self.mechanism.submit(feedback);
    }

    fn refresh(&mut self, now: Time) {
        self.mechanism.refresh(now);
    }
}

/// Design-time selection — Section 3.1, question 1.
///
/// "The major way currently used is selecting a service manually at
/// design time by software developers … The alternative way is to do the
/// selection automatically at run time." This wrapper freezes whatever
/// the inner strategy picks the *first* time each consumer chooses; the
/// choice is only revisited when the frozen service disappears from the
/// candidate list. Racing it against its own inner strategy quantifies
/// what run-time (re-)selection buys in a dynamic market.
#[derive(Debug)]
pub struct DesignTimeSelect<S> {
    inner: S,
    frozen: BTreeMap<AgentId, ServiceId>,
}

impl<S: SelectionStrategy> DesignTimeSelect<S> {
    /// Freeze around an inner strategy.
    pub fn new(inner: S) -> Self {
        DesignTimeSelect {
            inner,
            frozen: BTreeMap::new(),
        }
    }

    /// How many consumers have a frozen choice.
    pub fn frozen_count(&self) -> usize {
        self.frozen.len()
    }
}

impl<S: SelectionStrategy> SelectionStrategy for DesignTimeSelect<S> {
    fn name(&self) -> String {
        format!("design-time({})", self.inner.name())
    }

    fn centralization(&self) -> Centralization {
        self.inner.centralization()
    }

    fn choose(&mut self, ctx: &SelectionContext<'_>, rng: &mut StdRng) -> Option<usize> {
        if let Some(&frozen) = self.frozen.get(&ctx.consumer.id) {
            if let Some(idx) = ctx.candidates.iter().position(|c| c.service == frozen) {
                return Some(idx);
            }
            // The chosen service vanished: the developer must redo the
            // (design-time) selection.
            self.frozen.remove(&ctx.consumer.id);
        }
        let idx = self.inner.choose(ctx, rng)?;
        self.frozen
            .insert(ctx.consumer.id, ctx.candidates[idx].service);
        Some(idx)
    }

    fn observe(&mut self, feedback: &Feedback) {
        self.inner.observe(feedback);
    }

    fn refresh(&mut self, now: Time) {
        self.inner.refresh(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wsrep_core::mechanisms::beta::BetaMechanism;
    use wsrep_qos::metric::Metric;
    use wsrep_qos::preference::Preferences;
    use wsrep_sim::consumer::RaterBehavior;

    fn consumer() -> Consumer {
        Consumer {
            id: AgentId::new(0),
            prefs: Preferences::uniform([Metric::ResponseTime]),
            behavior: RaterBehavior::Honest,
        }
    }

    fn candidates() -> Vec<Candidate> {
        vec![
            Candidate {
                service: ServiceId::new(0),
                provider: ProviderId::new(0),
                advertised: QosVector::from_pairs([(Metric::ResponseTime, 50.0)]),
            },
            Candidate {
                service: ServiceId::new(1),
                provider: ProviderId::new(1),
                advertised: QosVector::from_pairs([(Metric::ResponseTime, 300.0)]),
            },
        ]
    }

    fn ctx<'a>(c: &'a Consumer, cands: &'a [Candidate], up: bool) -> SelectionContext<'a> {
        SelectionContext {
            consumer: c,
            candidates: cands,
            now: Time::ZERO,
            registry_up: up,
        }
    }

    #[test]
    fn advertised_strategy_picks_the_best_claim() {
        let c = consumer();
        let cands = candidates();
        let mut rng = StdRng::seed_from_u64(1);
        let idx = AdvertisedQos
            .choose(&ctx(&c, &cands, true), &mut rng)
            .unwrap();
        assert_eq!(idx, 0);
    }

    #[test]
    fn random_strategy_covers_all_candidates() {
        let c = consumer();
        let cands = candidates();
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false, false];
        let mut strat = RandomSelect;
        for _ in 0..50 {
            seen[strat.choose(&ctx(&c, &cands, true), &mut rng).unwrap()] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn empty_candidates_yield_none() {
        let c = consumer();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(RandomSelect.choose(&ctx(&c, &[], true), &mut rng), None);
        assert_eq!(AdvertisedQos.choose(&ctx(&c, &[], true), &mut rng), None);
    }

    #[test]
    fn sla_blacklists_repeat_violators() {
        let mut strat = SlaSelect::new();
        let cands = candidates();
        // Candidate 0 claims 50ms but delivers 400ms: violations.
        let terrible = QosVector::from_pairs([(Metric::ResponseTime, 400.0)]);
        for _ in 0..6 {
            strat.settle(AgentId::new(0), &cands[0], &terrible);
        }
        assert!(strat.blacklisted(ProviderId::new(0)));
        assert!(strat.penalties_collected > 0.0);
        assert!(strat.negotiation_paid > 0.0);
        let c = consumer();
        let mut rng = StdRng::seed_from_u64(4);
        let idx = strat.choose(&ctx(&c, &cands, true), &mut rng).unwrap();
        assert_eq!(idx, 1, "blacklisted provider avoided");
    }

    #[test]
    fn sla_compliant_delivery_costs_nothing_extra() {
        let mut strat = SlaSelect::new();
        let cands = candidates();
        let fine = QosVector::from_pairs([(Metric::ResponseTime, 55.0)]);
        strat.settle(AgentId::new(0), &cands[0], &fine);
        assert_eq!(strat.penalties_collected, 0.0);
        assert_eq!(strat.negotiation_paid, 1.0); // one agreement
        strat.settle(AgentId::new(0), &cands[0], &fine);
        assert_eq!(strat.negotiation_paid, 1.0, "agreement reused");
    }

    #[test]
    fn reputation_strategy_learns_and_exploits() {
        let c = consumer();
        let cands = candidates();
        let mut strat = ReputationSelect::new(Box::new(BetaMechanism::new())).with_epsilon(0.0);
        // Service 1 earns good feedback, service 0 bad.
        for t in 0..10 {
            strat.observe(&Feedback::scored(
                AgentId::new(5),
                ServiceId::new(1),
                0.95,
                Time::new(t),
            ));
            strat.observe(&Feedback::scored(
                AgentId::new(5),
                ServiceId::new(0),
                0.05,
                Time::new(t),
            ));
        }
        let mut rng = StdRng::seed_from_u64(5);
        let idx = strat.choose(&ctx(&c, &cands, true), &mut rng).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(strat.name(), "rep:beta");
    }

    #[test]
    fn design_time_wrapper_freezes_the_first_choice() {
        let c = consumer();
        let cands = candidates();
        let mut strat = DesignTimeSelect::new(AdvertisedQos);
        let mut rng = StdRng::seed_from_u64(8);
        let first = strat.choose(&ctx(&c, &cands, true), &mut rng).unwrap();
        assert_eq!(strat.frozen_count(), 1);
        // Even if the advertisement landscape changes, the choice holds.
        let mut flipped = cands.clone();
        flipped[0].advertised = QosVector::from_pairs([(Metric::ResponseTime, 900.0)]);
        flipped[1].advertised = QosVector::from_pairs([(Metric::ResponseTime, 10.0)]);
        let again = strat.choose(&ctx(&c, &flipped, true), &mut rng).unwrap();
        assert_eq!(flipped[again].service, cands[first].service);
    }

    #[test]
    fn design_time_wrapper_rechooses_when_service_vanishes() {
        let c = consumer();
        let cands = candidates();
        let mut strat = DesignTimeSelect::new(AdvertisedQos);
        let mut rng = StdRng::seed_from_u64(9);
        let first = strat.choose(&ctx(&c, &cands, true), &mut rng).unwrap();
        let survivors: Vec<Candidate> = cands
            .iter()
            .filter(|cand| cand.service != cands[first].service)
            .cloned()
            .collect();
        let next = strat.choose(&ctx(&c, &survivors, true), &mut rng).unwrap();
        assert_ne!(survivors[next].service, cands[first].service);
        assert_eq!(strat.frozen_count(), 1, "re-frozen on the survivor");
    }

    #[test]
    fn skeptical_prior_ignores_unknown_candidates() {
        let c = consumer();
        let cands = candidates();
        let mut strat = ReputationSelect::new(Box::new(BetaMechanism::new()))
            .with_epsilon(0.0)
            .with_default_trust(0.1);
        // Service 1 has a known, mediocre record; service 0 is unknown.
        for t in 0..5 {
            strat.observe(&Feedback::scored(
                AgentId::new(5),
                ServiceId::new(1),
                0.4,
                Time::new(t),
            ));
        }
        let mut rng = StdRng::seed_from_u64(10);
        let idx = strat.choose(&ctx(&c, &cands, true), &mut rng).unwrap();
        assert_eq!(idx, 1, "known 0.4 beats unknown 0.1 prior");
    }

    #[test]
    fn centralized_reputation_goes_blind_when_registry_fails() {
        let c = consumer();
        let cands = candidates();
        let mut strat = ReputationSelect::new(Box::new(BetaMechanism::new())).with_epsilon(0.0);
        for t in 0..20 {
            strat.observe(&Feedback::scored(
                AgentId::new(5),
                ServiceId::new(1),
                0.95,
                Time::new(t),
            ));
        }
        let mut rng = StdRng::seed_from_u64(6);
        // Registry down: choices become uniform, so service 0 gets picked
        // sometimes despite service 1's great reputation.
        let mut picked0 = 0;
        for _ in 0..100 {
            if strat.choose(&ctx(&c, &cands, false), &mut rng) == Some(0) {
                picked0 += 1;
            }
        }
        assert!(picked0 > 20, "blind choice is roughly uniform: {picked0}");
    }
}
