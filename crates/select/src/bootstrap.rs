//! Provider-level reputation — the survey's Section 5 direction 2.
//!
//! "For the service for which the trust and reputation has not been
//! established, e.g. a new service …, the trust and reputation of the
//! service provider, accumulated by the provider from providing other
//! services, can be used for the selection." [`ProviderBootstrap`] wraps
//! any service-level mechanism and answers cold-start queries with the
//! provider's aggregate instead of the ignorance prior.

use std::collections::BTreeMap;
use std::fmt;
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ProviderId, ServiceId, SubjectId};
use wsrep_core::mechanism::ReputationMechanism;
use wsrep_core::time::Time;
use wsrep_core::trust::TrustEstimate;
use wsrep_core::typology::MechanismInfo;

/// A service-level mechanism extended with provider-level aggregation.
pub struct ProviderBootstrap {
    inner: Box<dyn ReputationMechanism>,
    /// service → provider mapping, learned from registration.
    ownership: BTreeMap<ServiceId, ProviderId>,
    /// Evidence below which a service falls back to its provider.
    min_confidence: f64,
    /// Whether bootstrapping is active (off = plain inner mechanism, the
    /// ablation baseline).
    enabled: bool,
}

impl fmt::Debug for ProviderBootstrap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProviderBootstrap")
            .field("inner", &self.inner.info().key)
            .field("enabled", &self.enabled)
            .finish()
    }
}

impl ProviderBootstrap {
    /// Wrap a mechanism; bootstrapping on.
    pub fn new(inner: Box<dyn ReputationMechanism>) -> Self {
        ProviderBootstrap {
            inner,
            ownership: BTreeMap::new(),
            min_confidence: 0.3,
            enabled: true,
        }
    }

    /// Disable bootstrapping (ablation baseline).
    pub fn disabled(inner: Box<dyn ReputationMechanism>) -> Self {
        ProviderBootstrap {
            enabled: false,
            ..Self::new(inner)
        }
    }

    /// Register which provider owns a service.
    pub fn register(&mut self, service: ServiceId, provider: ProviderId) {
        self.ownership.insert(service, provider);
    }

    /// The provider-level reputation: evidence-weighted combination of the
    /// inner mechanism's estimates over all the provider's known services.
    pub fn provider_reputation(&self, provider: ProviderId) -> Option<TrustEstimate> {
        let estimates: Vec<TrustEstimate> = self
            .ownership
            .iter()
            .filter(|&(_, &p)| p == provider)
            .filter_map(|(&s, _)| self.inner.global(s.into()))
            .collect();
        if estimates.is_empty() {
            None
        } else {
            Some(TrustEstimate::combine(estimates))
        }
    }
}

impl ReputationMechanism for ProviderBootstrap {
    fn info(&self) -> MechanismInfo {
        self.inner.info()
    }

    fn submit(&mut self, feedback: &Feedback) {
        self.inner.submit(feedback);
    }

    fn global(&self, subject: SubjectId) -> Option<TrustEstimate> {
        match subject {
            SubjectId::Provider(p) => self.provider_reputation(p),
            _ => {
                let own = self.inner.global(subject);
                if !self.enabled {
                    return own;
                }
                match own {
                    Some(est) if est.confidence >= self.min_confidence => Some(est),
                    thin => {
                        // Cold start: seed from the provider's track record.
                        let provider = subject
                            .as_service()
                            .and_then(|s| self.ownership.get(&s).copied());
                        match (thin, provider.and_then(|p| self.provider_reputation(p))) {
                            (Some(own), Some(prov)) => {
                                // Blend by own confidence.
                                let w = own.confidence / self.min_confidence;
                                Some(TrustEstimate::new(
                                    prov.value.blend(own.value, w.min(1.0)),
                                    own.confidence.max(prov.confidence * 0.8),
                                ))
                            }
                            (None, Some(prov)) => {
                                Some(TrustEstimate::new(prov.value, prov.confidence * 0.8))
                            }
                            (own, None) => own,
                        }
                    }
                }
            }
        }
    }

    fn personalized(&self, observer: AgentId, subject: SubjectId) -> Option<TrustEstimate> {
        if !self.enabled {
            return self.inner.personalized(observer, subject);
        }
        let own = self.inner.personalized(observer, subject);
        match own {
            Some(est) if est.confidence >= self.min_confidence => Some(est),
            _ => self.global(subject),
        }
    }

    fn refresh(&mut self, now: Time) {
        self.inner.refresh(now);
    }

    fn feedback_count(&self) -> usize {
        self.inner.feedback_count()
    }
}

/// A selection strategy around [`ProviderBootstrap`] that keeps the
/// service→provider ownership map current from the candidate listings it
/// sees — so reputations follow providers even across service identity
/// changes (whitewashing).
#[derive(Debug)]
pub struct BootstrapSelect {
    mechanism: ProviderBootstrap,
    epsilon: f64,
}

impl BootstrapSelect {
    /// ε-greedy (10%) over a provider-bootstrapped mechanism.
    pub fn new(inner: Box<dyn ReputationMechanism>) -> Self {
        BootstrapSelect {
            mechanism: ProviderBootstrap::new(inner),
            epsilon: 0.1,
        }
    }

    /// Change the exploration rate (builder style).
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon.clamp(0.0, 1.0);
        self
    }

    /// Access the wrapped mechanism (e.g. for provider queries).
    pub fn mechanism(&self) -> &ProviderBootstrap {
        &self.mechanism
    }
}

impl crate::strategy::SelectionStrategy for BootstrapSelect {
    fn name(&self) -> String {
        "rep:bootstrap".into()
    }

    fn choose(
        &mut self,
        ctx: &crate::strategy::SelectionContext<'_>,
        rng: &mut rand::rngs::StdRng,
    ) -> Option<usize> {
        use rand::Rng;
        if ctx.candidates.is_empty() {
            return None;
        }
        // Ownership is public registry metadata: keep the map current.
        for c in ctx.candidates {
            self.mechanism.register(c.service, c.provider);
        }
        if !ctx.registry_up {
            return Some(rng.gen_range(0..ctx.candidates.len()));
        }
        if rng.gen::<f64>() < self.epsilon {
            return Some(rng.gen_range(0..ctx.candidates.len()));
        }
        let mut best: Option<(usize, f64)> = None;
        for (i, c) in ctx.candidates.iter().enumerate() {
            let est = self
                .mechanism
                .personalized(ctx.consumer.id, c.service.into())
                .map(|e| e.value.get())
                .unwrap_or(0.5);
            if best.map(|(_, b)| est > b).unwrap_or(true) {
                best = Some((i, est));
            }
        }
        best.map(|(i, _)| i)
    }

    fn observe(&mut self, feedback: &Feedback) {
        self.mechanism.submit(feedback);
    }

    fn refresh(&mut self, now: Time) {
        self.mechanism.refresh(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrep_core::mechanisms::beta::BetaMechanism;

    fn seeded(enabled: bool) -> ProviderBootstrap {
        let mut b = if enabled {
            ProviderBootstrap::new(Box::new(BetaMechanism::new()))
        } else {
            ProviderBootstrap::disabled(Box::new(BetaMechanism::new()))
        };
        // Provider 0 has two established, excellent services and one new.
        b.register(ServiceId::new(0), ProviderId::new(0));
        b.register(ServiceId::new(1), ProviderId::new(0));
        b.register(ServiceId::new(2), ProviderId::new(0)); // new service
                                                           // Provider 1 has an established terrible service and one new.
        b.register(ServiceId::new(10), ProviderId::new(1));
        b.register(ServiceId::new(11), ProviderId::new(1)); // new service
        for t in 0..20 {
            for s in [0u64, 1] {
                b.submit(&Feedback::scored(
                    AgentId::new(t),
                    ServiceId::new(s),
                    0.95,
                    Time::new(t),
                ));
            }
            b.submit(&Feedback::scored(
                AgentId::new(t),
                ServiceId::new(10),
                0.05,
                Time::new(t),
            ));
        }
        b
    }

    #[test]
    fn new_service_inherits_provider_standing() {
        let b = seeded(true);
        let new_good = b.global(ServiceId::new(2).into()).unwrap();
        let new_bad = b.global(ServiceId::new(11).into()).unwrap();
        assert!(new_good.value.get() > 0.8, "got {}", new_good.value);
        assert!(new_bad.value.get() < 0.2, "got {}", new_bad.value);
    }

    #[test]
    fn disabled_bootstrap_returns_nothing_for_new_services() {
        let b = seeded(false);
        assert_eq!(b.global(ServiceId::new(2).into()), None);
    }

    #[test]
    fn established_services_keep_their_own_reputation() {
        let b = seeded(true);
        let est = b.global(ServiceId::new(10).into()).unwrap();
        assert!(est.value.get() < 0.2, "own bad record not masked");
    }

    #[test]
    fn provider_reputation_aggregates_services() {
        let b = seeded(true);
        let good = b.provider_reputation(ProviderId::new(0)).unwrap();
        let bad = b.provider_reputation(ProviderId::new(1)).unwrap();
        assert!(good.value.get() > bad.value.get());
        // Queryable through the SubjectId::Provider path too.
        let via_subject = b.global(ProviderId::new(0).into()).unwrap();
        assert_eq!(via_subject, good);
    }

    #[test]
    fn unknown_provider_is_none() {
        let b = seeded(true);
        assert_eq!(b.provider_reputation(ProviderId::new(9)), None);
        assert_eq!(b.global(ServiceId::new(99).into()), None);
    }

    #[test]
    fn bootstrap_select_tracks_ownership_across_identity_changes() {
        use crate::strategy::{Candidate, SelectionContext, SelectionStrategy};
        use rand::SeedableRng;
        use wsrep_qos::metric::Metric;
        use wsrep_qos::preference::Preferences;
        use wsrep_qos::value::QosVector;
        use wsrep_sim::consumer::{Consumer, RaterBehavior};

        let mut strat = BootstrapSelect::new(Box::new(BetaMechanism::new())).with_epsilon(0.0);
        let consumer = Consumer {
            id: AgentId::new(0),
            prefs: Preferences::uniform([Metric::Price]),
            behavior: RaterBehavior::Honest,
        };
        let mk = |service: u64, provider: u64| Candidate {
            service: ServiceId::new(service),
            provider: ProviderId::new(provider),
            advertised: QosVector::new(),
        };
        // Provider 1's service earns a terrible record; provider 2's a
        // good one.
        let cands = vec![mk(10, 1), mk(20, 2)];
        let ctx = SelectionContext {
            consumer: &consumer,
            candidates: &cands,
            now: Time::ZERO,
            registry_up: true,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        strat.choose(&ctx, &mut rng); // registers ownership
        for t in 0..10 {
            strat.observe(&Feedback::scored(
                AgentId::new(5),
                ServiceId::new(10),
                0.05,
                Time::new(t),
            ));
            strat.observe(&Feedback::scored(
                AgentId::new(5),
                ServiceId::new(20),
                0.9,
                Time::new(t),
            ));
        }
        // Provider 1 whitewashes: service 10 becomes 11.
        let washed = vec![mk(11, 1), mk(20, 2)];
        let ctx = SelectionContext {
            consumer: &consumer,
            candidates: &washed,
            now: Time::new(10),
            registry_up: true,
        };
        let idx = strat.choose(&ctx, &mut rng).unwrap();
        assert_eq!(
            washed[idx].service,
            ServiceId::new(20),
            "the fresh identity inherits provider 1's bad record"
        );
    }

    #[test]
    fn own_evidence_overrides_bootstrap_as_it_accumulates() {
        let mut b = seeded(true);
        // The new service of the good provider turns out to be terrible.
        for t in 0..20 {
            b.submit(&Feedback::scored(
                AgentId::new(t),
                ServiceId::new(2),
                0.05,
                Time::new(t),
            ));
        }
        let est = b.global(ServiceId::new(2).into()).unwrap();
        assert!(
            est.value.get() < 0.3,
            "evidence beats pedigree: {}",
            est.value
        );
    }
}
