//! Selection through the served registry.
//!
//! [`ServedSelect`] adapts a [`ReputationService`] to the
//! [`SelectionStrategy`] interface, which lets the market loop race the
//! concurrent service against the in-process strategies. The strategy
//! mirrors the round's candidates into the service's listing table
//! (republishing is an idempotent upsert), files every observed feedback
//! through the batched ingest pipeline, and picks via the service's cached
//! `top_k` — so a market run doubles as an integration test of the whole
//! shards → cache → selection path.

use crate::strategy::{SelectionContext, SelectionStrategy};
use rand::rngs::StdRng;
use std::sync::Arc;
use wsrep_core::feedback::Feedback;
use wsrep_core::time::Time;
use wsrep_core::typology::Centralization;
use wsrep_serve::ReputationService;
use wsrep_sim::registry::Listing;

/// A strategy that delegates ranking to a shared [`ReputationService`].
#[derive(Debug)]
pub struct ServedSelect {
    service: Arc<ReputationService>,
    category: u32,
}

impl ServedSelect {
    /// Select through `service`, searching category 0 (the simulator's
    /// single function category).
    pub fn new(service: Arc<ReputationService>) -> Self {
        ServedSelect {
            service,
            category: 0,
        }
    }

    /// Search a different function category.
    pub fn with_category(mut self, category: u32) -> Self {
        self.category = category;
        self
    }

    /// The backing service (e.g. to inspect its stats after a run).
    pub fn service(&self) -> &Arc<ReputationService> {
        &self.service
    }
}

impl SelectionStrategy for ServedSelect {
    fn name(&self) -> String {
        "served".into()
    }

    fn centralization(&self) -> Centralization {
        // The service is a central registry; when the simulated world's
        // registry is down the feedback relay dries up exactly like for
        // any other centralized mechanism.
        Centralization::Centralized
    }

    fn choose(&mut self, ctx: &SelectionContext<'_>, _rng: &mut StdRng) -> Option<usize> {
        if ctx.candidates.is_empty() {
            return None;
        }
        // Mirror the candidate set into the service so its listing table
        // tracks the (possibly stale) view the consumer received.
        for candidate in ctx.candidates {
            self.service
                .publish(Listing {
                    service: candidate.service,
                    provider: candidate.provider,
                    category: self.category,
                    advertised: candidate.advertised.clone(),
                })
                .expect("non-journaled mirror cannot fence publishes");
        }
        // Read-your-own-writes: rank only after everything this strategy
        // has filed is applied, so a selection never depends on how far
        // the writer thread happened to get.
        self.service.flush();
        let ranked = self
            .service
            .top_k(self.category, &ctx.consumer.prefs, ctx.candidates.len());
        ranked
            .iter()
            .find_map(|r| ctx.candidates.iter().position(|c| c.service == r.service))
    }

    fn observe(&mut self, feedback: &Feedback) {
        // A closed pipeline only happens during shutdown; dropping the
        // report then is fine.
        let _ = self.service.ingest(feedback.clone());
    }

    fn refresh(&mut self, _now: Time) {
        // Round boundary = consistency point: scores next round see
        // everything filed this round.
        self.service.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{Market, MarketConfig};
    use crate::strategy::RandomSelect;
    use wsrep_sim::world::{World, WorldConfig};

    fn run_served(seed: u64, rounds: u64) -> (crate::eval::MarketReport, Arc<ReputationService>) {
        let world = World::generate(WorldConfig::small(seed));
        let service = Arc::new(ReputationService::builder().shards(4).build());
        let mut strategy = ServedSelect::new(Arc::clone(&service));
        let report = Market::new(world, MarketConfig::new(rounds, seed)).run(&mut strategy);
        (report, service)
    }

    #[test]
    fn served_market_runs_and_accumulates_state() {
        let (report, service) = run_served(31, 20);
        assert!(report.selections > 0);
        assert_eq!(report.starved, 0);
        let stats = service.stats();
        assert!(stats.listings > 0, "candidates must be mirrored: {stats:?}");
        assert!(
            stats.feedback > 0,
            "feedback must reach the store: {stats:?}"
        );
        assert!(
            stats.cache_hits > 0,
            "repeat queries within a round must hit the cache: {stats:?}"
        );
    }

    #[test]
    fn served_selection_is_deterministic_per_seed() {
        let (a, _) = run_served(37, 12);
        let (b, _) = run_served(37, 12);
        assert_eq!(a, b);
    }

    #[test]
    fn served_selection_beats_blind_choice() {
        let seeds = [41u64, 43, 47];
        let mut served = 0.0;
        let mut blind = 0.0;
        for &seed in &seeds {
            let (report, _) = run_served(seed, 40);
            served += report.settled_utility;
            let world = World::generate(WorldConfig::small(seed));
            let mut random = RandomSelect;
            blind += Market::new(world, MarketConfig::new(40, seed))
                .run(&mut random)
                .settled_utility;
        }
        assert!(
            served > blind,
            "served {served} must beat blind {blind} over {} seeds",
            seeds.len()
        );
    }
}
