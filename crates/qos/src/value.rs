//! QoS vectors: raw per-metric values attached to advertisements,
//! observations and feedback.

use crate::metric::Metric;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A sparse vector of raw metric values.
///
/// Raw values live in each metric's natural unit (milliseconds, fraction,
/// requests/s, currency). Mapping onto a comparable `\[0, 1\]` scale is the
/// job of [`crate::normalize`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct QosVector {
    values: BTreeMap<Metric, f64>,
}

impl QosVector {
    /// An empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(metric, value)` pairs.
    ///
    /// ```
    /// use wsrep_qos::{value::QosVector, metric::Metric};
    /// let v = QosVector::from_pairs([(Metric::ResponseTime, 80.0)]);
    /// assert_eq!(v.get(Metric::ResponseTime), Some(80.0));
    /// ```
    pub fn from_pairs<I: IntoIterator<Item = (Metric, f64)>>(pairs: I) -> Self {
        QosVector {
            values: pairs.into_iter().collect(),
        }
    }

    /// Set the raw value for a metric, replacing any previous value.
    pub fn set(&mut self, metric: Metric, value: f64) -> &mut Self {
        self.values.insert(metric, value);
        self
    }

    /// Raw value for a metric, if present.
    pub fn get(&self, metric: Metric) -> Option<f64> {
        self.values.get(&metric).copied()
    }

    /// Whether the vector carries a value for `metric`.
    pub fn contains(&self, metric: Metric) -> bool {
        self.values.contains_key(&metric)
    }

    /// Iterate `(metric, value)` pairs in stable metric order.
    pub fn iter(&self) -> impl Iterator<Item = (Metric, f64)> + '_ {
        self.values.iter().map(|(m, v)| (*m, *v))
    }

    /// The metrics present in this vector.
    pub fn metrics(&self) -> impl Iterator<Item = Metric> + '_ {
        self.values.keys().copied()
    }

    /// Number of metrics present.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no metrics are present.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Pointwise combination with another vector: metrics present in both
    /// are combined with `f`; metrics present in only one keep their value.
    pub fn merge_with<F: Fn(f64, f64) -> f64>(&self, other: &QosVector, f: F) -> QosVector {
        let mut out = self.clone();
        for (m, v) in other.iter() {
            let merged = match out.get(m) {
                Some(u) => f(u, v),
                None => v,
            };
            out.set(m, merged);
        }
        out
    }

    /// Exponential moving average update toward `sample` with weight
    /// `alpha` in `\[0, 1\]`: `new = (1 - alpha) * old + alpha * sample`.
    /// Metrics absent from `self` adopt the sample value directly.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `\[0, 1\]`.
    pub fn ema_update(&mut self, sample: &QosVector, alpha: f64) {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        for (m, v) in sample.iter() {
            let updated = match self.get(m) {
                Some(old) => (1.0 - alpha) * old + alpha * v,
                None => v,
            };
            self.set(m, updated);
        }
    }
}

impl FromIterator<(Metric, f64)> for QosVector {
    fn from_iter<T: IntoIterator<Item = (Metric, f64)>>(iter: T) -> Self {
        Self::from_pairs(iter)
    }
}

impl Extend<(Metric, f64)> for QosVector {
    fn extend<T: IntoIterator<Item = (Metric, f64)>>(&mut self, iter: T) {
        self.values.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_and_get_round_trip() {
        let mut v = QosVector::new();
        v.set(Metric::Latency, 42.0);
        assert_eq!(v.get(Metric::Latency), Some(42.0));
        assert_eq!(v.get(Metric::Price), None);
        assert!(v.contains(Metric::Latency));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn merge_prefers_f_on_overlap_and_union_elsewhere() {
        let a = QosVector::from_pairs([(Metric::Latency, 10.0), (Metric::Price, 5.0)]);
        let b = QosVector::from_pairs([(Metric::Latency, 20.0), (Metric::Accuracy, 0.9)]);
        let merged = a.merge_with(&b, |x, y| (x + y) / 2.0);
        assert_eq!(merged.get(Metric::Latency), Some(15.0));
        assert_eq!(merged.get(Metric::Price), Some(5.0));
        assert_eq!(merged.get(Metric::Accuracy), Some(0.9));
    }

    #[test]
    fn ema_update_moves_toward_sample() {
        let mut v = QosVector::from_pairs([(Metric::ResponseTime, 100.0)]);
        let sample = QosVector::from_pairs([(Metric::ResponseTime, 200.0)]);
        v.ema_update(&sample, 0.25);
        assert!((v.get(Metric::ResponseTime).unwrap() - 125.0).abs() < 1e-12);
    }

    #[test]
    fn ema_adopts_new_metrics() {
        let mut v = QosVector::new();
        let sample = QosVector::from_pairs([(Metric::Accuracy, 0.8)]);
        v.ema_update(&sample, 0.1);
        assert_eq!(v.get(Metric::Accuracy), Some(0.8));
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0,1]")]
    fn ema_rejects_bad_alpha() {
        let mut v = QosVector::new();
        v.ema_update(&QosVector::new(), 1.5);
    }

    #[test]
    fn collects_from_iterator() {
        let v: QosVector = [(Metric::Price, 1.0), (Metric::Accuracy, 0.5)]
            .into_iter()
            .collect();
        assert_eq!(v.len(), 2);
    }

    proptest! {
        #[test]
        fn ema_is_bounded_by_endpoints(old in 0.0f64..1000.0, new in 0.0f64..1000.0, alpha in 0.0f64..=1.0) {
            let mut v = QosVector::from_pairs([(Metric::Latency, old)]);
            v.ema_update(&QosVector::from_pairs([(Metric::Latency, new)]), alpha);
            let got = v.get(Metric::Latency).unwrap();
            let (lo, hi) = if old <= new { (old, new) } else { (new, old) };
            prop_assert!(got >= lo - 1e-9 && got <= hi + 1e-9);
        }

        #[test]
        fn merge_is_union_of_metrics(
            xs in proptest::collection::vec(0u8..20, 0..10),
            ys in proptest::collection::vec(0u8..20, 0..10),
        ) {
            let a = QosVector::from_pairs(xs.iter().map(|&k| (Metric::AppSpecific(k), k as f64)));
            let b = QosVector::from_pairs(ys.iter().map(|&k| (Metric::AppSpecific(k), k as f64 + 1.0)));
            let merged = a.merge_with(&b, |x, _| x);
            for &k in xs.iter().chain(ys.iter()) {
                prop_assert!(merged.contains(Metric::AppSpecific(k)));
            }
        }
    }
}
