//! Latent quality profiles: the ground truth a service actually delivers.
//!
//! A provider publishes an *advertised* [`QosVector`], but what consumers
//! experience comes from the service's latent [`QualityProfile`] — per-metric
//! means with jitter, sampled at each invocation. The gap between the two is
//! exactly the vulnerability the paper describes: "a provider may also
//! exaggerate its capability of providing good QoS on purpose to attract
//! consumers".

use crate::metric::{Metric, Monotonicity};
use crate::value::QosVector;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-metric latent quality: mean and jitter of what is really delivered.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricQuality {
    /// Mean delivered raw value.
    pub mean: f64,
    /// Standard deviation of delivered values around the mean.
    pub jitter: f64,
}

/// The true, hidden quality of a service: what invocations actually yield.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct QualityProfile {
    qualities: BTreeMap<Metric, MetricQuality>,
}

impl QualityProfile {
    /// Empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(metric, mean, jitter)` triples.
    pub fn from_triples<I: IntoIterator<Item = (Metric, f64, f64)>>(triples: I) -> Self {
        QualityProfile {
            qualities: triples
                .into_iter()
                .map(|(m, mean, jitter)| (m, MetricQuality { mean, jitter }))
                .collect(),
        }
    }

    /// Set the latent quality of one metric.
    pub fn set(&mut self, metric: Metric, mean: f64, jitter: f64) -> &mut Self {
        self.qualities
            .insert(metric, MetricQuality { mean, jitter });
        self
    }

    /// Latent quality of one metric.
    pub fn get(&self, metric: Metric) -> Option<MetricQuality> {
        self.qualities.get(&metric).copied()
    }

    /// Metrics with a latent quality.
    pub fn metrics(&self) -> impl Iterator<Item = Metric> + '_ {
        self.qualities.keys().copied()
    }

    /// Number of metrics carried.
    pub fn len(&self) -> usize {
        self.qualities.len()
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.qualities.is_empty()
    }

    /// The mean vector: expected observation, without jitter.
    pub fn means(&self) -> QosVector {
        self.qualities.iter().map(|(m, q)| (*m, q.mean)).collect()
    }

    /// Sample one observed invocation: per metric, a Gaussian draw around
    /// the mean (Box–Muller), clamped to the metric's sane range (non
    /// -negative; fraction metrics clamped to `\[0, 1\]`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> QosVector {
        self.qualities
            .iter()
            .map(|(&m, q)| {
                let raw = q.mean + q.jitter * gaussian(rng);
                (m, clamp_to_domain(m, raw))
            })
            .collect()
    }

    /// Shift every metric's mean *toward better quality* by `delta` in
    /// normalized units of the metric's own mean (e.g. `delta = 0.1` makes
    /// response time 10% lower and availability 10% higher, saturating at
    /// domain bounds). Negative `delta` degrades quality. Used by provider
    /// behaviour dynamics (improving/degrading/oscillating).
    pub fn drift(&mut self, delta: f64) {
        for (&m, q) in self.qualities.iter_mut() {
            let factor = match m.monotonicity() {
                Monotonicity::HigherBetter => 1.0 + delta,
                Monotonicity::LowerBetter => 1.0 - delta,
            };
            q.mean = clamp_to_domain(m, q.mean * factor.max(0.0));
        }
    }

    /// Exaggerated advertisement: the mean vector made better by `factor`
    /// (0 = honest, 0.5 = 50% better than truth on every metric).
    pub fn exaggerated(&self, factor: f64) -> QosVector {
        let mut adv = self.clone();
        adv.drift(factor);
        adv.means()
    }
}

impl FromIterator<(Metric, MetricQuality)> for QualityProfile {
    fn from_iter<T: IntoIterator<Item = (Metric, MetricQuality)>>(iter: T) -> Self {
        QualityProfile {
            qualities: iter.into_iter().collect(),
        }
    }
}

/// Clamp a raw value to the metric's meaningful domain: fraction-valued
/// metrics (availability, accuracy, …) stay in `\[0, 1\]`; everything else is
/// non-negative.
pub fn clamp_to_domain(metric: Metric, value: f64) -> f64 {
    if is_fraction_metric(metric) {
        value.clamp(0.0, 1.0)
    } else {
        value.max(0.0)
    }
}

/// Whether a metric's raw values are probabilities/fractions in `\[0, 1\]`.
pub fn is_fraction_metric(metric: Metric) -> bool {
    use Metric::*;
    matches!(
        metric,
        Availability
            | Accessibility
            | Accuracy
            | Reliability
            | Scalability
            | Stability
            | Robustness
            | DataIntegrity
            | TransactionalIntegrity
            | Authentication
            | Authorization
            | Traceability
            | NonRepudiation
            | Confidentiality
            | Encryption
            | Accountability
            | AppSpecific(_)
    )
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn profile() -> QualityProfile {
        QualityProfile::from_triples([
            (Metric::ResponseTime, 100.0, 10.0),
            (Metric::Availability, 0.95, 0.02),
        ])
    }

    #[test]
    fn means_reflect_construction() {
        let p = profile();
        assert_eq!(p.means().get(Metric::ResponseTime), Some(100.0));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn samples_stay_in_domain() {
        let p = profile();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let s = p.sample(&mut rng);
            let avail = s.get(Metric::Availability).unwrap();
            assert!((0.0..=1.0).contains(&avail));
            assert!(s.get(Metric::ResponseTime).unwrap() >= 0.0);
        }
    }

    #[test]
    fn sample_mean_approaches_latent_mean() {
        let p = profile();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 4000;
        let avg: f64 = (0..n)
            .map(|_| p.sample(&mut rng).get(Metric::ResponseTime).unwrap())
            .sum::<f64>()
            / n as f64;
        assert!((avg - 100.0).abs() < 2.0, "avg={avg}");
    }

    #[test]
    fn positive_drift_improves_both_orientations() {
        let mut p = profile();
        p.drift(0.1);
        // response time is lower-better: mean should drop
        assert!((p.get(Metric::ResponseTime).unwrap().mean - 90.0).abs() < 1e-9);
        // availability is higher-better: mean should rise, clamped at 1
        assert!(p.get(Metric::Availability).unwrap().mean > 0.95);
    }

    #[test]
    fn negative_drift_degrades() {
        let mut p = profile();
        p.drift(-0.2);
        assert!(p.get(Metric::ResponseTime).unwrap().mean > 100.0);
        assert!(p.get(Metric::Availability).unwrap().mean < 0.95);
    }

    #[test]
    fn drift_saturates_at_domain_bounds() {
        let mut p = QualityProfile::from_triples([(Metric::Availability, 0.99, 0.0)]);
        p.drift(0.5);
        assert_eq!(p.get(Metric::Availability).unwrap().mean, 1.0);
        let mut q = QualityProfile::from_triples([(Metric::ResponseTime, 10.0, 0.0)]);
        q.drift(2.0); // factor would go negative; clamped to zero
        assert_eq!(q.get(Metric::ResponseTime).unwrap().mean, 0.0);
    }

    #[test]
    fn exaggerated_advertisement_is_better_than_truth() {
        let p = profile();
        let adv = p.exaggerated(0.3);
        assert!(adv.get(Metric::ResponseTime).unwrap() < 100.0);
        assert!(adv.get(Metric::Availability).unwrap() >= 0.95);
        // original untouched
        assert_eq!(p.means().get(Metric::ResponseTime), Some(100.0));
    }

    #[test]
    fn honest_advertisement_equals_means() {
        let p = profile();
        assert_eq!(p.exaggerated(0.0), p.means());
    }
}
