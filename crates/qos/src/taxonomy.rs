//! The Figure 3 taxonomy as a walkable tree.
//!
//! Figure 3 of the paper arranges the W3C QoS metrics in a two-level tree:
//! categories (performance, dependability, …) with metric leaves. The
//! experiment `exp_fig3` re-emits this tree from code, so the taxonomy is a
//! first-class value here rather than documentation.

use crate::metric::{Category, Metric};
use std::collections::BTreeMap;

/// The QoS taxonomy of Figure 3: categories mapped to their metric leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Taxonomy {
    branches: BTreeMap<Category, Vec<Metric>>,
}

impl Taxonomy {
    /// Build the standard W3C taxonomy (all non-application-specific
    /// metrics), grouped by category.
    pub fn standard() -> Self {
        let mut branches: BTreeMap<Category, Vec<Metric>> = BTreeMap::new();
        for m in Metric::ALL_STANDARD {
            branches.entry(m.category()).or_default().push(m);
        }
        Taxonomy { branches }
    }

    /// Build a taxonomy extended with `n` application-specific metrics, as
    /// needed for general services in the mediated scenario.
    pub fn with_app_specific(n: u8) -> Self {
        let mut tax = Self::standard();
        let leaf = tax
            .branches
            .entry(Category::ApplicationSpecific)
            .or_default();
        for k in 0..n {
            leaf.push(Metric::AppSpecific(k));
        }
        tax
    }

    /// Metrics under one category. Empty slice if the category has no leaves.
    pub fn metrics_in(&self, category: Category) -> &[Metric] {
        self.branches
            .get(&category)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterate `(category, metrics)` pairs in stable category order.
    pub fn branches(&self) -> impl Iterator<Item = (Category, &[Metric])> {
        self.branches.iter().map(|(c, ms)| (*c, ms.as_slice()))
    }

    /// Iterate every metric leaf in the taxonomy.
    pub fn metrics(&self) -> impl Iterator<Item = Metric> + '_ {
        self.branches.values().flatten().copied()
    }

    /// Total number of metric leaves.
    pub fn len(&self) -> usize {
        self.branches.values().map(Vec::len).sum()
    }

    /// Whether the taxonomy has no leaves (never true for [`Self::standard`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render the tree as indented text, the form `exp_fig3` prints.
    pub fn render(&self) -> String {
        let mut out = String::from("QoS for web services\n");
        for (cat, metrics) in self.branches() {
            out.push_str(&format!("  {cat}\n"));
            for m in metrics {
                out.push_str(&format!("    {m}\n"));
            }
        }
        out
    }
}

impl Default for Taxonomy {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_taxonomy_covers_all_standard_metrics() {
        let tax = Taxonomy::standard();
        assert_eq!(tax.len(), Metric::ALL_STANDARD.len());
        for m in Metric::ALL_STANDARD {
            assert!(tax.metrics().any(|x| x == m), "{m} missing");
        }
    }

    #[test]
    fn performance_branch_has_four_leaves() {
        // Figure 3 lists processing time, throughput, response time, latency.
        let tax = Taxonomy::standard();
        assert_eq!(tax.metrics_in(Category::Performance).len(), 4);
    }

    #[test]
    fn dependability_branch_has_eight_leaves() {
        let tax = Taxonomy::standard();
        assert_eq!(tax.metrics_in(Category::Dependability).len(), 8);
    }

    #[test]
    fn app_specific_extension_adds_leaves() {
        let tax = Taxonomy::with_app_specific(3);
        assert_eq!(tax.metrics_in(Category::ApplicationSpecific).len(), 3);
        assert_eq!(tax.len(), Metric::ALL_STANDARD.len() + 3);
    }

    #[test]
    fn render_mentions_every_category() {
        let text = Taxonomy::standard().render();
        for cat in ["performance", "dependability", "integrity", "security"] {
            assert!(text.contains(cat), "missing {cat} in rendering");
        }
    }

    #[test]
    fn metrics_in_unknown_category_is_empty() {
        let tax = Taxonomy::standard();
        assert!(tax.metrics_in(Category::ApplicationSpecific).is_empty());
    }
}
