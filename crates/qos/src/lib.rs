//! # wsrep-qos — QoS substrate for web service selection
//!
//! This crate implements the quality-of-service model that the survey
//! *"A Review on Trust and Reputation for Web Service Selection"*
//! (Wang & Vassileva, 2007) builds on:
//!
//! * the **W3C QoS taxonomy** of the paper's Figure 3 ([`metric`], [`taxonomy`]),
//! * **QoS vectors and observations** ([`value`]),
//! * the **Liu–Ngu–Zeng normalization matrix** and weighted overall score
//!   used by centralized QoS registries ([`normalize`]),
//! * **consumer preference profiles** over metrics ([`preference`]),
//! * **service-level agreements** with per-metric obligations and penalties
//!   ([`sla`]), and
//! * latent **quality profiles** from which observed QoS samples are drawn
//!   ([`profile`]).
//!
//! Everything downstream — trust mechanisms, the market simulator, the
//! selection strategies — consumes these types.
//!
//! ## Example
//!
//! ```
//! use wsrep_qos::metric::Metric;
//! use wsrep_qos::value::QosVector;
//! use wsrep_qos::preference::Preferences;
//!
//! let mut observed = QosVector::new();
//! observed.set(Metric::ResponseTime, 120.0); // ms, lower is better
//! observed.set(Metric::Availability, 0.99);  // fraction, higher is better
//!
//! let prefs = Preferences::uniform([Metric::ResponseTime, Metric::Availability]);
//! assert_eq!(prefs.metrics().count(), 2);
//! ```

pub mod metric;
pub mod normalize;
pub mod preference;
pub mod profile;
pub mod sla;
pub mod taxonomy;
pub mod value;

pub use metric::{Metric, Monotonicity};
pub use normalize::{NormalizationMatrix, OverallScore};
pub use preference::Preferences;
pub use profile::QualityProfile;
pub use sla::{Sla, SlaOutcome};
pub use value::QosVector;
