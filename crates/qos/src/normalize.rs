//! The Liu–Ngu–Zeng QoS computation: normalization matrix + weighted score.
//!
//! Liu, Ngu and Zeng ("QoS computation and policing in dynamic web service
//! selection", WWW 2004) — reference \[16\] of the survey — compute a *fair
//! overall rating* for each candidate service by (1) arranging candidates ×
//! metrics into a matrix, (2) min–max normalizing each metric column so
//! every entry lands in `\[0, 1\]` with "higher is better" orientation, and
//! (3) taking a weighted sum with the consumer's preference weights. This is
//! the calculation the central QoS registry of the paper's Figure 2 runs.

use crate::metric::{Metric, Monotonicity};
use crate::preference::Preferences;
use crate::value::QosVector;
use serde::{Deserialize, Serialize};

/// The overall rating of one candidate produced by the normalization
/// pipeline, paired with the candidate's index in the input slice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverallScore {
    /// Index of the candidate in the slice passed to [`NormalizationMatrix::new`].
    pub candidate: usize,
    /// Weighted normalized score in `\[0, 1\]` (higher is better).
    pub score: f64,
}

/// A candidates × metrics matrix with per-column min–max normalization.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizationMatrix {
    metrics: Vec<Metric>,
    /// Row-major normalized entries; `rows[i][j]` is candidate `i` on
    /// metric `metrics[j]`, already oriented so 1.0 is best.
    rows: Vec<Vec<f64>>,
}

impl NormalizationMatrix {
    /// Build the matrix from raw candidate QoS vectors over `metrics`.
    ///
    /// Candidates missing a metric receive the *worst* observed value for
    /// that column (normalized 0) — an unreported quality earns no credit,
    /// which keeps providers from gaming the registry by omission.
    ///
    /// Columns where every candidate has the same raw value normalize to
    /// `1.0` for all candidates (the metric cannot discriminate, so it
    /// should neither reward nor punish anyone) — this mirrors the
    /// `q_max = q_min` special case in the original paper.
    ///
    /// Accepts owned vectors (`&[QosVector]`) or borrowed ones
    /// (`&[&QosVector]`), so callers ranking a listing table can build
    /// the matrix without cloning a single vector.
    pub fn new<V: std::borrow::Borrow<QosVector>>(candidates: &[V], metrics: &[Metric]) -> Self {
        let mut rows = vec![vec![0.0; metrics.len()]; candidates.len()];
        for (j, &metric) in metrics.iter().enumerate() {
            let observed: Vec<f64> = candidates
                .iter()
                .filter_map(|c| c.borrow().get(metric))
                .collect();
            let (min, max) = bounds(&observed);
            for (i, cand) in candidates.iter().enumerate() {
                rows[i][j] = match cand.borrow().get(metric) {
                    Some(v) => normalize_one(v, min, max, metric.monotonicity()),
                    None => 0.0,
                };
            }
        }
        NormalizationMatrix {
            metrics: metrics.to_vec(),
            rows,
        }
    }

    /// The metric columns in order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Number of candidate rows.
    pub fn candidates(&self) -> usize {
        self.rows.len()
    }

    /// Normalized entry for candidate `i`, metric column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn entry(&self, i: usize, j: usize) -> f64 {
        self.rows[i][j]
    }

    /// Normalized row for candidate `i` as `(metric, value)` pairs.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (Metric, f64)> + '_ {
        self.metrics
            .iter()
            .copied()
            .zip(self.rows[i].iter().copied())
    }

    /// Weighted overall scores under `prefs`, sorted best-first.
    ///
    /// Metrics in the matrix that the consumer assigns no weight contribute
    /// nothing; weights over metrics absent from the matrix are ignored
    /// (the preference mass is renormalized over present metrics).
    pub fn scores(&self, prefs: &Preferences) -> Vec<OverallScore> {
        let mut weights = Vec::new();
        let mut out = Vec::new();
        self.scores_unsorted_into(prefs, &mut weights, &mut out);
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        out
    }

    /// Like [`NormalizationMatrix::scores`] but allocation-free and
    /// unsorted: scores land in `out` in candidate order (`out[i]` is
    /// candidate `i`), using `weights` as scratch. Both buffers are
    /// cleared and refilled, so a caller ranking in a loop reuses their
    /// capacity — the served registry's hot path.
    pub fn scores_unsorted_into(
        &self,
        prefs: &Preferences,
        weights: &mut Vec<f64>,
        out: &mut Vec<OverallScore>,
    ) {
        weights.clear();
        weights.extend(self.metrics.iter().map(|&m| prefs.weight(m)));
        let total: f64 = weights.iter().sum();
        out.clear();
        out.extend(self.rows.iter().enumerate().map(|(i, row)| {
            let score = if total > 0.0 {
                row.iter()
                    .zip(weights.iter())
                    .map(|(v, w)| v * w)
                    .sum::<f64>()
                    / total
            } else {
                0.0
            };
            OverallScore {
                candidate: i,
                score,
            }
        }));
    }

    /// Index of the best candidate under `prefs`, or `None` for an empty
    /// matrix.
    pub fn best(&self, prefs: &Preferences) -> Option<usize> {
        self.scores(prefs).first().map(|s| s.candidate)
    }

    /// Candidate indexes ordered best-first under `prefs`.
    ///
    /// The ranking the served registry's `top_k` walks before blending in
    /// reputation; equal scores keep their input order (stable sort).
    pub fn rank(&self, prefs: &Preferences) -> Vec<usize> {
        self.scores(prefs)
            .into_iter()
            .map(|s| s.candidate)
            .collect()
    }
}

fn bounds(values: &[f64]) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        if v < min {
            min = v;
        }
        if v > max {
            max = v;
        }
    }
    (min, max)
}

/// Normalize a single raw value into `\[0, 1\]`, 1.0 best, following the two
/// normalization rows of Liu–Ngu–Zeng (one for "negative" metrics where
/// smaller is better, one for "positive" metrics).
pub fn normalize_one(value: f64, min: f64, max: f64, mono: Monotonicity) -> f64 {
    if !min.is_finite() || !max.is_finite() {
        return 0.0;
    }
    if (max - min).abs() < f64::EPSILON {
        return 1.0;
    }
    let x = match mono {
        Monotonicity::HigherBetter => (value - min) / (max - min),
        Monotonicity::LowerBetter => (max - value) / (max - min),
    };
    x.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn candidates() -> Vec<QosVector> {
        vec![
            // fast but pricey
            QosVector::from_pairs([(Metric::ResponseTime, 50.0), (Metric::Price, 10.0)]),
            // slow but cheap
            QosVector::from_pairs([(Metric::ResponseTime, 200.0), (Metric::Price, 1.0)]),
            // middling
            QosVector::from_pairs([(Metric::ResponseTime, 125.0), (Metric::Price, 5.5)]),
        ]
    }

    #[test]
    fn lower_better_metric_is_flipped() {
        let m = NormalizationMatrix::new(&candidates(), &[Metric::ResponseTime]);
        assert_eq!(m.entry(0, 0), 1.0); // fastest
        assert_eq!(m.entry(1, 0), 0.0); // slowest
        assert!((m.entry(2, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn preferences_pick_the_matching_candidate() {
        let cands = candidates();
        let matrix = NormalizationMatrix::new(&cands, &[Metric::ResponseTime, Metric::Price]);
        let speed_lover =
            Preferences::from_weights([(Metric::ResponseTime, 0.9), (Metric::Price, 0.1)]);
        let bargain_hunter =
            Preferences::from_weights([(Metric::ResponseTime, 0.1), (Metric::Price, 0.9)]);
        assert_eq!(matrix.best(&speed_lover), Some(0));
        assert_eq!(matrix.best(&bargain_hunter), Some(1));
    }

    #[test]
    fn missing_metric_scores_zero() {
        let cands = vec![
            QosVector::from_pairs([(Metric::Accuracy, 0.9)]),
            QosVector::new(), // reports nothing
        ];
        let m = NormalizationMatrix::new(&cands, &[Metric::Accuracy]);
        assert_eq!(m.entry(1, 0), 0.0);
    }

    #[test]
    fn constant_column_normalizes_to_one() {
        let cands = vec![
            QosVector::from_pairs([(Metric::Price, 4.0)]),
            QosVector::from_pairs([(Metric::Price, 4.0)]),
        ];
        let m = NormalizationMatrix::new(&cands, &[Metric::Price]);
        assert_eq!(m.entry(0, 0), 1.0);
        assert_eq!(m.entry(1, 0), 1.0);
    }

    #[test]
    fn scores_are_sorted_best_first() {
        let cands = candidates();
        let m = NormalizationMatrix::new(&cands, &[Metric::ResponseTime, Metric::Price]);
        let prefs = Preferences::uniform([Metric::ResponseTime, Metric::Price]);
        let scores = m.scores(&prefs);
        for pair in scores.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn unsorted_into_matches_scores_and_reuses_buffers() {
        let cands = candidates();
        let m = NormalizationMatrix::new(&cands, &[Metric::ResponseTime, Metric::Price]);
        let prefs = Preferences::from_weights([(Metric::ResponseTime, 0.7), (Metric::Price, 0.3)]);
        let mut weights = Vec::new();
        let mut unsorted = Vec::new();
        for _ in 0..3 {
            m.scores_unsorted_into(&prefs, &mut weights, &mut unsorted);
            assert_eq!(unsorted.len(), cands.len());
            for (i, s) in unsorted.iter().enumerate() {
                assert_eq!(s.candidate, i, "out[i] must be candidate i");
            }
            let mut resorted = unsorted.clone();
            resorted.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
            assert_eq!(resorted, m.scores(&prefs));
        }
    }

    #[test]
    fn empty_matrix_has_no_best() {
        let m = NormalizationMatrix::new::<QosVector>(&[], &[Metric::Price]);
        assert_eq!(m.best(&Preferences::uniform([Metric::Price])), None);
    }

    #[test]
    fn rank_is_a_permutation_led_by_best() {
        let cands = candidates();
        let m = NormalizationMatrix::new(&cands, &[Metric::ResponseTime, Metric::Price]);
        let prefs = Preferences::from_weights([(Metric::ResponseTime, 0.9), (Metric::Price, 0.1)]);
        let ranked = m.rank(&prefs);
        assert_eq!(ranked.len(), cands.len());
        assert_eq!(ranked[0], m.best(&prefs).unwrap());
        let mut sorted = ranked.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn zero_weight_preferences_score_zero() {
        let cands = candidates();
        let m = NormalizationMatrix::new(&cands, &[Metric::ResponseTime]);
        // Preferences over a metric not in the matrix.
        let prefs = Preferences::uniform([Metric::Accuracy]);
        for s in m.scores(&prefs) {
            assert_eq!(s.score, 0.0);
        }
    }

    proptest! {
        /// Scale-invariance: multiplying every raw value of a column by a
        /// positive constant must not change the normalized matrix.
        #[test]
        fn normalization_is_scale_invariant(
            vals in proptest::collection::vec(1.0f64..1000.0, 2..8),
            scale in 0.1f64..100.0,
        ) {
            let raw: Vec<QosVector> = vals.iter()
                .map(|&v| QosVector::from_pairs([(Metric::Throughput, v)]))
                .collect();
            let scaled: Vec<QosVector> = vals.iter()
                .map(|&v| QosVector::from_pairs([(Metric::Throughput, v * scale)]))
                .collect();
            let a = NormalizationMatrix::new(&raw, &[Metric::Throughput]);
            let b = NormalizationMatrix::new(&scaled, &[Metric::Throughput]);
            for i in 0..vals.len() {
                prop_assert!((a.entry(i, 0) - b.entry(i, 0)).abs() < 1e-9);
            }
        }

        /// Every normalized entry lands in \[0, 1\] and every score too.
        #[test]
        fn entries_and_scores_are_bounded(
            vals in proptest::collection::vec(-1000.0f64..1000.0, 1..10),
        ) {
            let raw: Vec<QosVector> = vals.iter()
                .map(|&v| QosVector::from_pairs([(Metric::Latency, v)]))
                .collect();
            let m = NormalizationMatrix::new(&raw, &[Metric::Latency]);
            let prefs = Preferences::uniform([Metric::Latency]);
            for i in 0..vals.len() {
                prop_assert!((0.0..=1.0).contains(&m.entry(i, 0)));
            }
            for s in m.scores(&prefs) {
                prop_assert!((0.0..=1.0).contains(&s.score));
            }
        }
    }
}
