//! Consumer preference profiles over QoS metrics.
//!
//! The paper stresses that a consumer's profile "shows the consumer's
//! preference over different QoS metrics (i.e. how these QoS metrics are
//! important to a consumer)" and that the registry computes overall ratings
//! *per consumer* from it. Preference heterogeneity is also the knob behind
//! the global-vs-personalized axis of Figure 4: when all consumers weight
//! metrics identically, a global reputation suffices; when they diverge,
//! personalized mechanisms win (experiment `exp_fig4_pers`).

use crate::metric::Metric;
use crate::value::QosVector;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A normalized weighting over QoS metrics; weights sum to 1.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Preferences {
    weights: BTreeMap<Metric, f64>,
}

impl Preferences {
    /// Equal weight over the given metrics.
    ///
    /// ```
    /// use wsrep_qos::{preference::Preferences, metric::Metric};
    /// let p = Preferences::uniform([Metric::Price, Metric::Accuracy]);
    /// assert!((p.weight(Metric::Price) - 0.5).abs() < 1e-12);
    /// ```
    pub fn uniform<I: IntoIterator<Item = Metric>>(metrics: I) -> Self {
        let ms: Vec<Metric> = metrics.into_iter().collect();
        if ms.is_empty() {
            return Self::default();
        }
        let w = 1.0 / ms.len() as f64;
        Preferences {
            weights: ms.into_iter().map(|m| (m, w)).collect(),
        }
    }

    /// Build from explicit non-negative weights; they are renormalized to
    /// sum to 1. Entries with zero or negative weight are dropped.
    pub fn from_weights<I: IntoIterator<Item = (Metric, f64)>>(weights: I) -> Self {
        let filtered: Vec<(Metric, f64)> = weights.into_iter().filter(|&(_, w)| w > 0.0).collect();
        let total: f64 = filtered.iter().map(|&(_, w)| w).sum();
        if total <= 0.0 {
            return Self::default();
        }
        Preferences {
            weights: filtered.into_iter().map(|(m, w)| (m, w / total)).collect(),
        }
    }

    /// The weight for one metric (0 if unweighted).
    pub fn weight(&self, metric: Metric) -> f64 {
        self.weights.get(&metric).copied().unwrap_or(0.0)
    }

    /// Metrics with non-zero weight.
    pub fn metrics(&self) -> impl Iterator<Item = Metric> + '_ {
        self.weights.keys().copied()
    }

    /// Iterate `(metric, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Metric, f64)> + '_ {
        self.weights.iter().map(|(m, w)| (*m, *w))
    }

    /// Number of weighted metrics.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether no metric carries weight.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Utility of an *already normalized* QoS vector (entries in `\[0, 1\]`,
    /// higher better): the weighted sum over this profile's metrics.
    /// Missing metrics contribute 0.
    pub fn utility(&self, normalized: &QosVector) -> f64 {
        self.iter()
            .map(|(m, w)| w * normalized.get(m).unwrap_or(0.0))
            .sum()
    }

    /// Utility of a *raw* QoS vector, normalizing each metric against fixed
    /// reference bounds `(min, max)` supplied per metric. Useful for ground
    /// -truth utility where the simulator knows global bounds.
    pub fn utility_raw<F>(&self, raw: &QosVector, bounds: F) -> f64
    where
        F: Fn(Metric) -> (f64, f64),
    {
        self.iter()
            .map(|(m, w)| {
                let v = match raw.get(m) {
                    Some(v) => v,
                    None => return 0.0,
                };
                let (min, max) = bounds(m);
                w * crate::normalize::normalize_one(v, min, max, m.monotonicity())
            })
            .sum()
    }

    /// Cosine similarity between two preference profiles in `\[0, 1\]`.
    ///
    /// Used by personalized mechanisms (Histos, collaborative filtering)
    /// to find like-minded consumers.
    pub fn similarity(&self, other: &Preferences) -> f64 {
        let dot: f64 = self.iter().map(|(m, w)| w * other.weight(m)).sum();
        let na: f64 = self.iter().map(|(_, w)| w * w).sum::<f64>().sqrt();
        let nb: f64 = other.iter().map(|(_, w)| w * w).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            (dot / (na * nb)).clamp(0.0, 1.0)
        }
    }

    /// Sample a random profile over `metrics` with controllable
    /// heterogeneity.
    ///
    /// `heterogeneity = 0` yields the uniform profile for every consumer;
    /// `heterogeneity = 1` yields sharply-peaked, near-single-metric
    /// profiles. Implemented as a symmetric Dirichlet draw via Gamma(α)
    /// sampling with `α = (1 - h) / h` (clamped), using the
    /// Marsaglia–Tsang method so we need only `rand`.
    pub fn sample<R: Rng + ?Sized, I: IntoIterator<Item = Metric>>(
        rng: &mut R,
        metrics: I,
        heterogeneity: f64,
    ) -> Self {
        let ms: Vec<Metric> = metrics.into_iter().collect();
        if ms.is_empty() {
            return Self::default();
        }
        let h = heterogeneity.clamp(0.0, 1.0);
        if h == 0.0 {
            return Self::uniform(ms);
        }
        let alpha = ((1.0 - h) / h).max(0.02);
        let draws: Vec<f64> = ms.iter().map(|_| sample_gamma(rng, alpha)).collect();
        Self::from_weights(ms.into_iter().zip(draws))
    }
}

/// Marsaglia–Tsang Gamma(alpha, 1) sampler; for `alpha < 1` uses the
/// boosting trick `Gamma(a) = Gamma(a + 1) * U^{1/a}`.
fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, alpha: f64) -> f64 {
    debug_assert!(alpha > 0.0);
    if alpha < 1.0 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return sample_gamma(rng, alpha + 1.0) * u.powf(1.0 / alpha);
    }
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_weights_sum_to_one() {
        let p = Preferences::uniform([Metric::Price, Metric::Accuracy, Metric::Latency]);
        let total: f64 = p.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((p.weight(Metric::Price) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn from_weights_renormalizes_and_drops_nonpositive() {
        let p = Preferences::from_weights([
            (Metric::Price, 2.0),
            (Metric::Accuracy, 2.0),
            (Metric::Latency, 0.0),
            (Metric::Throughput, -3.0),
        ]);
        assert_eq!(p.len(), 2);
        assert!((p.weight(Metric::Price) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_utility_is_zero() {
        let p = Preferences::default();
        let v = QosVector::from_pairs([(Metric::Price, 1.0)]);
        assert_eq!(p.utility(&v), 0.0);
        assert!(p.is_empty());
    }

    #[test]
    fn utility_weights_normalized_values() {
        let p = Preferences::from_weights([(Metric::Accuracy, 0.75), (Metric::Price, 0.25)]);
        let v = QosVector::from_pairs([(Metric::Accuracy, 1.0), (Metric::Price, 0.0)]);
        assert!((p.utility(&v) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn utility_raw_respects_monotonicity() {
        let p = Preferences::uniform([Metric::ResponseTime]);
        let fast = QosVector::from_pairs([(Metric::ResponseTime, 0.0)]);
        let slow = QosVector::from_pairs([(Metric::ResponseTime, 100.0)]);
        let bounds = |_| (0.0, 100.0);
        assert!(p.utility_raw(&fast, bounds) > p.utility_raw(&slow, bounds));
    }

    #[test]
    fn similarity_of_identical_profiles_is_one() {
        let p = Preferences::from_weights([(Metric::Price, 0.3), (Metric::Accuracy, 0.7)]);
        assert!((p.similarity(&p) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn similarity_of_disjoint_profiles_is_zero() {
        let a = Preferences::uniform([Metric::Price]);
        let b = Preferences::uniform([Metric::Accuracy]);
        assert_eq!(a.similarity(&b), 0.0);
    }

    #[test]
    fn zero_heterogeneity_sampling_is_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = Preferences::sample(&mut rng, [Metric::Price, Metric::Accuracy], 0.0);
        assert!((p.weight(Metric::Price) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn high_heterogeneity_sampling_is_peaked() {
        let mut rng = StdRng::seed_from_u64(42);
        let metrics = [
            Metric::Price,
            Metric::Accuracy,
            Metric::Latency,
            Metric::Throughput,
        ];
        // Average max-weight over many draws should approach 1 at h≈1 and
        // 1/4 at h=0.
        let mut acc_peaked = 0.0;
        let mut acc_flat = 0.0;
        for _ in 0..200 {
            let peaked = Preferences::sample(&mut rng, metrics, 0.95);
            let flat = Preferences::sample(&mut rng, metrics, 0.05);
            acc_peaked += peaked.iter().map(|(_, w)| w).fold(0.0, f64::max);
            acc_flat += flat.iter().map(|(_, w)| w).fold(0.0, f64::max);
        }
        assert!(acc_peaked / 200.0 > acc_flat / 200.0 + 0.2);
    }

    #[test]
    fn sampled_weights_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(3);
        for h in [0.1, 0.5, 0.9] {
            let p = Preferences::sample(&mut rng, Metric::ALL_STANDARD, h);
            let total: f64 = p.iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9, "h={h} total={total}");
        }
    }
}
