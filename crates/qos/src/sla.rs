//! Service-level agreements.
//!
//! Section 2 of the paper: to get guaranteed quality "a consumer can
//! negotiate with a provider to make an agreement, called a Service Level
//! Agreement (SLA) which specifies the quality that a service should meet
//! … A provider may have to pay a penalty when the service is not
//! delivered according to SLA. However, making a SLA comes with a cost."
//! This module models exactly those three pieces: per-metric obligations,
//! violation detection against observed QoS, and the penalty/negotiation
//! cost accounting used by the `exp_fig2` information-source experiment.

use crate::metric::{Metric, Monotonicity};
use crate::value::QosVector;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One obligation: the delivered value must be at least as good as `bound`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Obligation {
    /// The guaranteed bound in the metric's raw unit.
    pub bound: f64,
    /// Penalty the provider pays per violation of this obligation.
    pub penalty: f64,
}

/// A negotiated service-level agreement.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Sla {
    obligations: BTreeMap<Metric, Obligation>,
    /// One-off cost of negotiating this agreement (time, legal expenses),
    /// charged to the consumer side in experiments.
    negotiation_cost: f64,
}

/// The outcome of checking one invocation against an SLA.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SlaOutcome {
    /// Metrics whose obligation was violated by the observation.
    pub violations: Vec<Metric>,
    /// Total penalty owed by the provider for this invocation.
    pub penalty: f64,
}

impl SlaOutcome {
    /// Whether the invocation met every obligation.
    pub fn compliant(&self) -> bool {
        self.violations.is_empty()
    }
}

impl Sla {
    /// Empty SLA with the given negotiation cost.
    pub fn new(negotiation_cost: f64) -> Self {
        Sla {
            obligations: BTreeMap::new(),
            negotiation_cost,
        }
    }

    /// Add an obligation; later calls replace earlier ones for the metric.
    pub fn require(&mut self, metric: Metric, bound: f64, penalty: f64) -> &mut Self {
        self.obligations
            .insert(metric, Obligation { bound, penalty });
        self
    }

    /// Derive an SLA from an advertised QoS vector with a tolerance slack:
    /// each advertised value becomes an obligation loosened by
    /// `slack` (e.g. `slack = 0.1` allows delivered response time 10% above
    /// the advertised one before a violation fires).
    pub fn from_advertised(
        advertised: &QosVector,
        slack: f64,
        penalty_per_metric: f64,
        negotiation_cost: f64,
    ) -> Self {
        let mut sla = Sla::new(negotiation_cost);
        for (m, v) in advertised.iter() {
            let bound = match m.monotonicity() {
                Monotonicity::HigherBetter => v * (1.0 - slack),
                Monotonicity::LowerBetter => v * (1.0 + slack),
            };
            sla.require(m, bound, penalty_per_metric);
        }
        sla
    }

    /// The negotiation cost of this agreement.
    pub fn negotiation_cost(&self) -> f64 {
        self.negotiation_cost
    }

    /// The obligation on one metric, if any.
    pub fn obligation(&self, metric: Metric) -> Option<Obligation> {
        self.obligations.get(&metric).copied()
    }

    /// Metrics under obligation.
    pub fn metrics(&self) -> impl Iterator<Item = Metric> + '_ {
        self.obligations.keys().copied()
    }

    /// Number of obligations.
    pub fn len(&self) -> usize {
        self.obligations.len()
    }

    /// Whether the SLA carries no obligations.
    pub fn is_empty(&self) -> bool {
        self.obligations.is_empty()
    }

    /// Check one observed invocation. A metric missing from the observation
    /// counts as a violation (the obligation could not be demonstrated) —
    /// the third-party supervisor of Figure 2 treats silence as breach.
    pub fn check(&self, observed: &QosVector) -> SlaOutcome {
        let mut outcome = SlaOutcome::default();
        for (&m, ob) in &self.obligations {
            let violated = match observed.get(m) {
                None => true,
                Some(v) => match m.monotonicity() {
                    Monotonicity::HigherBetter => v < ob.bound,
                    Monotonicity::LowerBetter => v > ob.bound,
                },
            };
            if violated {
                outcome.violations.push(m);
                outcome.penalty += ob.penalty;
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sla() -> Sla {
        let mut s = Sla::new(5.0);
        s.require(Metric::ResponseTime, 150.0, 2.0)
            .require(Metric::Availability, 0.9, 3.0);
        s
    }

    #[test]
    fn compliant_invocation_pays_nothing() {
        let obs =
            QosVector::from_pairs([(Metric::ResponseTime, 120.0), (Metric::Availability, 0.95)]);
        let out = sla().check(&obs);
        assert!(out.compliant());
        assert_eq!(out.penalty, 0.0);
    }

    #[test]
    fn violations_accumulate_penalties() {
        let obs = QosVector::from_pairs([
            (Metric::ResponseTime, 400.0), // too slow
            (Metric::Availability, 0.5),   // too flaky
        ]);
        let out = sla().check(&obs);
        assert_eq!(out.violations.len(), 2);
        assert_eq!(out.penalty, 5.0);
    }

    #[test]
    fn boundary_values_are_compliant() {
        let obs =
            QosVector::from_pairs([(Metric::ResponseTime, 150.0), (Metric::Availability, 0.9)]);
        assert!(sla().check(&obs).compliant());
    }

    #[test]
    fn missing_metric_is_a_violation() {
        let obs = QosVector::from_pairs([(Metric::ResponseTime, 100.0)]);
        let out = sla().check(&obs);
        assert_eq!(out.violations, vec![Metric::Availability]);
    }

    #[test]
    fn from_advertised_applies_slack_by_orientation() {
        let adv =
            QosVector::from_pairs([(Metric::ResponseTime, 100.0), (Metric::Availability, 0.9)]);
        let sla = Sla::from_advertised(&adv, 0.1, 1.0, 2.0);
        let rt = sla.obligation(Metric::ResponseTime).unwrap();
        assert!((rt.bound - 110.0).abs() < 1e-9); // 10% slower allowed
        let av = sla.obligation(Metric::Availability).unwrap();
        assert!((av.bound - 0.81).abs() < 1e-9); // 10% lower allowed
        assert_eq!(sla.negotiation_cost(), 2.0);
    }

    #[test]
    fn empty_sla_is_always_compliant() {
        let sla = Sla::new(0.0);
        assert!(sla.is_empty());
        assert!(sla.check(&QosVector::new()).compliant());
    }

    proptest! {
        /// Penalty is exactly the sum of per-violation penalties, never
        /// negative, and bounded by the total penalty mass of the SLA.
        #[test]
        fn penalty_is_conserved(
            rt in 0.0f64..400.0,
            av in 0.0f64..=1.0,
        ) {
            let s = sla();
            let obs = QosVector::from_pairs([
                (Metric::ResponseTime, rt),
                (Metric::Availability, av),
            ]);
            let out = s.check(&obs);
            prop_assert!(out.penalty >= 0.0);
            prop_assert!(out.penalty <= 5.0 + 1e-9);
            let expected: f64 = out.violations.iter()
                .map(|&m| s.obligation(m).unwrap().penalty)
                .sum();
            prop_assert!((out.penalty - expected).abs() < 1e-9);
        }
    }
}
