//! QoS metrics from the W3C taxonomy reproduced in Figure 3 of the paper.
//!
//! The paper follows the W3C working-group note *"QoS for Web Services:
//! Requirements and Possible Approaches"* (Lee et al., 2003), which groups
//! web-service quality aspects into performance, dependability, integrity,
//! security and application-specific metrics. Each metric here carries its
//! [`Monotonicity`] (is a larger raw value better or worse?) and its
//! [`Category`] in the taxonomy.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Direction in which a raw metric value improves.
///
/// Response time improves as it *decreases*; availability improves as it
/// *increases*. Normalization (see [`crate::normalize`]) uses this to map
/// every metric onto a common "higher is better" `\[0, 1\]` scale, exactly as
/// the Liu–Ngu–Zeng QoS computation does with its two normalization rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Monotonicity {
    /// Larger raw values are better (e.g. throughput, availability).
    HigherBetter,
    /// Smaller raw values are better (e.g. latency, price).
    LowerBetter,
}

/// Top-level category of the Figure 3 taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// Speed-of-service metrics: processing time, throughput, latency, …
    Performance,
    /// Can the service be relied on: availability, accuracy, stability, …
    Dependability,
    /// Data and transactional integrity.
    Integrity,
    /// Security and accountability aspects.
    Security,
    /// Economic aspects (the paper lists cost alongside QoS as selection input).
    Economic,
    /// Domain-specific metrics of a *general service* in the mediated
    /// scenario (Figure 1 B) — e.g. seat comfort for a flight service.
    ApplicationSpecific,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Category::Performance => "performance",
            Category::Dependability => "dependability",
            Category::Integrity => "integrity",
            Category::Security => "security",
            Category::Economic => "economic",
            Category::ApplicationSpecific => "application-specific",
        };
        f.write_str(name)
    }
}

/// A quality-of-service metric for a web service (or a general service).
///
/// The variants reproduce the leaves of Figure 3. `AppSpecific(k)` models
/// the "application-specific metrics" branch: the mediated-selection
/// scenario needs per-domain qualities that cannot be enumerated in advance,
/// which is exactly the point the paper makes about general services.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Metric {
    // -- performance -------------------------------------------------------
    /// Time the service spends processing a request (excludes queueing).
    ProcessingTime,
    /// Requests served per unit time.
    Throughput,
    /// Time between sending a request and receiving the complete response.
    ResponseTime,
    /// Network delay contribution to response time.
    Latency,
    // -- dependability ------------------------------------------------------
    /// Probability the service is up when invoked.
    Availability,
    /// Probability the service can accept a request while up.
    Accessibility,
    /// Correctness of results (error rate complement).
    Accuracy,
    /// Ability to keep working correctly over a time interval.
    Reliability,
    /// Maximum concurrent requests sustained.
    Capacity,
    /// Quality retention as load grows.
    Scalability,
    /// Graceful handling of exceptions / interface change rate.
    Stability,
    /// Tolerance of malformed or unexpected input.
    Robustness,
    // -- integrity -----------------------------------------------------------
    /// Data is not corrupted in transit or storage.
    DataIntegrity,
    /// Transactions complete atomically or roll back.
    TransactionalIntegrity,
    // -- security -------------------------------------------------------------
    /// Strength of identity verification.
    Authentication,
    /// Correctness of access-control decisions.
    Authorization,
    /// Auditability of actions.
    Traceability,
    /// Actions cannot be denied after the fact.
    NonRepudiation,
    /// Confidentiality of exchanged data.
    Confidentiality,
    /// Strength of encryption applied.
    Encryption,
    /// Accountability of the provider for its actions.
    Accountability,
    // -- economic -------------------------------------------------------------
    /// Price charged per invocation; the paper lists cost as an extra
    /// selection input beside QoS.
    Price,
    // -- application-specific --------------------------------------------------
    /// The k-th domain-specific quality of a general service.
    AppSpecific(u8),
}

impl Metric {
    /// All non-application-specific metrics of the Figure 3 taxonomy.
    pub const ALL_STANDARD: [Metric; 22] = [
        Metric::ProcessingTime,
        Metric::Throughput,
        Metric::ResponseTime,
        Metric::Latency,
        Metric::Availability,
        Metric::Accessibility,
        Metric::Accuracy,
        Metric::Reliability,
        Metric::Capacity,
        Metric::Scalability,
        Metric::Stability,
        Metric::Robustness,
        Metric::DataIntegrity,
        Metric::TransactionalIntegrity,
        Metric::Authentication,
        Metric::Authorization,
        Metric::Traceability,
        Metric::NonRepudiation,
        Metric::Confidentiality,
        Metric::Encryption,
        Metric::Accountability,
        Metric::Price,
    ];

    /// The taxonomy category this metric belongs to.
    pub fn category(self) -> Category {
        use Metric::*;
        match self {
            ProcessingTime | Throughput | ResponseTime | Latency => Category::Performance,
            Availability | Accessibility | Accuracy | Reliability | Capacity | Scalability
            | Stability | Robustness => Category::Dependability,
            DataIntegrity | TransactionalIntegrity => Category::Integrity,
            Authentication | Authorization | Traceability | NonRepudiation | Confidentiality
            | Encryption | Accountability => Category::Security,
            Price => Category::Economic,
            AppSpecific(_) => Category::ApplicationSpecific,
        }
    }

    /// Whether larger raw values of this metric are better.
    pub fn monotonicity(self) -> Monotonicity {
        use Metric::*;
        match self {
            ProcessingTime | ResponseTime | Latency | Price => Monotonicity::LowerBetter,
            _ => Monotonicity::HigherBetter,
        }
    }

    /// Whether the metric can be measured automatically by execution
    /// monitoring (response time, availability, …) or needs a human/agent
    /// *rating* (accuracy as perceived, security assurances).
    ///
    /// The paper distinguishes exactly these two kinds of consumer feedback
    /// in Section 2: "quality information collected from actual execution
    /// monitoring" versus "ratings about the quality of the service,
    /// especially the QoS aspects like accuracy that can not be acquired
    /// through execution monitoring".
    pub fn observable_by_monitoring(self) -> bool {
        use Metric::*;
        matches!(
            self,
            ProcessingTime
                | Throughput
                | ResponseTime
                | Latency
                | Availability
                | Accessibility
                | Capacity
                | Price
        )
    }

    /// Short stable name used in reports and tables.
    pub fn name(self) -> String {
        use Metric::*;
        match self {
            ProcessingTime => "processing_time".into(),
            Throughput => "throughput".into(),
            ResponseTime => "response_time".into(),
            Latency => "latency".into(),
            Availability => "availability".into(),
            Accessibility => "accessibility".into(),
            Accuracy => "accuracy".into(),
            Reliability => "reliability".into(),
            Capacity => "capacity".into(),
            Scalability => "scalability".into(),
            Stability => "stability".into(),
            Robustness => "robustness".into(),
            DataIntegrity => "data_integrity".into(),
            TransactionalIntegrity => "transactional_integrity".into(),
            Authentication => "authentication".into(),
            Authorization => "authorization".into(),
            Traceability => "traceability".into(),
            NonRepudiation => "non_repudiation".into(),
            Confidentiality => "confidentiality".into(),
            Encryption => "encryption".into(),
            Accountability => "accountability".into(),
            Price => "price".into(),
            AppSpecific(k) => format!("app_specific_{k}"),
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_standard_metric_has_a_category() {
        for m in Metric::ALL_STANDARD {
            // Just exercising the exhaustive match; no panic means pass.
            let _ = m.category();
        }
    }

    #[test]
    fn latency_like_metrics_are_lower_better() {
        for m in [
            Metric::ProcessingTime,
            Metric::ResponseTime,
            Metric::Latency,
            Metric::Price,
        ] {
            assert_eq!(m.monotonicity(), Monotonicity::LowerBetter, "{m}");
        }
    }

    #[test]
    fn dependability_metrics_are_higher_better() {
        for m in [
            Metric::Availability,
            Metric::Accuracy,
            Metric::Reliability,
            Metric::Throughput,
        ] {
            assert_eq!(m.monotonicity(), Monotonicity::HigherBetter, "{m}");
        }
    }

    #[test]
    fn accuracy_needs_a_rating_not_a_probe() {
        assert!(!Metric::Accuracy.observable_by_monitoring());
        assert!(Metric::ResponseTime.observable_by_monitoring());
    }

    #[test]
    fn app_specific_metrics_are_distinct() {
        assert_ne!(Metric::AppSpecific(0), Metric::AppSpecific(1));
        assert_eq!(
            Metric::AppSpecific(3).category(),
            Category::ApplicationSpecific
        );
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = Metric::ALL_STANDARD.iter().map(|m| m.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Metric::ALL_STANDARD.len());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Metric::ResponseTime.to_string(), "response_time");
        assert_eq!(Category::Performance.to_string(), "performance");
    }
}
