//! # wsrep — trust and reputation for web service selection
//!
//! Umbrella crate re-exporting the whole workspace. See the README for an
//! architecture overview and DESIGN.md for the paper-to-module map.
//!
//! ```
//! use wsrep::qos::metric::Metric;
//! let m = Metric::ResponseTime;
//! assert_eq!(m.to_string(), "response_time");
//! ```

pub use wsrep_core as core;
pub use wsrep_journal as journal;
pub use wsrep_net as net;
pub use wsrep_qos as qos;
pub use wsrep_robust as robust;
pub use wsrep_select as select;
pub use wsrep_serve as serve;
pub use wsrep_sim as sim;
