//! Integration: attacker populations from the simulator against the
//! defenses, end to end.

use wsrep::core::id::{AgentId, ServiceId};
use wsrep::core::store::FeedbackStore;
use wsrep::robust::cluster::ClusterFiltering;
use wsrep::robust::defense::{NoDefense, UnfairRatingDefense};
use wsrep::robust::majority::witnesses_needed;
use wsrep::robust::zhang_cohen::ZhangCohen;
use wsrep::sim::world::{DishonestKind, World, WorldConfig};

/// Generate a world with attackers and collect `rounds` of random-pick
/// feedback into a store; returns (world, store, an honest observer).
fn attacked_market(
    kind: DishonestKind,
    fraction: f64,
    seed: u64,
) -> (World, FeedbackStore, AgentId) {
    let mut cfg = WorldConfig::small(seed);
    cfg.preference_heterogeneity = 0.0;
    cfg.dishonest_fraction = fraction;
    cfg.dishonest_behavior = kind;
    let mut world = World::generate(cfg);
    let mut store = FeedbackStore::new();
    let services: Vec<ServiceId> = world.services().map(|s| s.id).collect();
    for _ in 0..15 {
        for idx in 0..world.consumers.len() {
            let pick = services[rand::Rng::gen_range(world.rng(), 0..services.len())];
            if let Some((_, fb)) = world.invoke_and_report(idx, pick) {
                store.push(fb);
            }
        }
        world.step();
    }
    let observer = world
        .consumers
        .iter()
        .find(|c| c.is_honest())
        .map(|c| c.id)
        .expect("honest consumer exists");
    (world, store, observer)
}

/// True utility rank position (0 = best) of the service a defense would
/// pick, judging all services by the defended estimates.
fn rank_of_pick(
    world: &World,
    store: &FeedbackStore,
    observer: AgentId,
    defense: &dyn UnfairRatingDefense,
) -> usize {
    let prefs = wsrep::qos::preference::Preferences::uniform(world.metrics().to_vec());
    let mut by_truth: Vec<ServiceId> = world.services().map(|s| s.id).collect();
    by_truth.sort_by(|&x, &y| {
        let ux = prefs.utility_raw(&world.service(x).unwrap().quality.means(), world.bounds());
        let uy = prefs.utility_raw(&world.service(y).unwrap().quality.means(), world.bounds());
        uy.partial_cmp(&ux).unwrap()
    });
    let pick = by_truth
        .iter()
        .copied()
        .max_by(|&x, &y| {
            let ex = defense
                .estimate(store, observer, x.into())
                .map(|e| e.value.get())
                .unwrap_or(0.0);
            let ey = defense
                .estimate(store, observer, y.into())
                .map(|e| e.value.get())
                .unwrap_or(0.0);
            ex.partial_cmp(&ey).unwrap()
        })
        .expect("services exist");
    by_truth.iter().position(|&s| s == pick).unwrap()
}

#[test]
fn collusion_fools_the_mean_but_not_the_defenses() {
    let mut undefended_bad = 0usize;
    let mut defended_bad = 0usize;
    for seed in [5u64, 23, 47] {
        let (world, store, observer) = attacked_market(DishonestKind::ColludeWorst, 0.45, seed);
        let n = world.services().count();
        if rank_of_pick(&world, &store, observer, &NoDefense) > n / 2 {
            undefended_bad += 1;
        }
        if rank_of_pick(&world, &store, observer, &ZhangCohen::default()) > n / 2 {
            defended_bad += 1;
        }
    }
    assert!(
        defended_bad <= undefended_bad,
        "Zhang-Cohen must not pick bottom-half services more often than the mean"
    );
}

#[test]
fn cluster_filtering_handles_ballot_stuffing_end_to_end() {
    let (world, store, observer) = attacked_market(DishonestKind::BallotStuffWorst, 0.35, 11);
    let n = world.services().count();
    let rank = rank_of_pick(&world, &store, observer, &ClusterFiltering::default());
    assert!(rank < n / 2, "cluster filtering picked rank {rank} of {n}");
}

#[test]
fn no_attack_means_all_defenses_pick_well() {
    let (world, store, observer) = attacked_market(DishonestKind::Random, 0.0, 31);
    let n = world.services().count();
    for defense in wsrep::robust::defense::all_defenses() {
        let rank = rank_of_pick(&world, &store, observer, defense.as_ref());
        // The majority opinion is boolean by construction: it separates
        // good from bad but cannot rank within the good class, so it only
        // guarantees a top-half pick.
        let bound = if defense.name() == "majority" {
            n / 2
        } else {
            n / 3
        };
        assert!(
            rank < bound,
            "{} picked rank {rank} of {n} in a clean market",
            defense.name()
        );
    }
}

#[test]
fn sen_sajja_witness_bound_matches_simulation() {
    // The analytic bound says: with 30% liars, n witnesses give ≥95%
    // correct majority. Simulate and check the empirical rate clears 90%.
    let liar_fraction = 0.3;
    let n = witnesses_needed(liar_fraction, 0.95, 1001).expect("feasible");
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(77);
    let trials = 2000;
    let mut correct = 0;
    for _ in 0..trials {
        let honest_votes = (0..n)
            .filter(|_| rand::Rng::gen::<f64>(&mut rng) >= liar_fraction)
            .count();
        if honest_votes * 2 > n {
            correct += 1;
        }
    }
    let rate = correct as f64 / trials as f64;
    assert!(rate > 0.9, "empirical {rate} with n={n}");
}
