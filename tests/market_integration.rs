//! Integration: world generation → feedback → mechanisms → selection.
//!
//! Exercises the full pipeline across `wsrep-sim`, `wsrep-core` and
//! `wsrep-select`, including a sweep that runs *every* Figure 4 mechanism
//! as the selection backend.

use wsrep::core::mechanisms::all_figure4_mechanisms;
use wsrep::core::mechanisms::beta::BetaMechanism;
use wsrep::select::eval::{Market, MarketConfig};
use wsrep::select::strategy::{RandomSelect, ReputationSelect, SelectionStrategy};
use wsrep::sim::world::{World, WorldConfig};

fn run(
    strategy: &mut dyn SelectionStrategy,
    seed: u64,
    rounds: u64,
) -> wsrep::select::MarketReport {
    let mut cfg = WorldConfig::small(seed);
    cfg.preference_heterogeneity = 0.0;
    let world = World::generate(cfg);
    Market::new(world, MarketConfig::new(rounds, seed)).run(strategy)
}

#[test]
fn every_figure4_mechanism_drives_a_market_without_panicking() {
    for mechanism in all_figure4_mechanisms() {
        let key = mechanism.info().key;
        let mut strat = ReputationSelect::new(mechanism);
        let report = run(&mut strat, 3, 12);
        assert!(report.selections > 0, "{key} made no selections");
        assert!(
            (0.0..=1.0).contains(&report.mean_utility),
            "{key} produced out-of-range utility"
        );
    }
}

#[test]
fn most_mechanisms_beat_blind_choice() {
    let mut random = RandomSelect;
    let baseline = run(&mut random, 7, 40).settled_utility;
    let mut better = 0usize;
    let mut total = 0usize;
    for mechanism in all_figure4_mechanisms() {
        let key = mechanism.info().key;
        // PageRank/social build endorsement topology, not quality signals;
        // they are person-level systems racing in a resource market here.
        let mut strat = ReputationSelect::new(mechanism);
        let settled = run(&mut strat, 7, 40).settled_utility;
        total += 1;
        if settled > baseline {
            better += 1;
        } else {
            eprintln!("note: {key} settled {settled:.3} <= random {baseline:.3}");
        }
    }
    assert!(
        better * 3 >= total * 2,
        "at least two thirds of mechanisms should beat random: {better}/{total}"
    );
}

#[test]
fn learning_improves_over_the_run() {
    let mut strat = ReputationSelect::new(Box::new(BetaMechanism::new()));
    let report = run(&mut strat, 11, 60);
    assert!(
        report.settled_utility > report.mean_utility,
        "the settled tail ({:.3}) should beat the lifetime mean ({:.3})",
        report.settled_utility,
        report.mean_utility
    );
}

#[test]
fn dynamic_worlds_are_harder_than_stable_ones() {
    let stable = {
        let mut strat = ReputationSelect::new(Box::new(BetaMechanism::with_forgetting(1.0)));
        run(&mut strat, 13, 60)
    };
    let dynamic = {
        let mut cfg = WorldConfig::small(13);
        cfg.preference_heterogeneity = 0.0;
        cfg.dynamic_fraction = 1.0;
        let world = World::generate(cfg);
        let mut strat = ReputationSelect::new(Box::new(BetaMechanism::with_forgetting(1.0)));
        Market::new(world, MarketConfig::new(60, 13)).run(&mut strat)
    };
    assert!(stable.mean_regret <= dynamic.mean_regret + 0.05);
}

#[test]
fn provider_bootstrap_needs_real_provider_correlation() {
    // EXPERIMENTS.md claims the E6 advantage disappears when provider
    // quality carries no signal about a new service. Verify: at
    // correlation 0 the bootstrap pick among held-out services is no
    // better than random (within noise), at 0.9 it is clearly better.
    use wsrep::qos::preference::Preferences;
    use wsrep::select::bootstrap::ProviderBootstrap;

    let pick_quality = |correlation: f64, seed: u64| -> f64 {
        let mut cfg = WorldConfig::small(seed);
        cfg.preference_heterogeneity = 0.0;
        cfg.provider_quality_correlation = correlation;
        let mut world = World::generate(cfg);
        let mut mech =
            ProviderBootstrap::new(Box::new(wsrep::core::mechanisms::beta::BetaMechanism::new()));
        let mut established = Vec::new();
        let mut held_out = Vec::new();
        for p in world.providers.values() {
            established.push(p.services[0]);
            held_out.push(p.services[1]);
            for &s in &p.services {
                mech.register(s, p.id);
            }
        }
        use wsrep::core::ReputationMechanism;
        for _ in 0..25 {
            for idx in 0..world.consumers.len() {
                let pick = established[rand::Rng::gen_range(world.rng(), 0..established.len())];
                if let Some((_, fb)) = world.invoke_and_report(idx, pick) {
                    mech.submit(&fb);
                }
            }
            world.step();
        }
        let chosen = held_out
            .iter()
            .copied()
            .max_by(|&a, &b| {
                let ea = mech.global(a.into()).map(|e| e.value.get()).unwrap_or(0.5);
                let eb = mech.global(b.into()).map(|e| e.value.get()).unwrap_or(0.5);
                ea.partial_cmp(&eb).unwrap()
            })
            .unwrap();
        let prefs = Preferences::uniform(world.metrics().to_vec());
        // Rank of the chosen new service among held-out ones (0 = best).
        let mut by_truth = held_out.clone();
        by_truth.sort_by(|&x, &y| {
            let ux = prefs.utility_raw(&world.service(x).unwrap().quality.means(), world.bounds());
            let uy = prefs.utility_raw(&world.service(y).unwrap().quality.means(), world.bounds());
            uy.partial_cmp(&ux).unwrap()
        });
        let rank = by_truth.iter().position(|&s| s == chosen).unwrap();
        1.0 - rank as f64 / (by_truth.len() - 1) as f64 // 1 = best, 0 = worst
    };

    let seeds = [1u64, 2, 3, 4, 5, 6];
    let corr0: f64 = seeds.iter().map(|&s| pick_quality(0.0, s)).sum::<f64>() / 6.0;
    let corr9: f64 = seeds.iter().map(|&s| pick_quality(0.9, s)).sum::<f64>() / 6.0;
    assert!(
        corr9 > corr0 + 0.2,
        "pedigree must only help when it carries signal: corr0={corr0:.2} corr9={corr9:.2}"
    );
    assert!(
        corr9 > 0.8,
        "strong correlation should find near-best picks"
    );
}

#[test]
fn dishonest_raters_degrade_undefended_reputation() {
    let honest = {
        let mut strat = ReputationSelect::new(Box::new(BetaMechanism::new()));
        run(&mut strat, 17, 40)
    };
    let attacked = {
        let mut cfg = WorldConfig::small(17);
        cfg.preference_heterogeneity = 0.0;
        cfg.dishonest_fraction = 0.45;
        cfg.dishonest_behavior = wsrep::sim::world::DishonestKind::ColludeWorst;
        let world = World::generate(cfg);
        let mut strat = ReputationSelect::new(Box::new(BetaMechanism::new()));
        Market::new(world, MarketConfig::new(40, 17)).run(&mut strat)
    };
    assert!(
        attacked.settled_utility <= honest.settled_utility + 1e-9,
        "collusion should not help an undefended mechanism"
    );
}
