//! Integration: decentralized protocols over simulated overlays against
//! their centralized counterparts.

use std::collections::BTreeMap;
use wsrep::core::feedback::Feedback;
use wsrep::core::id::{AgentId, ServiceId, SubjectId};
use wsrep::core::mechanisms::eigentrust::EigenTrustMechanism;
use wsrep::core::time::Time;
use wsrep::core::ReputationMechanism;
use wsrep::net::overlay::graph::NeighborGraph;
use wsrep::net::protocols::eigentrust_dist::DistributedEigenTrust;
use wsrep::net::protocols::pgrid_rep::PGridQosRegistry;
use wsrep::net::protocols::poll::network_poll;
use wsrep::net::SimNetwork;
use wsrep::qos::metric::Metric;
use wsrep::qos::preference::Preferences;
use wsrep::qos::value::QosVector;

fn a(i: u64) -> AgentId {
    AgentId::new(i)
}

/// 12 peers: 0..9 honest mutual raters, 10..11 defectors.
fn ratings() -> Vec<Feedback> {
    let mut out = Vec::new();
    for i in 0..10u64 {
        for j in 0..10u64 {
            if i != j {
                out.push(Feedback::scored(a(i), a(j), 0.9, Time::ZERO));
            }
        }
        out.push(Feedback::scored(a(i), a(10), 0.1, Time::ZERO));
        out.push(Feedback::scored(a(i), a(11), 0.1, Time::ZERO));
    }
    out
}

#[test]
fn distributed_and_centralized_eigentrust_agree() {
    let mut central = EigenTrustMechanism::new();
    central.pre_trust(a(0));
    for fb in ratings() {
        central.submit(&fb);
    }
    let central_trust = central.global_trust();

    let mut rows: BTreeMap<AgentId, BTreeMap<AgentId, f64>> = BTreeMap::new();
    for i in 0..12u64 {
        let row = central
            .local_trust(SubjectId::Agent(a(i)))
            .into_iter()
            .filter_map(|(s, v)| s.as_agent().map(|ag| (ag, v)))
            .collect();
        rows.insert(a(i), row);
    }
    let protocol = DistributedEigenTrust::new(rows, vec![a(0)], 0.15);
    let mut net = SimNetwork::ideal(1);
    let out = protocol.run(&mut net);

    for i in 0..12u64 {
        let c = central_trust[&SubjectId::Agent(a(i))];
        let d = out.trust[&a(i)];
        assert!(
            (c - d).abs() < 0.03,
            "peer {i}: centralized {c} vs distributed {d}"
        );
    }
    assert!(out.messages > 0);
}

#[test]
fn distributed_eigentrust_survives_latency_and_loss() {
    let mut rows: BTreeMap<AgentId, BTreeMap<AgentId, f64>> = BTreeMap::new();
    for i in 0..6u64 {
        let mut row = BTreeMap::new();
        for j in 0..6u64 {
            if i != j {
                row.insert(a(j), 0.2);
            }
        }
        rows.insert(a(i), row);
    }
    rows.insert(a(6), BTreeMap::new()); // unrated defector
    let protocol = DistributedEigenTrust::new(rows, vec![a(0)], 0.2);
    let mut net = SimNetwork::new(2, 0.1, 9);
    let out = protocol.run(&mut net);
    let defector = out.trust[&a(6)];
    for i in 0..6u64 {
        assert!(
            out.trust[&a(i)] >= defector,
            "honest peer {i} must not trail"
        );
    }
}

#[test]
fn pgrid_registry_neutralizes_dishonest_qos_reports() {
    let peers: Vec<AgentId> = (200..208).map(AgentId::new).collect();
    let mut reg = PGridQosRegistry::new(&peers);
    let fast = ServiceId::new(1);
    let slow = ServiceId::new(2);
    // Trusted probes establish ground truth.
    reg.submit_trusted_probe(fast, QosVector::from_pairs([(Metric::ResponseTime, 50.0)]));
    reg.submit_trusted_probe(slow, QosVector::from_pairs([(Metric::ResponseTime, 500.0)]));
    // Honest reports.
    for r in 0..6u64 {
        reg.submit_report(
            &Feedback::scored(a(r), fast, 0.9, Time::ZERO)
                .with_observed(QosVector::from_pairs([(Metric::ResponseTime, 52.0)])),
        );
        reg.submit_report(
            &Feedback::scored(a(r), slow, 0.2, Time::ZERO)
                .with_observed(QosVector::from_pairs([(Metric::ResponseTime, 490.0)])),
        );
    }
    // A liar praises the slow service with fabricated measurements.
    for _ in 0..6 {
        reg.submit_report(
            &Feedback::scored(a(99), slow, 1.0, Time::ZERO)
                .with_observed(QosVector::from_pairs([(Metric::ResponseTime, 10.0)])),
        );
    }
    let prefs = Preferences::uniform([Metric::ResponseTime]);
    let (fast_est, _) = reg.query(a(0), fast, Some(&prefs));
    let (slow_est, _) = reg.query(a(0), slow, Some(&prefs));
    assert!(
        fast_est.unwrap().value > slow_est.unwrap().value,
        "trusted-monitor cross-checking must defeat the liar"
    );
}

#[test]
fn eigentrust_recovers_after_partition_heals() {
    // Fail half the peers, run, recover them, run again: the healed run
    // must rank everyone sensibly and conserve trust mass.
    let mut rows: BTreeMap<AgentId, BTreeMap<AgentId, f64>> = BTreeMap::new();
    for i in 0..8u64 {
        let mut row = BTreeMap::new();
        for j in 0..8u64 {
            if i != j {
                row.insert(a(j), 1.0 / 7.0);
            }
        }
        rows.insert(a(i), row);
    }
    let protocol = DistributedEigenTrust::new(rows, vec![a(0)], 0.15);
    let mut net = SimNetwork::ideal(13);
    for p in protocol.peers() {
        net.add_node(p);
    }
    for i in 4..8u64 {
        net.fail(a(i));
    }
    let partitioned = protocol.run(&mut net);
    assert_eq!(partitioned.trust.len(), 4, "only the live half is scored");
    let total: f64 = partitioned.trust.values().sum();
    assert!((total - 1.0).abs() < 1e-6);

    for i in 4..8u64 {
        net.recover(a(i));
    }
    let healed = protocol.run(&mut net);
    assert_eq!(healed.trust.len(), 8);
    let total: f64 = healed.trust.values().sum();
    assert!((total - 1.0).abs() < 1e-6);
    // Symmetric graph: apart from the pre-trusted anchor (which keeps its
    // alpha mass), everyone ends up roughly equal after healing.
    let others: Vec<f64> = healed
        .trust
        .iter()
        .filter(|(&p, _)| p != a(0))
        .map(|(_, &v)| v)
        .collect();
    let max = others.iter().cloned().fold(f64::MIN, f64::max);
    let min = others.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max - min < 0.05, "max {max} min {min}");
    assert!(
        healed.trust[&a(0)] >= max,
        "the anchor keeps its pre-trust mass"
    );
}

#[test]
fn pgrid_query_fails_cleanly_when_responsible_registry_is_gone() {
    // The survey's criticism of centralization cuts both ways: a P-Grid
    // registry peer owns a key range, and while it is down those services
    // are unreachable — but only those.
    let peers: Vec<AgentId> = (300..308).map(AgentId::new).collect();
    let mut reg = PGridQosRegistry::new(&peers);
    for svc in 0..12u64 {
        reg.submit_report(
            &Feedback::scored(a(1), ServiceId::new(svc), 0.8, Time::ZERO)
                .with_observed(QosVector::from_pairs([(Metric::ResponseTime, 100.0)])),
        );
    }
    // Every service resolves to exactly one responsible registry.
    for svc in 0..12u64 {
        let owner = reg.responsible(ServiceId::new(svc)).unwrap();
        assert!(peers.contains(&owner));
        let (est, hops) = reg.query(a(9), ServiceId::new(svc), None);
        assert!(est.is_some());
        assert!(hops >= 1);
    }
}

#[test]
fn xrep_polling_matches_local_tables() {
    use wsrep::core::mechanisms::damiani::DamianiMechanism;
    let mut tables = DamianiMechanism::new();
    let subject = ServiceId::new(5);
    let mut graph = NeighborGraph::new();
    for i in 1..=6u64 {
        graph.add_edge(a(0), a(i));
        tables.submit(&Feedback::scored(
            a(i),
            subject,
            if i <= 4 { 0.9 } else { 0.1 },
            Time::ZERO,
        ));
    }
    let out = network_poll(&graph, &tables, a(0), subject.into(), 2);
    assert_eq!(out.votes.len(), 6);
    let est = out.estimate.unwrap();
    assert!((est.value.get() - 4.0 / 6.0).abs() < 1e-9);
    // The same answer the mechanism computes centrally.
    let central = tables.global(subject.into()).unwrap();
    assert!((central.value.get() - est.value.get()).abs() < 1e-9);
}
