//! Integration across the QoS substrate: taxonomy → latent profiles →
//! sampled observations → normalization matrix → preference-weighted
//! choice → SLA settlement. The pipeline a real registry would run.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wsrep::qos::metric::{Category, Metric};
use wsrep::qos::normalize::NormalizationMatrix;
use wsrep::qos::preference::Preferences;
use wsrep::qos::profile::QualityProfile;
use wsrep::qos::sla::Sla;
use wsrep::qos::taxonomy::Taxonomy;
use wsrep::qos::value::QosVector;

fn profiles() -> Vec<QualityProfile> {
    vec![
        // The sprinter: fast, flaky.
        QualityProfile::from_triples([
            (Metric::ResponseTime, 40.0, 4.0),
            (Metric::Availability, 0.85, 0.02),
            (Metric::Price, 8.0, 0.2),
        ]),
        // The rock: slow, dependable.
        QualityProfile::from_triples([
            (Metric::ResponseTime, 400.0, 20.0),
            (Metric::Availability, 0.999, 0.001),
            (Metric::Price, 12.0, 0.2),
        ]),
        // The bargain: slow, flaky, cheap.
        QualityProfile::from_triples([
            (Metric::ResponseTime, 500.0, 30.0),
            (Metric::Availability, 0.8, 0.03),
            (Metric::Price, 1.5, 0.1),
        ]),
    ]
}

/// Average many sampled observations into a measured QoS vector, as a
/// monitoring registry would.
fn measure(rng: &mut StdRng, q: &QualityProfile, samples: usize) -> QosVector {
    let mut acc = QosVector::new();
    for _ in 0..samples {
        acc.ema_update(&q.sample(rng), 2.0 / (samples as f64));
    }
    acc
}

#[test]
fn measured_matrix_ranks_by_consumer_priorities() {
    let mut rng = StdRng::seed_from_u64(9);
    let measured: Vec<QosVector> = profiles()
        .iter()
        .map(|q| measure(&mut rng, q, 200))
        .collect();
    let metrics = [Metric::ResponseTime, Metric::Availability, Metric::Price];
    let matrix = NormalizationMatrix::new(&measured, &metrics);

    let speed = Preferences::from_weights([(Metric::ResponseTime, 1.0)]);
    let uptime = Preferences::from_weights([(Metric::Availability, 1.0)]);
    let thrift = Preferences::from_weights([(Metric::Price, 1.0)]);
    assert_eq!(matrix.best(&speed), Some(0), "sprinter wins on speed");
    assert_eq!(matrix.best(&uptime), Some(1), "rock wins on uptime");
    assert_eq!(matrix.best(&thrift), Some(2), "bargain wins on price");
}

#[test]
fn sampling_noise_does_not_flip_clear_rankings() {
    // Across independent measurement campaigns the per-metric winners are
    // stable because the latent gaps dwarf the jitter.
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let measured: Vec<QosVector> = profiles()
            .iter()
            .map(|q| measure(&mut rng, q, 100))
            .collect();
        let metrics = [Metric::ResponseTime];
        let matrix = NormalizationMatrix::new(&measured, &metrics);
        assert_eq!(
            matrix.best(&Preferences::uniform(metrics)),
            Some(0),
            "seed {seed}"
        );
    }
}

#[test]
fn sla_derived_from_honest_measurement_is_mostly_compliant() {
    let mut rng = StdRng::seed_from_u64(11);
    let q = &profiles()[0];
    let advertised = q.means();
    let sla = Sla::from_advertised(&advertised, 0.3, 1.0, 1.0);
    let mut violations = 0;
    let trials = 500;
    for _ in 0..trials {
        if !sla.check(&q.sample(&mut rng)).compliant() {
            violations += 1;
        }
    }
    // 30% slack over ~10% relative jitter: violations are rare.
    assert!(
        violations < trials / 10,
        "honest SLA violated {violations}/{trials}"
    );
}

#[test]
fn sla_derived_from_a_lie_is_mostly_violated() {
    let mut rng = StdRng::seed_from_u64(12);
    let q = &profiles()[2]; // the slow bargain
                            // Advertised as the sprinter's figures.
    let lie = profiles()[0].means();
    let sla = Sla::from_advertised(&lie, 0.3, 1.0, 1.0);
    let mut violations = 0;
    let trials = 200;
    for _ in 0..trials {
        if !sla.check(&q.sample(&mut rng)).compliant() {
            violations += 1;
        }
    }
    assert!(
        violations > trials * 9 / 10,
        "lying SLA only violated {violations}/{trials}"
    );
}

#[test]
fn taxonomy_covers_every_metric_the_pipeline_uses() {
    let tax = Taxonomy::standard();
    for m in [Metric::ResponseTime, Metric::Availability, Metric::Price] {
        assert!(tax.metrics().any(|x| x == m));
    }
    assert_eq!(Metric::Price.category(), Category::Economic);
    assert_eq!(Metric::ResponseTime.category(), Category::Performance);
}
