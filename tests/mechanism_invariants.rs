//! Property tests over the entire mechanism collection: invariants every
//! Figure 4 implementation must hold regardless of the feedback sequence.

use proptest::prelude::*;
use wsrep::core::feedback::Feedback;
use wsrep::core::id::{AgentId, ServiceId, SubjectId};
use wsrep::core::mechanisms::all_figure4_mechanisms;
use wsrep::core::time::Time;
use wsrep::qos::metric::Metric;
use wsrep::qos::value::QosVector;

/// A random but well-formed feedback stream: small rater/subject spaces so
/// mechanisms see repeat interactions, timestamps non-decreasing.
fn feedback_stream() -> impl Strategy<Value = Vec<Feedback>> {
    proptest::collection::vec(
        (0u64..6, 0u64..4, 0.0f64..=1.0, 0.0f64..=1.0, 10.0f64..500.0),
        1..40,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (rater, subject, score, facet, rt))| {
                Feedback::scored(
                    AgentId::new(rater),
                    ServiceId::new(subject),
                    score,
                    Time::new(i as u64 / 4),
                )
                .with_facet(Metric::Accuracy, facet)
                .with_observed(QosVector::from_pairs([(Metric::ResponseTime, rt)]))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every estimate any mechanism ever returns is a valid trust value
    /// with a valid confidence, for both query styles.
    #[test]
    fn estimates_are_always_well_formed(stream in feedback_stream()) {
        for mut m in all_figure4_mechanisms() {
            let key = m.info().key;
            for fb in &stream {
                m.submit(fb);
            }
            m.refresh(Time::new(12));
            for subject in 0u64..4 {
                let s: SubjectId = ServiceId::new(subject).into();
                for e in [m.global(s), m.personalized(AgentId::new(0), s)].into_iter().flatten() {
                    prop_assert!(
                        (0.0..=1.0).contains(&e.value.get()),
                        "{key}: value {} out of range", e.value.get()
                    );
                    prop_assert!(
                        (0.0..=1.0).contains(&e.confidence),
                        "{key}: confidence {} out of range", e.confidence
                    );
                }
            }
        }
    }

    /// Feedback accounting is exact.
    #[test]
    fn feedback_count_matches_submissions(stream in feedback_stream()) {
        for mut m in all_figure4_mechanisms() {
            for fb in &stream {
                m.submit(fb);
            }
            prop_assert_eq!(m.feedback_count(), stream.len(), "{}", m.info().key);
        }
    }

    /// Mechanisms are deterministic: the same stream gives the same answers.
    #[test]
    fn mechanisms_are_deterministic(stream in feedback_stream()) {
        let run = || {
            all_figure4_mechanisms()
                .into_iter()
                .map(|mut m| {
                    for fb in &stream {
                        m.submit(fb);
                    }
                    m.refresh(Time::new(12));
                    (0u64..4)
                        .map(|s| {
                            m.global(ServiceId::new(s).into())
                                .map(|e| (e.value.get(), e.confidence))
                        })
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// The core semantic invariant: a unanimously praised subject never
    /// ranks *below* a unanimously condemned one. (Several mechanisms —
    /// EigenTrust with its `max(s, 0)` rule, the beta prior — cannot
    /// express absolute distrust, but all must get the relative order
    /// right. Pure-topology systems (PageRank, NodeRanking) are exempt:
    /// they rank importance, and an interaction is a tie whatever its
    /// score — a documented property of those systems, not a bug.)
    #[test]
    fn praise_never_ranks_below_condemnation(n in 4usize..20) {
        let praised: SubjectId = ServiceId::new(1).into();
        let condemned: SubjectId = ServiceId::new(2).into();
        for mut m in all_figure4_mechanisms() {
            let key = m.info().key;
            if matches!(key, "pagerank" | "social") {
                continue;
            }
            for i in 0..n {
                m.submit(&Feedback::scored(
                    AgentId::new(i as u64),
                    ServiceId::new(1),
                    0.95,
                    Time::new(i as u64),
                ).with_facet(Metric::Accuracy, 0.95));
                m.submit(&Feedback::scored(
                    AgentId::new(i as u64),
                    ServiceId::new(2),
                    0.05,
                    Time::new(i as u64),
                ).with_facet(Metric::Accuracy, 0.05));
            }
            m.refresh(Time::new(n as u64));
            if let (Some(hi), Some(lo)) = (m.global(praised), m.global(condemned)) {
                prop_assert!(
                    hi.value.get() >= lo.value.get() - 1e-9,
                    "{key}: praised {} < condemned {}",
                    hi.value.get(),
                    lo.value.get()
                );
            }
        }
    }
}
