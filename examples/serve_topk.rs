//! End-to-end tour of the served registry: publish listings, stream
//! feedback through the batched ingest pipeline, then ask for the best
//! services under two different consumer preference profiles.
//!
//! ```sh
//! cargo run --example serve_topk
//! ```

use wsrep::core::feedback::Feedback;
use wsrep::core::id::{AgentId, ProviderId, ServiceId};
use wsrep::core::time::Time;
use wsrep::qos::metric::Metric;
use wsrep::qos::preference::Preferences;
use wsrep::qos::value::QosVector;
use wsrep::serve::ReputationService;
use wsrep::sim::registry::Listing;

fn main() {
    let service = ReputationService::builder()
        .shards(4)
        .batch_size(32)
        .reputation_weight(0.5)
        .build();

    // Providers publish their claims into the registry. Service 2 makes
    // the boldest promises.
    let claims: [(u64, f64, f64); 3] = [
        // (service id, price, accuracy claim)
        (1, 3.0, 0.85),
        (2, 2.0, 0.99),
        (3, 6.0, 0.80),
    ];
    for (id, price, accuracy) in claims {
        service
            .publish(Listing {
                service: ServiceId::new(id),
                provider: ProviderId::new(id),
                category: 0,
                advertised: QosVector::from_pairs([
                    (Metric::Price, price),
                    (Metric::Accuracy, accuracy),
                ]),
            })
            .expect("publish");
    }

    // Consumers report what they actually experienced: service 2
    // over-promised, service 1 delivers.
    for round in 0..200u64 {
        for (subject, score) in [(1u64, 0.9), (2, 0.25), (3, 0.7)] {
            service
                .ingest(Feedback::scored(
                    AgentId::new(round % 10),
                    ServiceId::new(subject),
                    score,
                    Time::new(round),
                ))
                .expect("pipeline open");
        }
    }
    service.flush(); // consistency point: all 600 reports applied

    let bargain_hunter = Preferences::from_weights([(Metric::Price, 0.8), (Metric::Accuracy, 0.2)]);
    let precision_buyer =
        Preferences::from_weights([(Metric::Price, 0.1), (Metric::Accuracy, 0.9)]);

    for (label, prefs) in [
        ("bargain hunter", &bargain_hunter),
        ("precision buyer", &precision_buyer),
    ] {
        println!("top services for the {label}:");
        for ranked in service.top_k(0, prefs, 3) {
            println!(
                "  service {:>2}  score {:.3}  (claims {:.3}, reputation {})",
                ranked.service,
                ranked.score,
                ranked.qos_score,
                ranked
                    .reputation
                    .map(|e| format!("{:.3}", e.value.get()))
                    .unwrap_or_else(|| "unknown".into()),
            );
        }
    }

    let stats = service.stats();
    println!(
        "service stats: {} listings, {} reports in {} shards, cache {} hits / {} misses",
        stats.listings, stats.feedback, stats.shards, stats.cache_hits, stats.cache_misses
    );
}
