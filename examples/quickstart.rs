//! Quickstart: stand up a web-service market, let consumers learn whom to
//! trust from each other's feedback, and watch reputation-based selection
//! beat blind choice.
//!
//! Run with `cargo run --release --example quickstart`.

use wsrep::core::mechanisms::beta::BetaMechanism;
use wsrep::select::eval::{Market, MarketConfig};
use wsrep::select::strategy::{RandomSelect, ReputationSelect};
use wsrep::sim::world::{World, WorldConfig};

fn main() {
    // A reproducible market: 10 providers × 2 services, 30 consumers.
    let config = WorldConfig::small(42);

    // Baseline: the "blind choice" the paper warns about.
    let world = World::generate(config.clone());
    let mut random = RandomSelect;
    let blind = Market::new(world, MarketConfig::new(60, 42)).run(&mut random);

    // Trust & reputation: consumers file feedback after every invocation;
    // a beta-reputation mechanism aggregates it; selection follows trust.
    let world = World::generate(config);
    let mut reputation = ReputationSelect::new(Box::new(BetaMechanism::new()));
    let informed = Market::new(world, MarketConfig::new(60, 42)).run(&mut reputation);

    println!("selection quality over 60 rounds (expected utility, 0..1):");
    println!(
        "  blind choice      : settled {:.3}, regret {:.3}, oracle hit rate {:.1}%",
        blind.settled_utility,
        blind.mean_regret,
        blind.hit_rate * 100.0
    );
    println!(
        "  beta reputation   : settled {:.3}, regret {:.3}, oracle hit rate {:.1}%",
        informed.settled_utility,
        informed.mean_regret,
        informed.hit_rate * 100.0
    );
    println!(
        "\nreputation-based selection recovered {:.0}% of the regret of blind choice",
        (1.0 - informed.mean_regret / blind.mean_regret.max(1e-9)) * 100.0
    );
    assert!(informed.settled_utility > blind.settled_utility);
}
