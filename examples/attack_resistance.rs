//! Unfair-rating attacks and their antidotes (Section 3.1, question 3).
//!
//! A ring of colluders ballot-stuffs a poor service and badmouths a good
//! one. The undefended mean is fooled; the three defenses the survey
//! names — cluster filtering, majority opinion and Zhang–Cohen — are not.
//!
//! Run with `cargo run --release --example attack_resistance`.

use wsrep::core::feedback::Feedback;
use wsrep::core::id::{AgentId, ServiceId};
use wsrep::core::store::FeedbackStore;
use wsrep::core::time::Time;
use wsrep::robust::defense::all_defenses;

fn main() {
    let good = ServiceId::new(1);
    let poor = ServiceId::new(2);
    let mut store = FeedbackStore::new();

    // 12 honest consumers: the good service really is good.
    for rater in 0..12u64 {
        for t in 0..5u64 {
            store.push(Feedback::scored(
                AgentId::new(rater),
                good,
                0.85,
                Time::new(t),
            ));
            store.push(Feedback::scored(
                AgentId::new(rater),
                poor,
                0.25,
                Time::new(t),
            ));
        }
    }
    // 6 colluders: stuff the poor service, trash the good one.
    for rater in 100..106u64 {
        for t in 0..5u64 {
            store.push(Feedback::scored(
                AgentId::new(rater),
                good,
                0.0,
                Time::new(t),
            ));
            store.push(Feedback::scored(
                AgentId::new(rater),
                poor,
                1.0,
                Time::new(t),
            ));
        }
    }

    // The observer is an honest consumer with first-hand experience.
    let observer = AgentId::new(0);
    println!("estimates after a 6-colluder attack (truth: good≈0.85, poor≈0.25):\n");
    println!(
        "{:<14} {:>12} {:>12} {:>16}",
        "defense", "good svc", "poor svc", "ranking intact?"
    );
    for defense in all_defenses() {
        let g = defense
            .estimate(&store, observer, good.into())
            .map(|e| e.value.get())
            .unwrap_or(f64::NAN);
        let p = defense
            .estimate(&store, observer, poor.into())
            .map(|e| e.value.get())
            .unwrap_or(f64::NAN);
        println!(
            "{:<14} {:>12.3} {:>12.3} {:>16}",
            defense.name(),
            g,
            p,
            if g > p { "yes" } else { "FLIPPED" }
        );
        if defense.name() != "none" {
            assert!(g > p, "{} must resist the attack", defense.name());
        }
    }
    println!(
        "\ncluster filtering isolates the colluders' score cluster, the\n\
         majority opinion outvotes them, and Zhang-Cohen discounts advisors\n\
         whose ratings contradict the observer's own experience."
    );
}
