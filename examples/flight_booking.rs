//! The paper's own motivating example for the mediated scenario
//! (Figure 1 B): "a consumer uses a flight booking web service like
//! Expedia.com to get a flight service (the general service) from an
//! airline company like Air Canada."
//!
//! Three booking sites broker three airlines. Consumers repeatedly book,
//! experience the *composite* of booking-site QoS and airline quality,
//! and rate. We compare a selector that scores the intermediary's
//! technical QoS against one that scores the general (airline) service —
//! reproducing the claim that the general service decides.
//!
//! Run with `cargo run --release --example flight_booking`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wsrep::core::feedback::Feedback;
use wsrep::core::id::{AgentId, ServiceId};
use wsrep::core::mechanisms::beta::BetaMechanism;
use wsrep::core::time::Time;
use wsrep::core::ReputationMechanism;
use wsrep::qos::metric::Metric;
use wsrep::qos::profile::QualityProfile;
use wsrep::sim::provider::metric_range;
use wsrep::sim::scenario::{invoke_mediated, GeneralService, MediatedOffer, MediationWeights};

fn offers() -> Vec<(&'static str, MediatedOffer)> {
    let mk = |id: u64, name, rt: f64, comfort: f64, punctuality: f64| {
        (
            name,
            MediatedOffer {
                intermediary: ServiceId::new(id),
                intermediary_quality: QualityProfile::from_triples([
                    (Metric::ResponseTime, rt, rt * 0.05),
                    (Metric::Availability, 0.99, 0.005),
                ]),
                general: GeneralService {
                    id: ServiceId::new(100 + id),
                    quality: QualityProfile::from_triples([
                        (Metric::AppSpecific(0), comfort, 0.03),
                        (Metric::AppSpecific(1), punctuality, 0.05),
                    ]),
                },
            },
        )
    };
    vec![
        // Slick site, dreadful airline.
        mk(0, "SnappyBooker + CrampedAir", 40.0, 0.25, 0.4),
        // Sluggish site, excellent airline.
        mk(1, "SlowBooker + ComfyJet", 600.0, 0.95, 0.9),
        // Middle of the road on both.
        mk(2, "OkBooker + OkAir", 200.0, 0.6, 0.65),
    ]
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let weights = MediationWeights::default(); // general service carries 80%
    let offers = offers();

    // 30 consumers book 20 times each from every offer and rate the
    // composite experience; the reputation mechanism learns per offer.
    let mut reputation = BetaMechanism::new();
    for round in 0..20u64 {
        for consumer in 0..30u64 {
            for (_, offer) in &offers {
                let outcome = invoke_mediated(&mut rng, offer, weights, metric_range);
                reputation.submit(&Feedback::scored(
                    AgentId::new(consumer),
                    offer.intermediary,
                    outcome.composite,
                    Time::new(round),
                ));
            }
        }
    }

    println!("learned reputation (composite experience) vs layer qualities:\n");
    println!(
        "{:<28} {:>10} {:>12} {:>10}",
        "offer", "site RT ms", "airline qual", "reputation"
    );
    let mut best: Option<(&str, f64)> = None;
    for (name, offer) in &offers {
        let rep = reputation
            .global(offer.intermediary.into())
            .map(|e| e.value.get())
            .unwrap_or(0.5);
        let rt = offer
            .intermediary_quality
            .means()
            .get(Metric::ResponseTime)
            .unwrap();
        let airline = offer
            .general
            .quality
            .means()
            .iter()
            .map(|(_, v)| v)
            .sum::<f64>()
            / 2.0;
        println!("{name:<28} {rt:>10.0} {airline:>12.2} {rep:>10.3}");
        if best.map(|(_, b)| rep > b).unwrap_or(true) {
            best = Some((name, rep));
        }
    }
    let (winner, _) = best.expect("offers exist");
    println!(
        "\nselected: {winner}\n\
         The sluggish booking site wins because the airline behind it is\n\
         excellent — \"the major part of selecting a web service is decided\n\
         by the general service properties\" (Figure 1 B)."
    );
    assert_eq!(winner, "SlowBooker + ComfyJet");
}
