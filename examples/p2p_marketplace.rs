//! A peer-to-peer web-service marketplace — the survey's Section 5
//! direction 1: no UDDI server, no central QoS registry.
//!
//! Peers rate each other after exchanges; global trust emerges from
//! distributed EigenTrust (trust-share messages over a simulated
//! network), while QoS reports about *services* are routed to P-Grid
//! registry peers à la Vu–Hauswirth–Aberer.
//!
//! Run with `cargo run --release --example p2p_marketplace`.

use std::collections::BTreeMap;
use wsrep::core::feedback::Feedback;
use wsrep::core::id::{AgentId, ServiceId};
use wsrep::core::time::Time;
use wsrep::net::protocols::eigentrust_dist::DistributedEigenTrust;
use wsrep::net::protocols::pgrid_rep::PGridQosRegistry;
use wsrep::net::SimNetwork;
use wsrep::qos::metric::Metric;
use wsrep::qos::preference::Preferences;
use wsrep::qos::value::QosVector;

fn main() {
    // --- peer trust: 8 honest peers and 2 free-riders --------------------
    let mut rows: BTreeMap<AgentId, BTreeMap<AgentId, f64>> = BTreeMap::new();
    for i in 0..8u64 {
        let mut row = BTreeMap::new();
        for j in 0..8u64 {
            if i != j {
                row.insert(AgentId::new(j), 1.0 / 7.0);
            }
        }
        rows.insert(AgentId::new(i), row);
    }
    rows.insert(AgentId::new(8), BTreeMap::new());
    rows.insert(AgentId::new(9), BTreeMap::new());

    let protocol = DistributedEigenTrust::new(rows, vec![AgentId::new(0)], 0.15);
    let mut net = SimNetwork::new(1, 0.02, 7); // 1-round latency, 2% loss
    let outcome = protocol.run(&mut net);
    println!(
        "distributed EigenTrust converged in {} rounds, {} messages:",
        outcome.rounds, outcome.messages
    );
    let mut ranked: Vec<(&AgentId, &f64)> = outcome.trust.iter().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(a.1).unwrap());
    for (peer, trust) in ranked.iter().take(3) {
        println!("  {peer}: {trust:.3}");
    }
    let free_rider = outcome.trust[&AgentId::new(9)];
    println!("  … free-rider {}: {free_rider:.3}", AgentId::new(9));

    // --- service QoS without a central registry --------------------------
    let registry_peers: Vec<AgentId> = (100..108).map(AgentId::new).collect();
    let mut registries = PGridQosRegistry::new(&registry_peers);
    println!(
        "\nP-Grid QoS registry federation: {} peers, depth {}",
        registries.len(),
        3
    );
    // Honest peers file measured QoS about two translation services.
    for reporter in 0..8u64 {
        registries.submit_report(
            &Feedback::scored(AgentId::new(reporter), ServiceId::new(1), 0.8, Time::ZERO)
                .with_observed(QosVector::from_pairs([
                    (Metric::ResponseTime, 60.0 + reporter as f64),
                    (Metric::Accuracy, 0.93),
                ])),
        );
        registries.submit_report(
            &Feedback::scored(AgentId::new(reporter), ServiceId::new(2), 0.4, Time::ZERO)
                .with_observed(QosVector::from_pairs([
                    (Metric::ResponseTime, 480.0),
                    (Metric::Accuracy, 0.70),
                ])),
        );
    }
    let prefs = Preferences::uniform([Metric::ResponseTime, Metric::Accuracy]);
    let (fast, hops1) = registries.query(AgentId::new(3), ServiceId::new(1), Some(&prefs));
    let (slow, hops2) = registries.query(AgentId::new(3), ServiceId::new(2), Some(&prefs));
    println!(
        "query s1 → trust {:.3} ({hops1} hops); query s2 → trust {:.3} ({hops2} hops); \
         total routing messages {}",
        fast.unwrap().value.get(),
        slow.unwrap().value.get(),
        registries.messages()
    );
    println!(
        "\nno central node anywhere: trust management cost is paid in\n\
         messages instead — the trade Section 4 of the survey describes."
    );
    assert!(fast.unwrap().value > slow.unwrap().value);
}
