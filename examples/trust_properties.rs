//! The three properties Section 3 of the survey ascribes to trust —
//! **context-specific**, **multi-faceted**, and **transitive** — each
//! demonstrated on the paper's own examples.
//!
//! Run with `cargo run --release --example trust_properties`.

use wsrep::core::context::{Context, ContextualTrust};
use wsrep::core::facets::FacetedTrust;
use wsrep::core::id::AgentId;
use wsrep::core::opinion::Opinion;
use wsrep::core::time::Time;
use wsrep::core::transitive::TrustGraph;
use wsrep::qos::metric::Metric;
use wsrep::qos::preference::Preferences;

fn main() {
    // ------------------------------------------------------------------
    // Context-specific: "Mike trusts John as his doctor, but he does not
    // trust John as a mechanic to fix his car."
    let john = AgentId::new(1);
    const DOCTOR: Context = Context(1);
    const MECHANIC: Context = Context(2);
    let mut mikes_view = ContextualTrust::new();
    for t in 0..8 {
        mikes_view.record(john, DOCTOR, 0.95, Time::new(t));
        mikes_view.record(john, MECHANIC, 0.15, Time::new(t));
    }
    let now = Time::new(8);
    let as_doctor = mikes_view.trust(john, DOCTOR, now).unwrap();
    let as_mechanic = mikes_view.trust(john, MECHANIC, now).unwrap();
    println!("context-specific trust in John:");
    println!("  as a doctor   : {}", as_doctor.value);
    println!("  as a mechanic : {}", as_mechanic.value);
    assert!(as_doctor.value.get() > 0.9 && as_mechanic.value.get() < 0.2);

    // ------------------------------------------------------------------
    // Multi-faceted: "a user might evaluate a web service from different
    // QoS aspects … For each aspect, she develops a kind of trust."
    let mut service_trust = FacetedTrust::new();
    for t in 0..10 {
        service_trust.record(Metric::ResponseTime, 0.95, Time::new(t)); // blazing fast
        service_trust.record(Metric::Accuracy, 0.30, Time::new(t)); // often wrong
    }
    let now = Time::new(10);
    let speed_freak =
        Preferences::from_weights([(Metric::ResponseTime, 0.9), (Metric::Accuracy, 0.1)]);
    let precision_buyer =
        Preferences::from_weights([(Metric::ResponseTime, 0.1), (Metric::Accuracy, 0.9)]);
    println!("\nmulti-faceted trust in one service:");
    println!(
        "  for a latency-sensitive consumer : {}",
        service_trust.overall(&speed_freak, now).value
    );
    println!(
        "  for an accuracy-sensitive one    : {}",
        service_trust.overall(&precision_buyer, now).value
    );

    // ------------------------------------------------------------------
    // Transitive: "Alice trusts her doctor and her doctor trusts an eye
    // specialist. Then Alice can trust the eye specialist."
    let alice = AgentId::new(10);
    let doctor = AgentId::new(11);
    let specialist = AgentId::new(12);
    let mut graph = TrustGraph::new();
    graph.set(alice, doctor, Opinion::from_evidence(15.0, 0.0, 0.5));
    graph.set(doctor, specialist, Opinion::from_evidence(12.0, 1.0, 0.5));
    let derived = graph.derive(alice, specialist, 3).unwrap();
    println!("\ntransitive trust:");
    println!(
        "  Alice -> doctor -> eye specialist: expectation {:.3} (uncertainty {:.3})",
        derived.expectation(),
        derived.u
    );
    assert!(derived.expectation() > 0.6);
    // But transitivity dilutes: the derived opinion is weaker than the
    // direct links it chains.
    assert!(derived.b < graph.direct(alice, doctor).unwrap().b);
    println!("  (weaker than either direct link, as the calculus requires)");
}
